//! The golden workload: the one seeded training run the regression
//! nets pin.
//!
//! `tests/golden_trace.rs` (manifest snapshot), `tests/trace_golden.rs`
//! (span-trace digest) and the `fare-report run-golden` CLI subcommand
//! (the verify.sh diff gate) must all execute the *same* run, so its
//! definition lives here once: seed 7, PPI preset, GCN, 5 epochs, FARe
//! strategy, 3% pre-deployment faults (half SA1) plus 1% post-deployment
//! faults — enough to exercise the packed fault kernels, `RemapCache`
//! and the incremental refresh path.

use fare_core::{FaultStrategy, TrainConfig, Trainer};
use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare_obs::{self as obs, ClockMode, Mode};
use fare_reram::FaultSpec;

/// The golden seed.
pub const SEED: u64 = 7;

/// Fixed-clock step (ns) every golden capture installs.
pub const CLOCK_STEP_NS: u64 = 1_000;

/// The golden training configuration.
pub fn config() -> TrainConfig {
    TrainConfig {
        model: ModelKind::Gcn,
        epochs: 5,
        fault_spec: FaultSpec::with_sa1_fraction(0.03, 0.5),
        post_deployment_density: 0.01,
        strategy: FaultStrategy::FaRe,
        ..TrainConfig::default()
    }
}

/// The golden dataset (PPI preset under the golden seed).
pub fn dataset() -> Dataset {
    Dataset::generate(DatasetKind::Ppi, SEED)
}

/// Runs the golden workload under `mode` with the fixed telemetry
/// clock and captures its manifest; when `mode` is [`Mode::Trace`] the
/// span trace is drained too. Leaves telemetry off afterwards.
pub fn capture(mode: Mode) -> (obs::RunManifest, Option<obs::trace::TraceLog>) {
    obs::set_mode(mode);
    obs::set_clock(ClockMode::Fixed(CLOCK_STEP_NS));
    obs::reset();
    let dataset = dataset();
    let outcome = Trainer::new(config(), SEED).run(&dataset);
    let manifest = obs::RunManifest::capture("golden_trace", SEED, &config())
        .with_bench("final_test_accuracy", outcome.final_test_accuracy)
        .with_bench("best_test_accuracy", outcome.best_test_accuracy)
        .with_bench("final_mapping_cost", outcome.final_mapping_cost as f64)
        .with_bench("normalized_time", outcome.normalized_time);
    let trace = if mode == Mode::Trace {
        Some(obs::trace::take())
    } else {
        None
    };
    obs::set_clock(ClockMode::Wall);
    obs::set_mode(Mode::Off);
    obs::reset();
    (manifest, trace)
}

/// [`capture`] under [`Mode::Json`], manifest only — the shape
/// `tests/golden_trace.rs` snapshots.
pub fn capture_manifest() -> obs::RunManifest {
    capture(Mode::Json).0
}

/// [`capture`] under [`Mode::Trace`]: the manifest plus the span trace.
pub fn capture_trace() -> (obs::RunManifest, obs::trace::TraceLog) {
    let (manifest, trace) = capture(Mode::Trace);
    (manifest, trace.expect("trace mode records a trace"))
}
