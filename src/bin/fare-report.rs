//! `fare-report` — the workspace's telemetry analyzer CLI.
//!
//! Subcommands (see `fare-report help`):
//!
//! - `summarize <manifest.json>` — markdown tables for one manifest.
//! - `diff <baseline.json> <candidate.json>` — per-counter/timer/epoch
//!   delta report; exits non-zero when any quantity moves beyond
//!   `--tolerance`. verify.sh runs this as the regression gate against
//!   `tests/golden/golden_trace.json`, and it diffs `BENCH_*.json`
//!   files across PRs the same way.
//! - `heatmap <manifest.json>` — per-crossbar grids as ASCII (default)
//!   or SVG (`--svg <path>`).
//! - `figures <manifest.json>... --out <dir>` — fig5-style SVG epoch
//!   curves; `--check` re-renders and asserts deterministic non-empty
//!   output.
//! - `run-golden --out <path>` — execute the golden workload under
//!   `FARE_OBS=trace` and write its manifest (and optionally the JSONL
//!   / Chrome traces), producing the fresh side for `diff`.
//!
//! Exit codes: 0 success, 1 regression/check failure, 2 usage error.

use std::process::ExitCode;

use fare::obs::{self};
use fare::report::diff::{diff, DiffOptions};
use fare::report::figures::{epoch_curves, CurveMetric};
use fare::report::{heatmap, parse_manifest, summarize};

fn usage() -> &'static str {
    "fare-report — analyze fare-obs run manifests\n\n\
     USAGE:\n\
     \x20 fare-report summarize <manifest.json>\n\
     \x20 fare-report diff <baseline.json> <candidate.json> [--tolerance <rel>] [--ignore-timer-ns] [--all]\n\
     \x20 fare-report heatmap <manifest.json> [--grid <name>] [--metric <sa0|sa1|faults|mismatch|mvms|energy>] [--svg <path>]\n\
     \x20 fare-report figures <manifest.json>... --out <dir> [--metric <loss|train_accuracy|test_accuracy>] [--check]\n\
     \x20 fare-report run-golden --out <manifest.json> [--jsonl <path>] [--chrome <path>]\n"
}

fn read_manifest(path: &str) -> Result<obs::RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_manifest(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pull `--flag <value>` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Pull a boolean `--flag` out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_summarize(args: Vec<String>) -> Result<ExitCode, String> {
    let [path] = args.as_slice() else {
        return Err("summarize takes exactly one manifest path".to_string());
    };
    let manifest = read_manifest(path)?;
    print!("{}", summarize::to_markdown(&manifest));
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    let tolerance = match take_flag(&mut args, "--tolerance")? {
        Some(t) => t
            .parse::<f64>()
            .map_err(|_| format!("bad --tolerance {t:?}"))?,
        None => 0.0,
    };
    let ignore_timer_ns = take_switch(&mut args, "--ignore-timer-ns");
    let all = take_switch(&mut args, "--all");
    let [base_path, cand_path] = args.as_slice() else {
        return Err("diff takes exactly two manifest paths".to_string());
    };
    let baseline = read_manifest(base_path)?;
    let candidate = read_manifest(cand_path)?;
    let report = diff(
        &baseline,
        &candidate,
        &DiffOptions {
            tolerance,
            ignore_timer_ns,
        },
    );
    print!("{}", report.to_markdown(!all));
    if report.ok() {
        println!("diff: OK (tolerance {tolerance})");
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "diff: {} quantities beyond tolerance {tolerance}",
            report.regressions()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_heatmap(mut args: Vec<String>) -> Result<ExitCode, String> {
    let grid_name = take_flag(&mut args, "--grid")?;
    let metric = take_flag(&mut args, "--metric")?.unwrap_or_else(|| "faults".to_string());
    let svg_path = take_flag(&mut args, "--svg")?;
    let [path] = args.as_slice() else {
        return Err("heatmap takes exactly one manifest path".to_string());
    };
    let manifest = read_manifest(path)?;
    if manifest.heatmaps.is_empty() {
        return Err(format!("{path}: manifest has no heatmaps section"));
    }
    let grid = match &grid_name {
        Some(name) => manifest
            .heatmaps
            .iter()
            .find(|g| &g.name == name)
            .ok_or_else(|| {
                format!(
                    "no grid {name:?}; available: {}",
                    manifest
                        .heatmaps
                        .iter()
                        .map(|g| g.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?,
        None => &manifest.heatmaps[0],
    };
    match svg_path {
        Some(out) => {
            let svg = heatmap::svg(grid, &metric)?;
            std::fs::write(&out, svg).map_err(|e| format!("{out}: {e}"))?;
            println!("heatmap: wrote {out}");
        }
        None => print!("{}", heatmap::ascii(grid, &metric)?),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_figures(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out_dir = take_flag(&mut args, "--out")?.ok_or("figures needs --out <dir>")?;
    let metric_arg = take_flag(&mut args, "--metric")?;
    let check = take_switch(&mut args, "--check");
    if args.is_empty() {
        return Err("figures needs at least one manifest path".to_string());
    }
    let manifests: Vec<obs::RunManifest> = args
        .iter()
        .map(|p| read_manifest(p))
        .collect::<Result<_, _>>()?;
    let metrics: Vec<CurveMetric> = match metric_arg {
        Some(name) => vec![CurveMetric::parse(&name).ok_or_else(|| {
            format!("bad --metric {name:?}; valid: loss, train_accuracy, test_accuracy")
        })?],
        None => vec![CurveMetric::Loss, CurveMetric::TestAccuracy],
    };
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{out_dir}: {e}"))?;
    for metric in metrics {
        let svg = epoch_curves(&manifests, metric)?;
        if check {
            let again = epoch_curves(&manifests, metric)?;
            if svg != again {
                return Err(format!("{} figure is not deterministic", metric.label()));
            }
            if svg.len() < 500 || !svg.contains("<polyline") && !svg.contains("<rect") {
                return Err(format!("{} figure looks empty", metric.label()));
            }
        }
        let name = match metric {
            CurveMetric::Loss => "loss",
            CurveMetric::TrainAccuracy => "train_accuracy",
            CurveMetric::TestAccuracy => "test_accuracy",
        };
        let path = format!("{out_dir}/fig5_{name}.svg");
        std::fs::write(&path, &svg).map_err(|e| format!("{path}: {e}"))?;
        println!("figures: wrote {path} ({} bytes)", svg.len());
    }
    if check {
        println!("figures: check OK");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_run_golden(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out = take_flag(&mut args, "--out")?.ok_or("run-golden needs --out <manifest.json>")?;
    let jsonl = take_flag(&mut args, "--jsonl")?;
    let chrome = take_flag(&mut args, "--chrome")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let (manifest, trace) = fare::golden::capture_trace();
    std::fs::write(&out, manifest.to_json_pretty() + "\n").map_err(|e| format!("{out}: {e}"))?;
    println!(
        "run-golden: wrote {out} ({} events traced, {} dropped)",
        trace.events.len(),
        trace.dropped
    );
    if let Some(path) = jsonl {
        std::fs::write(&path, trace.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        println!("run-golden: wrote {path}");
    }
    if let Some(path) = chrome {
        std::fs::write(&path, trace.to_chrome()).map_err(|e| format!("{path}: {e}"))?;
        println!("run-golden: wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprint!("{}", usage());
        return ExitCode::from(2);
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "summarize" => cmd_summarize(argv),
        "diff" => cmd_diff(argv),
        "heatmap" => cmd_heatmap(argv),
        "figures" => cmd_figures(argv),
        "run-golden" => cmd_run_golden(argv),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand {other:?}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fare-report {cmd}: {msg}");
            ExitCode::from(2)
        }
    }
}
