//! # FARe — Fault-Aware GNN Training on ReRAM-Based PIM Accelerators
//!
//! A from-scratch Rust reproduction of *FARe* (DATE 2024): a framework
//! that keeps graph-neural-network training accurate on ReRAM
//! processing-in-memory hardware afflicted by stuck-at faults.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`tensor`] — dense matrices and 16-bit fixed-point / 2-bit-cell
//!   quantisation,
//! - [`graph`] — CSR graphs, synthetic dataset presets, METIS-like
//!   partitioning and Cluster-GCN mini-batching,
//! - [`matching`] — Hungarian and b-Suitor assignment solvers,
//! - [`reram`] — the crossbar/tile simulator with SA0/SA1 fault
//!   injection, BIST and the pipelined timing model,
//! - [`gnn`] — GCN / GAT / GraphSAGE models with manual backprop and a
//!   pluggable (ideal vs faulty) matrix–vector backend,
//! - [`core`] — the FARe mapping algorithm (Algorithm 1), weight
//!   clipping, the baselines and the experiment runners,
//! - [`obs`] — the telemetry layer: named monotonic counters, span
//!   timers, hierarchical span tracing with Chrome-trace export,
//!   per-epoch metric sinks, per-crossbar heatmaps and
//!   [`obs::RunManifest`] run manifests (enable with
//!   `FARE_OBS=trace|json` or `obs::set_mode`),
//! - [`report`] — the analysis side: manifest summaries, regression
//!   diffs, heatmap renderers and fig5-style SVG figures, exposed on
//!   the command line as the `fare-report` binary.
//!
//! # Quickstart
//!
//! ```
//! use fare::core::{FaultStrategy, TrainConfig, Trainer};
//! use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
//! use fare::reram::FaultSpec;
//!
//! // A tiny run: PPI preset, GCN, 2% faults, FARe protection on.
//! let dataset = Dataset::generate(DatasetKind::Ppi, 42);
//! let config = TrainConfig {
//!     model: ModelKind::Gcn,
//!     epochs: 3,
//!     fault_spec: FaultSpec::density(0.02),
//!     strategy: FaultStrategy::FaRe,
//!     ..TrainConfig::default()
//! };
//! let outcome = Trainer::new(config, 42).run(&dataset);
//! assert!(outcome.final_test_accuracy > 0.0);
//! ```

pub use fare_core as core;
pub use fare_gnn as gnn;
pub use fare_obs as obs;
pub use fare_graph as graph;
pub use fare_matching as matching;
pub use fare_report as report;
pub use fare_reram as reram;
pub use fare_tensor as tensor;

pub mod golden;
