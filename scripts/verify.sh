#!/usr/bin/env bash
# Hermetic verification: build and test the whole workspace with the
# network forbidden. This is the tier-1 gate from ROADMAP.md plus the
# offline flag, so it fails loudly if anyone reintroduces a registry
# dependency (see tests/manifest_lint.rs for the matching unit-level
# guard).
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> offline release build"
if [ "$QUICK" -eq 0 ]; then
    cargo build --release --offline --workspace
else
    echo "    (skipped: --quick)"
fi

echo "==> offline debug build (all targets: tests, benches, examples)"
cargo build --offline --workspace --all-targets

echo "==> offline test suite"
cargo test -q --offline --workspace

echo "==> determinism suite across thread counts"
# The compute core promises bit-identical results at any worker count;
# run the determinism suite under both a serial and a parallel pool.
FARE_RT_THREADS=1 cargo test -q --offline --test determinism
FARE_RT_THREADS=4 cargo test -q --offline --test determinism

echo "==> golden telemetry trace across thread counts"
# The committed golden manifest (tests/golden/golden_trace.json) must be
# reproduced bit-for-bit on a serial and a parallel pool: counters count
# logical events and the telemetry clock is fixed, so the trace may not
# depend on worker count.
FARE_RT_THREADS=1 cargo test -q --offline --test golden_trace
FARE_RT_THREADS=4 cargo test -q --offline --test golden_trace

echo "==> mapping fast-path equivalence across thread counts"
# The mapping fast path promises bit-identical Mappings to the serial
# reference oracle; re-run the pinning proptests under a serial and a
# parallel pool.
FARE_RT_THREADS=1 cargo test -q --offline -p fare-core --test proptests -- \
    fast_path_bit_identical_to_reference incremental_refresh_bit_identical_to_full
FARE_RT_THREADS=4 cargo test -q --offline -p fare-core --test proptests -- \
    fast_path_bit_identical_to_reference incremental_refresh_bit_identical_to_full

echo "==> compute-core bench smoke"
BENCH_TMP="$(mktemp /tmp/bench_core.XXXXXX.json)"
trap 'rm -f "$BENCH_TMP"' EXIT
cargo run -q --offline -p fare-bench --bin bench_core -- \
    --smoke --nodes 600 --out "$BENCH_TMP"

echo "==> mapping bench smoke"
BENCH_MAP_TMP="$(mktemp /tmp/bench_mapping.XXXXXX.json)"
trap 'rm -f "$BENCH_TMP" "$BENCH_MAP_TMP"' EXIT
cargo run -q --offline -p fare-bench --bin bench_mapping -- \
    --smoke --out "$BENCH_MAP_TMP"

echo "==> example smoke (RunManifest summaries)"
# The examples double as executable documentation for the telemetry
# layer; make sure they keep running end to end.
cargo run -q --offline --example post_deployment -- --smoke > /dev/null
cargo run -q --offline --example fault_sweep -- --smoke --ratio 1:1 > /dev/null
cargo run -q --offline --example pipeline_timing -- --smoke > /dev/null

echo "==> trace & report gate"
# Fresh golden run under FARE_OBS=trace diffed against the committed
# snapshot with the fare-report CLI (exit non-zero on any counter /
# timer / epoch / heatmap movement), then the figure renderer's
# determinism self-check. This exercises the span tracer, the manifest
# pipeline and the analyzer end to end.
REPORT_TMP="$(mktemp -d /tmp/fare_report.XXXXXX)"
trap 'rm -f "$BENCH_TMP" "$BENCH_MAP_TMP"; rm -rf "$REPORT_TMP"' EXIT
cargo run -q --offline --bin fare-report -- run-golden \
    --out "$REPORT_TMP/golden_fresh.json" \
    --jsonl "$REPORT_TMP/golden_fresh.jsonl" \
    --chrome "$REPORT_TMP/golden_fresh.trace.json"
cargo run -q --offline --bin fare-report -- diff \
    tests/golden/golden_trace.json "$REPORT_TMP/golden_fresh.json"
cargo run -q --offline --bin fare-report -- figures \
    "$REPORT_TMP/golden_fresh.json" --check --out "$REPORT_TMP/figs" > /dev/null
cargo run -q --offline --bin fare-report -- summarize \
    "$REPORT_TMP/golden_fresh.json" > /dev/null
cargo run -q --offline --bin fare-report -- heatmap \
    "$REPORT_TMP/golden_fresh.json" > /dev/null

echo "==> verify OK"
