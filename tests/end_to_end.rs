//! Cross-crate end-to-end tests: the full dataset → partition → batch →
//! map → corrupt → train pipeline, exercised through the facade crate.

use fare::core::{
    corrupt_adjacency_mapped, corrupt_adjacency_unaware, map_adjacency, run_fault_free,
    FaultStrategy, MappingConfig, TrainConfig, Trainer,
};
use fare::graph::batch::make_batches;
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::graph::partition::partition;
use fare::reram::{Bist, CrossbarArray, FaultSpec};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

#[test]
fn batched_mapping_reduces_corruption_on_every_batch() {
    let ds = Dataset::generate(DatasetKind::Ppi, 11);
    let mut rng = StdRng::seed_from_u64(11);
    let parts = partition(&ds.graph, ds.spec.partitions, &mut rng);
    let batches = make_batches(&ds.graph, &parts, ds.spec.clusters_per_batch, &mut rng);
    assert!(batches.len() >= 5);

    let n = 16;
    let mut total_fare = 0usize;
    let mut total_unaware = 0usize;
    for batch in &batches {
        let adj = batch.dense_adjacency();
        let blocks = adj.rows().div_ceil(n).pow(2);
        let mut array = CrossbarArray::new(blocks * 2, n);
        array.inject(&FaultSpec::with_ratio(0.05, 1.0, 1.0), &mut rng);

        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        let mapped = corrupt_adjacency_mapped(&adj, &array, &mapping);
        let unaware = corrupt_adjacency_unaware(&adj, &array);

        let errs = |m: &fare::tensor::Matrix| {
            adj.iter()
                .zip(m.iter())
                .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
                .count()
        };
        let e_fare = errs(&mapped);
        let e_unaware = errs(&unaware);
        assert!(
            e_fare <= e_unaware,
            "batch of {} nodes: FARe {e_fare} > unaware {e_unaware}",
            batch.num_nodes()
        );
        total_fare += e_fare;
        total_unaware += e_unaware;
    }
    // Aggregated over batches the mapping must win strictly.
    assert!(
        total_fare < total_unaware,
        "FARe total {total_fare} vs unaware {total_unaware}"
    );
}

#[test]
fn training_improves_accuracy_under_faults_with_fare() {
    let ds = Dataset::generate(DatasetKind::Reddit, 3);
    let config = TrainConfig {
        model: ModelKind::Gcn,
        epochs: 10,
        fault_spec: FaultSpec::density(0.03),
        strategy: FaultStrategy::FaRe,
        ..TrainConfig::default()
    };
    let out = Trainer::new(config, 3).run(&ds);
    let first = out.history.first().unwrap().test_accuracy;
    let last = out.final_test_accuracy;
    assert!(
        last > first + 0.1,
        "no learning under FARe: {first:.3} -> {last:.3}"
    );
    assert!(last > 0.7, "final accuracy too low: {last:.3}");
}

#[test]
fn post_deployment_faults_accumulate_and_bist_sees_them() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut array = CrossbarArray::new(10, 16);
    array.inject(&FaultSpec::density(0.02), &mut rng);
    let before = Bist::scan(&array);
    // Simulate 5 epochs of wear-out at 0.2% each.
    for _ in 0..5 {
        array.inject(&FaultSpec::density(0.002), &mut rng);
    }
    let after = Bist::scan(&array);
    assert!(after.fault_count() > before.fault_count());
    let fresh = after.new_faults_since(&before);
    assert_eq!(fresh.len(), after.fault_count() - before.fault_count());
    assert!((after.density() - 0.03).abs() < 0.01);
}

#[test]
fn post_deployment_training_stays_stable_with_fare() {
    let ds = Dataset::generate(DatasetKind::Ppi, 9);
    let base = TrainConfig {
        model: ModelKind::Gcn,
        epochs: 12,
        fault_spec: FaultSpec::density(0.02),
        post_deployment_density: 0.01,
        ..TrainConfig::default()
    };
    let fare = Trainer::new(
        TrainConfig {
            strategy: FaultStrategy::FaRe,
            ..base
        },
        9,
    )
    .run(&ds);
    let ideal = run_fault_free(&base, 9, &ds);
    // FARe with growing faults stays within a usable band of fault-free.
    assert!(
        fare.final_test_accuracy > ideal.final_test_accuracy - 0.15,
        "FARe {:.3} vs fault-free {:.3}",
        fare.final_test_accuracy,
        ideal.final_test_accuracy
    );
}

#[test]
fn all_model_kinds_train_end_to_end_on_their_table2_dataset() {
    for (kind, model) in [
        (DatasetKind::Ppi, ModelKind::Gat),
        (DatasetKind::Reddit, ModelKind::Gcn),
        (DatasetKind::Ogbl, ModelKind::Sage),
    ] {
        let ds = Dataset::generate(kind, 13);
        let config = TrainConfig {
            model,
            epochs: 5,
            fault_spec: FaultSpec::density(0.02),
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        };
        let out = Trainer::new(config, 13).run(&ds);
        assert!(
            out.final_test_accuracy > 0.4,
            "{kind:?}+{model:?}: accuracy {:.3}",
            out.final_test_accuracy
        );
    }
}

#[test]
fn outcome_metadata_is_consistent() {
    let ds = Dataset::generate(DatasetKind::Ppi, 21);
    let config = TrainConfig {
        epochs: 4,
        fault_spec: FaultSpec::density(0.02),
        strategy: FaultStrategy::FaRe,
        ..TrainConfig::default()
    };
    let out = Trainer::new(config, 21).run(&ds);
    assert_eq!(out.history.len(), 4);
    assert_eq!(out.history.last().unwrap().test_accuracy, out.final_test_accuracy);
    assert_eq!(
        out.history.last().unwrap().train_accuracy,
        out.final_train_accuracy
    );
    assert_eq!(out.num_batches, ds.spec.partitions.div_ceil(ds.spec.clusters_per_batch));
    assert!(out.normalized_time > 1.0);
    for (i, e) in out.history.iter().enumerate() {
        assert_eq!(e.epoch, i);
        assert!(e.loss.is_finite());
    }
}
