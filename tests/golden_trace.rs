//! Golden-trace regression net (ISSUE 4 tentpole).
//!
//! One small seeded GCN training run — FARe strategy, pre- *and*
//! post-deployment faults, so the fast paths (packed fault kernels,
//! `RemapCache`, incremental refresh) are all exercised — captured as a
//! [`fare::obs::RunManifest`]: the per-epoch loss/accuracy curve, every
//! non-zero telemetry counter and the per-crossbar heatmap rollup,
//! serialised to lossless JSON and compared **byte for byte** against a
//! committed snapshot.
//!
//! "Did the fast path change behaviour?" is now a single diffable test:
//! any change to fault injection order, mapping decisions, cache hit
//! patterns, kernel call counts or the training trajectory shows up as
//! a snapshot diff.
//!
//! The workload definition lives in [`fare::golden`], shared with
//! `tests/trace_golden.rs` and the `fare-report run-golden` CLI gate.
//! The manifest uses the fixed telemetry clock (`ClockMode::Fixed`), so
//! it is bit-identical at any `FARE_RT_THREADS` — `scripts/verify.sh`
//! re-runs this test under 1 and 4 worker threads.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! FARE_GOLDEN_UPDATE=1 cargo test --test golden_trace
//! ```
//!
//! then commit the diff of `tests/golden/golden_trace.json` along with
//! an explanation of why the trace moved (see DESIGN.md §7).

use std::sync::Mutex;

use fare::core::Trainer;
use fare::obs::{self, ClockMode, Mode};

/// Committed snapshot (compiled in, so the test is cwd-independent).
const SNAPSHOT: &str = include_str!("golden/golden_trace.json");

/// Telemetry state is process-global; serialise the tests that touch it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The golden run's manifest matches the committed snapshot exactly.
#[test]
fn golden_trace_matches_committed_snapshot() {
    let _g = lock();
    let text = fare::golden::capture_manifest().to_json_pretty() + "\n";
    if std::env::var("FARE_GOLDEN_UPDATE").as_deref() == Ok("1") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/golden_trace.json"
        );
        std::fs::write(path, &text).expect("write golden snapshot");
        eprintln!("golden_trace: snapshot regenerated at {path}");
        return;
    }
    assert_eq!(
        text, SNAPSHOT,
        "golden trace diverged from tests/golden/golden_trace.json; if the \
         behaviour change is intentional, regenerate with \
         FARE_GOLDEN_UPDATE=1 cargo test --test golden_trace"
    );
}

/// The manifest — counters, timers, epoch curve, heatmaps — is
/// bit-identical on a serial and a 4-worker pool: counters count
/// logical events, not per-chunk work, and the fixed clock keeps
/// timers exact.
#[test]
fn golden_trace_bit_identical_across_thread_counts() {
    let _g = lock();
    fare_rt::par::set_threads(1);
    let one = fare::golden::capture_manifest().to_json_pretty();
    fare_rt::par::set_threads(4);
    let four = fare::golden::capture_manifest().to_json_pretty();
    fare_rt::par::set_threads(0);
    assert_eq!(one, four, "telemetry manifest differs across thread counts");
}

/// `FARE_OBS=off` must be a pure observer: disabling telemetry changes
/// no bit of the training output, and records nothing.
#[test]
fn disabled_telemetry_runs_are_identical_and_silent() {
    let _g = lock();
    let dataset = fare::golden::dataset();

    obs::set_mode(Mode::Off);
    obs::reset();
    let off = Trainer::new(fare::golden::config(), fare::golden::SEED).run(&dataset);
    let silent = obs::RunManifest::capture("off", fare::golden::SEED, &fare::golden::config());
    assert!(silent.counters.is_empty(), "disabled telemetry recorded counters");
    assert!(silent.timers.is_empty(), "disabled telemetry recorded timers");
    assert!(silent.epochs.is_empty(), "disabled telemetry recorded epochs");
    assert!(silent.heatmaps.is_empty(), "disabled telemetry recorded heatmaps");
    assert_eq!(obs::trace::buffered(), 0, "disabled telemetry recorded spans");

    obs::set_mode(Mode::Json);
    obs::set_clock(ClockMode::Fixed(1_000));
    obs::reset();
    let on = Trainer::new(fare::golden::config(), fare::golden::SEED).run(&dataset);
    obs::set_clock(ClockMode::Wall);
    obs::set_mode(Mode::Off);
    obs::reset();

    assert_eq!(off, on, "telemetry fed back into the training computation");
}
