//! Golden-trace regression net (ISSUE 4 tentpole).
//!
//! One small seeded GCN training run — FARe strategy, pre- *and*
//! post-deployment faults, so the fast paths (packed fault kernels,
//! `RemapCache`, incremental refresh) are all exercised — captured as a
//! [`fare::obs::RunManifest`]: the per-epoch loss/accuracy curve plus
//! every non-zero telemetry counter, serialised to lossless JSON and
//! compared **byte for byte** against a committed snapshot.
//!
//! "Did the fast path change behaviour?" is now a single diffable test:
//! any change to fault injection order, mapping decisions, cache hit
//! patterns, kernel call counts or the training trajectory shows up as
//! a snapshot diff.
//!
//! The manifest uses the fixed telemetry clock (`ClockMode::Fixed`), so
//! it is bit-identical at any `FARE_RT_THREADS` — `scripts/verify.sh`
//! re-runs this test under 1 and 4 worker threads.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! FARE_GOLDEN_UPDATE=1 cargo test --test golden_trace
//! ```
//!
//! then commit the diff of `tests/golden/golden_trace.json` along with
//! an explanation of why the trace moved (see DESIGN.md §7).

use std::sync::Mutex;

use fare::core::{FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::obs::{self, ClockMode, Mode};
use fare::reram::FaultSpec;

/// Committed snapshot (compiled in, so the test is cwd-independent).
const SNAPSHOT: &str = include_str!("golden/golden_trace.json");

/// Telemetry state is process-global; serialise the tests that touch it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const GOLDEN_SEED: u64 = 7;

fn golden_config() -> TrainConfig {
    TrainConfig {
        model: ModelKind::Gcn,
        epochs: 5,
        fault_spec: FaultSpec::with_sa1_fraction(0.03, 0.5),
        post_deployment_density: 0.01,
        strategy: FaultStrategy::FaRe,
        ..TrainConfig::default()
    }
}

/// Runs the golden workload under deterministic telemetry and captures
/// its manifest. Leaves telemetry off afterwards.
fn capture_golden_manifest() -> obs::RunManifest {
    obs::set_mode(Mode::Json);
    obs::set_clock(ClockMode::Fixed(1_000));
    obs::reset();
    let dataset = Dataset::generate(DatasetKind::Ppi, GOLDEN_SEED);
    let outcome = Trainer::new(golden_config(), GOLDEN_SEED).run(&dataset);
    let manifest = obs::RunManifest::capture("golden_trace", GOLDEN_SEED, &golden_config())
        .with_bench("final_test_accuracy", outcome.final_test_accuracy)
        .with_bench("best_test_accuracy", outcome.best_test_accuracy)
        .with_bench("final_mapping_cost", outcome.final_mapping_cost as f64)
        .with_bench("normalized_time", outcome.normalized_time);
    obs::set_clock(ClockMode::Wall);
    obs::set_mode(Mode::Off);
    obs::reset();
    manifest
}

/// The golden run's manifest matches the committed snapshot exactly.
#[test]
fn golden_trace_matches_committed_snapshot() {
    let _g = lock();
    let text = capture_golden_manifest().to_json_pretty() + "\n";
    if std::env::var("FARE_GOLDEN_UPDATE").as_deref() == Ok("1") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/golden_trace.json"
        );
        std::fs::write(path, &text).expect("write golden snapshot");
        eprintln!("golden_trace: snapshot regenerated at {path}");
        return;
    }
    assert_eq!(
        text, SNAPSHOT,
        "golden trace diverged from tests/golden/golden_trace.json; if the \
         behaviour change is intentional, regenerate with \
         FARE_GOLDEN_UPDATE=1 cargo test --test golden_trace"
    );
}

/// The manifest — counters, timers, epoch curve — is bit-identical on a
/// serial and a 4-worker pool: counters count logical events, not
/// per-chunk work, and the fixed clock keeps timers exact.
#[test]
fn golden_trace_bit_identical_across_thread_counts() {
    let _g = lock();
    fare_rt::par::set_threads(1);
    let one = capture_golden_manifest().to_json_pretty();
    fare_rt::par::set_threads(4);
    let four = capture_golden_manifest().to_json_pretty();
    fare_rt::par::set_threads(0);
    assert_eq!(one, four, "telemetry manifest differs across thread counts");
}

/// `FARE_OBS=off` must be a pure observer: disabling telemetry changes
/// no bit of the training output, and records nothing.
#[test]
fn disabled_telemetry_runs_are_identical_and_silent() {
    let _g = lock();
    let dataset = Dataset::generate(DatasetKind::Ppi, GOLDEN_SEED);

    obs::set_mode(Mode::Off);
    obs::reset();
    let off = Trainer::new(golden_config(), GOLDEN_SEED).run(&dataset);
    let silent = obs::RunManifest::capture("off", GOLDEN_SEED, &golden_config());
    assert!(silent.counters.is_empty(), "disabled telemetry recorded counters");
    assert!(silent.timers.is_empty(), "disabled telemetry recorded timers");
    assert!(silent.epochs.is_empty(), "disabled telemetry recorded epochs");

    obs::set_mode(Mode::Json);
    obs::set_clock(ClockMode::Fixed(1_000));
    obs::reset();
    let on = Trainer::new(golden_config(), GOLDEN_SEED).run(&dataset);
    obs::set_clock(ClockMode::Wall);
    obs::set_mode(Mode::Off);
    obs::reset();

    assert_eq!(off, on, "telemetry fed back into the training computation");
}
