//! Serde round-trip tests: the data-structure types of the workspace
//! serialise and deserialise losslessly (C-SERDE), enabling experiment
//! checkpointing and the bench harness's `--json` output.

use fare::core::mapping::{map_adjacency, Mapping, MappingConfig};
use fare::core::{EpochStats, FaultStrategy, TrainConfig, TrainOutcome, Trainer};
use fare::gnn::{Gnn, GnnDims};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::graph::CsrGraph;
use fare::reram::{Bist, CrossbarArray, FaultMap, FaultSpec};
use fare::tensor::Matrix;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

fn round_trip<T: fare_rt::json::ToJson + fare_rt::json::FromJson + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    let json = fare_rt::json::to_string(value).expect("serialises");
    let back: T = fare_rt::json::from_str(&json).expect("deserialises");
    assert_eq!(&back, value);
}

#[test]
fn matrix_round_trips() {
    let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);
    round_trip(&m);
}

#[test]
fn csr_graph_round_trips() {
    let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)]);
    round_trip(&g);
}

#[test]
fn fault_spec_and_config_round_trip() {
    round_trip(&FaultSpec::with_ratio(0.03, 9.0, 1.0));
    round_trip(&TrainConfig {
        model: ModelKind::Gat,
        strategy: FaultStrategy::NeuronReordering,
        fault_spec: FaultSpec::density(0.05),
        ..TrainConfig::default()
    });
}

#[test]
fn crossbar_array_and_fault_map_round_trip() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut array = CrossbarArray::new(4, 16);
    array.inject(&FaultSpec::density(0.05), &mut rng);
    round_trip(&array);
    let map: FaultMap = Bist::scan(&array);
    round_trip(&map);
}

#[test]
fn model_round_trips_and_still_runs() {
    let mut rng = StdRng::seed_from_u64(5);
    let dims = GnnDims {
        input: 6,
        hidden: 8,
        output: 3,
    };
    for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
        let model = Gnn::new(kind, dims, &mut rng);
        let json = fare_rt::json::to_string(&model).expect("serialises");
        let back: Gnn = fare_rt::json::from_str(&json).expect("deserialises");
        assert_eq!(back, model);
        // The restored model computes identically (edge checkpointing).
        let adj = fare::graph::GraphView::from_dense(Matrix::from_rows(&[
            &[0.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
        ]));
        let x = Matrix::from_fn(3, 6, |r, c| ((r * 6 + c) as f32 * 0.3).sin());
        let (a, _) = model.forward(&adj, &x, &fare::gnn::IdealReader);
        let (b, _) = back.forward(&adj, &x, &fare::gnn::IdealReader);
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn mapping_round_trips() {
    let mut rng = StdRng::seed_from_u64(7);
    let adj = Matrix::from_fn(16, 16, |i, j| {
        if i != j && (i * 5 + j) % 7 == 0 {
            1.0
        } else {
            0.0
        }
    });
    let adj = adj.zip_map(&adj.transpose(), |a, b| if a + b > 0.0 { 1.0 } else { 0.0 });
    let mut array = CrossbarArray::new(8, 8);
    array.inject(&FaultSpec::density(0.05), &mut rng);
    let mapping: Mapping = map_adjacency(&adj, &array, &MappingConfig::default());
    round_trip(&mapping);
}

#[test]
fn train_outcome_round_trips() {
    let ds = Dataset::generate(DatasetKind::Ppi, 9);
    let config = TrainConfig {
        epochs: 2,
        fault_spec: FaultSpec::density(0.02),
        ..TrainConfig::default()
    };
    let out: TrainOutcome = Trainer::new(config, 9).run(&ds);
    // JSON round-trips of f64 may differ by one ULP in serde_json's
    // reader, so compare with tolerance; the *second* round-trip must be
    // a fixed point.
    let json = fare_rt::json::to_string(&out).expect("serialises");
    let back: TrainOutcome = fare_rt::json::from_str(&json).expect("deserialises");
    assert_eq!(back.history.len(), out.history.len());
    for (a, b) in back.history.iter().zip(&out.history) {
        assert_eq!(a.epoch, b.epoch);
        assert!((a.loss - b.loss).abs() < 1e-12);
        assert!((a.train_accuracy - b.train_accuracy).abs() < 1e-12);
        assert!((a.test_accuracy - b.test_accuracy).abs() < 1e-12);
    }
    assert_eq!(back.num_batches, out.num_batches);
    assert_eq!(back.final_mapping_cost, out.final_mapping_cost);
    let json2 = fare_rt::json::to_string(&back).expect("serialises");
    let back2: TrainOutcome = fare_rt::json::from_str(&json2).expect("deserialises");
    assert_eq!(back2, back, "second round-trip must be lossless");
    let stats: EpochStats = back.history[0];
    round_trip(&stats);
}
