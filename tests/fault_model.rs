//! Cross-crate checks of the fault model itself: statistics of the
//! injection campaign and how faults propagate into the numerics.

use fare::core::FaultyWeightReader;
use fare::gnn::{Gnn, GnnDims, IdealReader, WeightReader};
use fare::graph::datasets::ModelKind;
use fare::reram::weights::WeightFabric;
use fare::reram::{CrossbarArray, FaultSpec, StuckPolarity};
use fare::tensor::{FixedFormat, Matrix};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

#[test]
fn injection_statistics_match_spec_across_scales() {
    let mut rng = StdRng::seed_from_u64(1);
    for (count, n, density) in [(64usize, 32usize, 0.05f64), (16, 128, 0.01), (100, 16, 0.03)] {
        let mut array = CrossbarArray::new(count, n);
        array.inject(&FaultSpec::with_ratio(density, 9.0, 1.0), &mut rng);
        let measured = array.fault_density();
        assert!(
            (measured - density).abs() < density * 0.35 + 0.002,
            "{count}x{n}: target {density}, measured {measured}"
        );
        if array.fault_count() > 100 {
            let sa1_frac = array.sa1_count() as f64 / array.fault_count() as f64;
            assert!((sa1_frac - 0.1).abs() < 0.06, "sa1 fraction {sa1_frac}");
        }
    }
}

#[test]
fn sa1_explosions_are_bounded_by_reader_clip() {
    let mut rng = StdRng::seed_from_u64(2);
    let dims = GnnDims {
        input: 16,
        hidden: 16,
        output: 8,
    };
    let model = Gnn::new(ModelKind::Gcn, dims, &mut rng);
    let mut reader = FaultyWeightReader::for_model(&model, 16);
    reader.inject(&FaultSpec::density(0.05).sa1_only(), &mut rng);

    // Without clipping: at 5% SA1-only density some weight must explode.
    let mut worst = 0.0f32;
    for ps in model.param_shapes() {
        let read = reader.read(ps.layer, ps.param, model.param(ps.layer, ps.param));
        worst = worst.max(read.max().abs()).max(read.min().abs());
    }
    assert!(worst > 5.0, "expected an explosion, worst |w| = {worst}");

    // With clipping: every read weight is bounded by θ.
    reader.set_clip(Some(1.0));
    for ps in model.param_shapes() {
        let read = reader.read(ps.layer, ps.param, model.param(ps.layer, ps.param));
        assert!(read.iter().all(|v| v.abs() <= 1.0));
    }
}

#[test]
fn sa0_only_faults_never_explode_weights() {
    // Sign-magnitude storage: SA0 shrinks magnitudes. No clipping needed.
    let mut rng = StdRng::seed_from_u64(3);
    let mut fabric = WeightFabric::for_shape(64, 32, 16, FixedFormat::default());
    fabric.inject(&FaultSpec::density(0.10).sa0_only(), &mut rng);
    let w = Matrix::from_fn(64, 32, |r, c| ((r + c) as f32 * 0.13).sin() * 0.5);
    let out = fabric.corrupt(&w);
    for (a, b) in w.iter().zip(out.iter()) {
        assert!(
            b.abs() <= a.abs() + fabric.format().resolution(),
            "SA0 grew |{a}| to |{b}|"
        );
    }
}

#[test]
fn faulty_reader_equals_ideal_reader_when_fault_free() {
    let mut rng = StdRng::seed_from_u64(4);
    let dims = GnnDims {
        input: 8,
        hidden: 8,
        output: 4,
    };
    let model = Gnn::new(ModelKind::Sage, dims, &mut rng);
    let reader = FaultyWeightReader::for_model(&model, 16);
    let adj = Matrix::from_fn(6, 6, |i, j| if (i + 1) % 6 == j { 1.0 } else { 0.0 });
    let adj = fare::graph::GraphView::from_dense(&adj + &adj.transpose());
    let x = Matrix::from_fn(6, 8, |i, j| ((i * 8 + j) as f32 * 0.21).cos());
    let (faulty_logits, _) = model.forward(&adj, &x, &reader);
    let (ideal_logits, _) = model.forward(&adj, &x, &IdealReader);
    // Only quantisation separates them.
    for (a, b) in faulty_logits.iter().zip(ideal_logits.iter()) {
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }
}

#[test]
fn adjacency_polarity_semantics_through_full_stack() {
    // SA0 under an edge deletes it; SA1 under a non-edge fabricates one;
    // matching polarities are invisible.
    let mut adj = Matrix::zeros(8, 8);
    adj[(0, 1)] = 1.0;
    adj[(1, 0)] = 1.0;
    adj[(2, 3)] = 1.0;
    adj[(3, 2)] = 1.0;
    let mut array = CrossbarArray::new(1, 8);
    array.crossbar_mut(0).inject_fault(0, 1, StuckPolarity::StuckAtZero); // on edge
    array.crossbar_mut(0).inject_fault(4, 5, StuckPolarity::StuckAtOne); // on non-edge
    array.crossbar_mut(0).inject_fault(2, 3, StuckPolarity::StuckAtOne); // matches stored 1

    let out = fare::core::corrupt_adjacency_unaware(&adj, &array);
    assert_eq!(out[(0, 1)], 0.0, "SA0 must delete the edge");
    assert_eq!(out[(4, 5)], 1.0, "SA1 must fabricate an edge");
    assert_eq!(out[(2, 3)], 1.0, "SA1 under a stored 1 is harmless");
    // Asymmetric corruption: the paper stores A in full, so only the hit
    // direction changes.
    assert_eq!(out[(1, 0)], 1.0);
}

#[test]
fn fault_density_survives_weight_fabric_geometry() {
    // The fabric's grid allocation must not distort injected density.
    let mut rng = StdRng::seed_from_u64(6);
    let mut fabric = WeightFabric::for_shape(100, 50, 32, FixedFormat::default());
    fabric.inject(&FaultSpec::density(0.04), &mut rng);
    let measured = fabric.array().fault_density();
    assert!((measured - 0.04).abs() < 0.015, "measured {measured}");
}
