//! Hermeticity lint: no workspace manifest may declare a registry
//! dependency (C-HERMETIC).
//!
//! The build must succeed with no network and a cold cargo cache, so the
//! only dependencies allowed anywhere are in-repo `path` deps (declared
//! once in `[workspace.dependencies]`) and `X.workspace = true`
//! references to them. A dep line like `rand = "0.8"` — or a table
//! without a `path` key — would reintroduce crates.io and break every
//! offline environment; this test makes that a test failure instead of
//! a CI surprise.

use std::path::{Path, PathBuf};

/// Every `Cargo.toml` in the workspace (root + `crates/*`).
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("crates/ exists") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() >= 11, "expected root + 10 crates, found {}", out.len());
    out
}

/// The `key = value` dependency lines of every `[*dependencies*]`
/// section, with comments stripped.
fn dependency_lines(toml: &str) -> Vec<(String, String)> {
    let mut in_deps = false;
    let mut out = Vec::new();
    for raw in toml.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push((key.trim().to_string(), value.trim().to_string()));
        }
    }
    out
}

#[test]
fn all_dependencies_are_in_repo_path_deps() {
    for manifest in workspace_manifests() {
        let toml = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        for (name, value) in dependency_lines(&toml) {
            // Sub-keys of an already-vetted inline table, e.g. the
            // `path`/`version` keys themselves, only appear inside
            // `{ ... }` values handled below.
            let hermetic = value.contains("path =")
                || value.contains("path=")
                || value == "{ workspace = true }"
                || value.ends_with("workspace = true")
                || (name.ends_with(".workspace") && value == "true");
            assert!(
                hermetic,
                "{}: dependency `{name} = {value}` is not a path/workspace dep — \
                 registry deps break the offline build",
                manifest.display()
            );
            if value.contains("path") {
                let path_ok = value.contains("crates/");
                assert!(
                    path_ok,
                    "{}: dependency `{name}` points outside the repo: {value}",
                    manifest.display()
                );
            }
        }
    }
}

#[test]
fn workspace_dependency_table_only_names_fare_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let toml = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut in_table = false;
    for raw in toml.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() {
            continue;
        }
        let name = line.split('=').next().unwrap().trim();
        assert!(
            name.starts_with("fare-"),
            "[workspace.dependencies] names a non-workspace crate: {name}"
        );
    }
}
