//! Integration tests for the extension surface: non-ideality models,
//! tile locality, alternate solvers and custom data, exercised together
//! through the facade.

use fare::core::mapping::{map_adjacency, LocalityConfig, MappingConfig};
use fare::core::{FaultStrategy, TrainConfig, Trainer};
use fare::graph::generate;
use fare::graph::io::{assemble_dataset, read_edge_list};
use fare::matching::Matcher;
use fare::reram::{CrossbarArray, FaultSpec};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

#[test]
fn auction_solver_drives_the_full_mapping() {
    let mut rng = StdRng::seed_from_u64(1);
    let (g, _) = generate::sbm(48, 3, 0.2, 0.02, &mut rng);
    let adj = g.to_dense();
    let mut array = CrossbarArray::new(18, 16);
    array.inject(&FaultSpec::with_ratio(0.05, 1.0, 1.0), &mut rng);

    let auction = map_adjacency(
        &adj,
        &array,
        &MappingConfig {
            matcher: Matcher::Auction,
            ..MappingConfig::default()
        },
    );
    let hungarian = map_adjacency(
        &adj,
        &array,
        &MappingConfig {
            matcher: Matcher::Hungarian,
            ..MappingConfig::default()
        },
    );
    // Both exact solvers: identical total mismatch cost.
    assert_eq!(auction.total_cost(), hungarian.total_cost());
}

#[test]
fn trainer_accepts_auction_matcher() {
    let ds = fare::graph::datasets::Dataset::generate(fare::graph::datasets::DatasetKind::Ppi, 2);
    let out = Trainer::new(
        TrainConfig {
            epochs: 3,
            matcher: Matcher::Auction,
            fault_spec: FaultSpec::density(0.03),
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        },
        2,
    )
    .run(&ds);
    assert!(out.final_test_accuracy > 0.3);
}

#[test]
fn locality_composes_with_full_training() {
    // A trainer-style mapping with locality on an R-MAT graph: every
    // block placed, spread no worse than without locality.
    let mut rng = StdRng::seed_from_u64(3);
    let g = generate::rmat(6, 400, 0.45, 0.22, 0.22, &mut rng);
    let adj = g.to_dense();
    let blocks = adj.rows().div_ceil(16).pow(2);
    let mut array = CrossbarArray::new(blocks * 2, 16);
    array.inject(&FaultSpec::density(0.04), &mut rng);

    let plain = map_adjacency(&adj, &array, &MappingConfig::default());
    let local = map_adjacency(
        &adj,
        &array,
        &MappingConfig {
            locality: Some(LocalityConfig::new(4, 5.0)),
            ..MappingConfig::default()
        },
    );
    assert_eq!(local.placements().len(), plain.placements().len());
    assert!(local.tile_spread(4) <= plain.tile_spread(4));
}

#[test]
fn all_nonidealities_compose_in_one_run() {
    // SAFs + programming variation + drift + post-deployment faults +
    // regularisation, all at once, with FARe: training must remain
    // stable and learn.
    let ds = fare::graph::datasets::Dataset::generate(
        fare::graph::datasets::DatasetKind::Reddit,
        4,
    );
    let out = Trainer::new(
        TrainConfig {
            epochs: 10,
            fault_spec: FaultSpec::with_ratio(0.02, 9.0, 1.0),
            weight_variation_sigma: 0.05,
            weight_drift_sigma: 0.005,
            post_deployment_density: 0.005,
            weight_decay: 0.0005,
            grad_clip_norm: 5.0,
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        },
        4,
    )
    .run(&ds);
    assert!(
        out.final_test_accuracy > 0.7,
        "composed non-idealities broke training: {:.3}",
        out.final_test_accuracy
    );
    assert!(out.history.iter().all(|e| e.loss.is_finite()));
}

#[test]
fn custom_rmat_dataset_trains_under_faults() {
    // R-MAT graph → edge-list text → io loader → trainer, end to end.
    let mut rng = StdRng::seed_from_u64(5);
    let g = generate::rmat(7, 800, 0.5, 0.2, 0.2, &mut rng);
    let mut text = String::new();
    for (u, v) in g.edges() {
        text.push_str(&format!("{u} {v}\n"));
    }
    let reloaded = read_edge_list(text.as_bytes()).expect("round-trip parse");
    assert_eq!(reloaded.num_edges(), g.num_edges());
    // Degree-based two-class labels (hubs vs non-hubs): learnable from
    // structure alone.
    let mean_deg = reloaded.average_degree();
    let labels: Vec<usize> = (0..reloaded.num_nodes())
        .map(|u| usize::from(reloaded.degree(u) as f64 > mean_deg))
        .collect();
    let ds = assemble_dataset(reloaded, labels, None, 8, 2, 5).expect("assemble");
    // SAGE: its explicit self path keeps the hub's own degree channel
    // visible (GCN's symmetric normalisation scales a hub's self loop by
    // 1/(deg+1), washing the signal out).
    let out = Trainer::new(
        TrainConfig {
            model: fare::graph::datasets::ModelKind::Sage,
            epochs: 10,
            fault_spec: FaultSpec::density(0.02),
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        },
        5,
    )
    .run(&ds);
    assert!(
        out.final_test_accuracy > 0.6,
        "hub classification failed: {:.3}",
        out.final_test_accuracy
    );
}
