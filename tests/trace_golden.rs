//! Trace-golden regression net (ISSUE 5 tentpole).
//!
//! Runs the shared golden workload ([`fare::golden`]) under
//! `FARE_OBS=trace` with the fixed telemetry clock and pins the
//! resulting hierarchical span trace:
//!
//! - the JSONL stream is **byte-identical** across `FARE_RT_THREADS`
//!   and across repeated runs (spans are emitted on logical paths only;
//!   fixed-clock timestamps come from a global event sequence),
//! - its FNV-1a digest, event count and per-span begin counts match the
//!   committed `tests/golden/golden_trace_digest.json` (the full stream
//!   is a few hundred KB, so the digest is what gets committed),
//! - the stream is structurally sound (balanced nesting, monotone
//!   timestamps) and the Chrome export parses as JSON,
//! - the trace-mode manifest equals the json-mode manifest, so the
//!   `fare-report run-golden` → `diff` verify.sh gate compares apples
//!   to apples.
//!
//! Regenerate the digest after an intentional behaviour change with:
//!
//! ```text
//! FARE_GOLDEN_UPDATE=1 cargo test --test trace_golden
//! ```

use std::sync::Mutex;

/// Committed digest snapshot.
const DIGEST_SNAPSHOT: &str = include_str!("golden/golden_trace_digest.json");

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One span name with its begin-event count.
#[derive(Debug, Clone, PartialEq)]
struct SpanCount {
    name: String,
    begins: u64,
}
fare_rt::json_struct!(SpanCount { name, begins });

/// The committed fingerprint of the golden JSONL trace.
#[derive(Debug, Clone, PartialEq)]
struct TraceDigest {
    events: u64,
    dropped: u64,
    fnv64: String,
    span_counts: Vec<SpanCount>,
}
fare_rt::json_struct!(TraceDigest {
    events,
    dropped,
    fnv64,
    span_counts
});

fn digest_of(log: &fare::obs::trace::TraceLog) -> TraceDigest {
    let jsonl = log.to_jsonl();
    TraceDigest {
        events: log.events.len() as u64,
        dropped: log.dropped,
        fnv64: format!("{:016x}", fare::report::fnv1a64(jsonl.as_bytes())),
        span_counts: log
            .span_counts()
            .into_iter()
            .map(|(name, begins)| SpanCount { name, begins })
            .collect(),
    }
}

/// The golden trace digest matches the committed snapshot, and the
/// stream itself is structurally sound and export-clean.
#[test]
fn golden_span_trace_matches_committed_digest() {
    let _g = lock();
    let (_, log) = fare::golden::capture_trace();

    log.validate_nesting().expect("balanced, monotone span stream");
    assert_eq!(log.dropped, 0, "golden trace must fit the ring buffer");

    // Round trip and Chrome export stay healthy on the real stream.
    let jsonl = log.to_jsonl();
    let back = fare::obs::trace::TraceLog::from_jsonl(&jsonl).expect("JSONL parses back");
    assert_eq!(back, log, "JSONL round trip is lossless");
    fare_rt::json::parse(&log.to_chrome()).expect("chrome export is valid JSON");

    let digest = digest_of(&log);
    let text = fare_rt::json::to_string_pretty(&digest).unwrap() + "\n";
    if std::env::var("FARE_GOLDEN_UPDATE").as_deref() == Ok("1") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/golden_trace_digest.json"
        );
        std::fs::write(path, &text).expect("write digest snapshot");
        eprintln!("trace_golden: digest regenerated at {path}");
        return;
    }
    let committed: TraceDigest =
        fare_rt::json::from_str(DIGEST_SNAPSHOT).expect("committed digest parses");
    assert_eq!(
        digest, committed,
        "golden span trace diverged from tests/golden/golden_trace_digest.json; \
         if the behaviour change is intentional, regenerate with \
         FARE_GOLDEN_UPDATE=1 cargo test --test trace_golden"
    );
}

/// The JSONL trace is byte-identical across worker-pool sizes and
/// across repeated runs — the ISSUE 5 acceptance criterion.
#[test]
fn golden_span_trace_is_byte_identical_across_thread_counts() {
    let _g = lock();
    fare_rt::par::set_threads(1);
    let one = fare::golden::capture_trace().1.to_jsonl();
    fare_rt::par::set_threads(4);
    let four = fare::golden::capture_trace().1.to_jsonl();
    let again = fare::golden::capture_trace().1.to_jsonl();
    fare_rt::par::set_threads(0);
    assert_eq!(one, four, "span trace differs across thread counts");
    assert_eq!(four, again, "span trace differs run-to-run");
}

/// Trace mode is a strict superset of json mode: the manifests agree,
/// so `fare-report diff` between a json-mode golden snapshot and a
/// trace-mode fresh run gates on real regressions only.
#[test]
fn trace_mode_manifest_equals_json_mode_manifest() {
    let _g = lock();
    let json_mode = fare::golden::capture_manifest();
    let (trace_mode, _) = fare::golden::capture_trace();
    assert_eq!(
        json_mode.to_json_pretty(),
        trace_mode.to_json_pretty(),
        "recording spans changed the counter/timer/epoch/heatmap record"
    );
}
