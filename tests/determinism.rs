//! Bit-exact reproducibility of seeded runs (C-DETERMINISM).
//!
//! Every result in the repo is keyed by a `u64` seed, so two runs with
//! the same seed must produce *identical* — not merely close — numbers.
//! This holds across thread counts too: `fare_rt::par` reassembles
//! chunked results positionally, so the parallel experiment drivers and
//! the mapping pipeline cannot reorder floating-point reductions.

use std::sync::Mutex;

use fare::core::mapping::{
    map_adjacency, map_adjacency_cached, refresh_row_permutations,
    refresh_row_permutations_cached, MappingConfig, RemapCache,
};
use fare::core::{FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::obs::{self, ClockMode, Mode};
use fare::reram::{CrossbarArray, FaultSpec};
use fare::tensor::Matrix;

/// Telemetry mode and counters are process-global. The counter gates
/// below flip the mode to `Json`; any instrumented work running
/// concurrently in this binary would pollute their manifests, so every
/// test here takes this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_config() -> TrainConfig {
    TrainConfig {
        model: ModelKind::Gcn,
        epochs: 4,
        fault_spec: FaultSpec::density(0.03),
        strategy: FaultStrategy::FaRe,
        ..TrainConfig::default()
    }
}

/// Same-seed GCN training yields bit-identical loss trajectories.
#[test]
fn same_seed_training_is_bit_identical() {
    let _g = lock();
    let ds = Dataset::generate(DatasetKind::Ppi, 11);
    let a = Trainer::new(quick_config(), 11).run(&ds);
    let b = Trainer::new(quick_config(), 11).run(&ds);
    assert_eq!(a.history.len(), b.history.len());
    for (ea, eb) in a.history.iter().zip(&b.history) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits(), "epoch {}", ea.epoch);
        assert_eq!(ea.train_accuracy.to_bits(), eb.train_accuracy.to_bits());
        assert_eq!(ea.test_accuracy.to_bits(), eb.test_accuracy.to_bits());
    }
    assert_eq!(a, b);
}

/// Different seeds actually change the trajectory (the seed is not
/// silently ignored anywhere in the pipeline).
#[test]
fn different_seeds_diverge() {
    let _g = lock();
    let ds = Dataset::generate(DatasetKind::Ppi, 11);
    let a = Trainer::new(quick_config(), 11).run(&ds);
    let b = Trainer::new(quick_config(), 12).run(&ds);
    assert_ne!(a.history, b.history);
}

/// The fault-aware mapping pipeline (a `par_iter` consumer) produces the
/// same placement on 1 thread and 4 threads.
#[test]
fn mapping_identical_across_thread_counts() {
    let _g = lock();
    let mut rng = fare_rt::rng(21);
    let adj = Matrix::from_fn(96, 96, |i, j| {
        if i != j && (i * 13 + j * 7) % 11 == 0 {
            1.0
        } else {
            0.0
        }
    });
    let adj = adj.zip_map(&adj.transpose(), |a, b| if a + b > 0.0 { 1.0 } else { 0.0 });
    let mut array = CrossbarArray::new(18, 32);
    array.inject(&FaultSpec::density(0.05), &mut rng);
    let cfg = MappingConfig::default();

    fare_rt::par::set_threads(1);
    let one = map_adjacency(&adj, &array, &cfg);
    fare_rt::par::set_threads(4);
    let four = map_adjacency(&adj, &array, &cfg);
    fare_rt::par::set_threads(0);
    assert_eq!(one, four);
}

/// The incremental post-BIST refresh — cache hits for untouched
/// crossbars, parallel re-solves for mutated ones — is bit-identical to
/// the full recompute at 1, 2 and 8 threads.
#[test]
fn incremental_refresh_identical_across_thread_counts() {
    let _g = lock();
    use fare::matching::Matcher;
    use fare::reram::StuckPolarity;

    let mut rng = fare_rt::rng(22);
    let adj = Matrix::from_fn(96, 96, |i, j| {
        if i != j && (i * 17 + j * 5) % 13 == 0 {
            1.0
        } else {
            0.0
        }
    });
    let adj = adj.zip_map(&adj.transpose(), |a, b| if a + b > 0.0 { 1.0 } else { 0.0 });
    let mut array = CrossbarArray::new(18, 32);
    array.inject(&FaultSpec::density(0.04), &mut rng);
    let cfg = MappingConfig::default();

    let mut cache = RemapCache::new();
    let mapping = map_adjacency_cached(&adj, &array, &cfg, &mut cache);

    // Post-deployment BIST finds new faults on a subset of crossbars.
    for j in [1usize, 7, 12] {
        array
            .crossbar_mut(j)
            .inject_fault(j % 32, (3 * j) % 32, StuckPolarity::StuckAtOne);
    }

    let run = |t: usize| {
        fare_rt::par::set_threads(t);
        let mut c = cache.clone();
        let incremental =
            refresh_row_permutations_cached(&adj, &array, &mapping, cfg.matcher, &mut c);
        let full = refresh_row_permutations(&adj, &array, &mapping, cfg.matcher);
        (incremental, full)
    };
    let (inc1, full1) = run(1);
    let (inc2, full2) = run(2);
    let (inc8, full8) = run(8);
    fare_rt::par::set_threads(0);
    assert_eq!(inc1, full1, "incremental refresh must equal full recompute");
    assert_eq!(inc1, inc2);
    assert_eq!(inc1, inc8);
    assert_eq!(full1, full2);
    assert_eq!(full1, full8);

    // Both matchers: the Hungarian refresh path is thread-invariant too.
    fare_rt::par::set_threads(2);
    let h2 = refresh_row_permutations(&adj, &array, &mapping, Matcher::Hungarian);
    fare_rt::par::set_threads(1);
    let h1 = refresh_row_permutations(&adj, &array, &mapping, Matcher::Hungarian);
    fare_rt::par::set_threads(0);
    assert_eq!(h1, h2);
}

/// Full training (which drives the parallel experiment plumbing through
/// partitioning, batching, mapping and epochs) is thread-count
/// invariant end to end.
#[test]
fn training_identical_across_thread_counts() {
    let _g = lock();
    let ds = Dataset::generate(DatasetKind::Ppi, 13);
    fare_rt::par::set_threads(1);
    let one = Trainer::new(quick_config(), 13).run(&ds);
    fare_rt::par::set_threads(4);
    let four = Trainer::new(quick_config(), 13).run(&ds);
    fare_rt::par::set_threads(0);
    for (ea, eb) in one.history.iter().zip(&four.history) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits(), "epoch {}", ea.epoch);
    }
    assert_eq!(one, four);
}

/// Every parallel compute kernel — the dense matmul family, the sparse
/// aggregation kernels, and the crossbar matmul — produces bit-identical
/// output at 1, 2 and 8 threads. All of them partition work by disjoint
/// output rows, so no floating-point reduction can be reordered.
#[test]
fn compute_kernels_identical_across_thread_counts() {
    let _g = lock();
    use fare::graph::{generate, CsrMatrix, GraphView};
    use fare::reram::mvm::crossbar_matmul;
    use fare::reram::weights::WeightFabric;
    use fare::reram::FaultSpec as Spec;
    use fare::tensor::{init, FixedFormat};
    use fare_rt::rand::{Rng, SeedableRng};

    let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(31);
    let g = generate::erdos_renyi(64, 0.1, &mut rng);
    let x = init::normal(64, 12, 1.0, &mut rng);
    let a = Matrix::from_fn(33, 17, |_, _| rng.gen_range(-1.0f32..1.0));
    let b = Matrix::from_fn(17, 9, |_, _| rng.gen_range(-1.0f32..1.0));
    let mut fabric = WeightFabric::for_shape(17, 9, 16, FixedFormat::default());
    fabric.inject(&Spec::density(0.05), &mut rng);
    let view = GraphView::from_graph(&g);
    let sparse = CsrMatrix::from_dense(&g.to_dense());

    let bits = |m: &Matrix| m.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    let run = |t: usize| {
        fare_rt::par::set_threads(t);
        [
            a.matmul(&b),
            a.transpose().t_matmul(&b),
            a.matmul_t(&b.transpose()),
            g.spmm(&x),
            g.gcn_aggregate(&x),
            g.mean_aggregate(&x),
            sparse.spmm(&x),
            view.gcn_norm().spmm(&x),
            crossbar_matmul(&fabric, &b, &a),
        ]
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    fare_rt::par::set_threads(0);
    for (k, serial) in one.iter().enumerate() {
        assert_eq!(bits(serial), bits(&two[k]), "kernel {k} differs at 2 threads");
        assert_eq!(bits(serial), bits(&eight[k]), "kernel {k} differs at 8 threads");
    }
}

/// Counter-determinism gate: the telemetry manifest — every counter,
/// timer and per-epoch record — is bit-identical on a serial and a
/// 4-worker pool. Counters count *logical* events (faults injected,
/// epochs run, cache hits), never per-chunk worker activity, and the
/// fixed clock removes wall time, so nothing in the manifest may depend
/// on how work was chunked.
#[test]
fn telemetry_manifest_identical_across_thread_counts() {
    let _g = lock();
    let ds = Dataset::generate(DatasetKind::Ppi, 17);
    let capture = |t: usize| {
        fare_rt::par::set_threads(t);
        obs::set_mode(Mode::Json);
        obs::set_clock(ClockMode::Fixed(500));
        obs::reset();
        let out = Trainer::new(quick_config(), 17).run(&ds);
        let manifest = obs::RunManifest::capture("determinism", 17, &quick_config())
            .with_bench("final_test_accuracy", out.final_test_accuracy);
        obs::set_clock(ClockMode::Wall);
        obs::set_mode(Mode::Off);
        obs::reset();
        (out, manifest.to_json_pretty())
    };
    let (out1, manifest1) = capture(1);
    let (out4, manifest4) = capture(4);
    fare_rt::par::set_threads(0);
    assert_eq!(out1, out4, "training output differs across thread counts");
    assert_eq!(
        manifest1, manifest4,
        "telemetry manifest differs across thread counts"
    );
}

/// Disabled telemetry is a pure observer: turning it off changes no bit
/// of the training output (counters sit behind a relaxed-atomic mode
/// check and never feed back into the computation).
#[test]
fn disabled_telemetry_does_not_perturb_training() {
    let _g = lock();
    let ds = Dataset::generate(DatasetKind::Ppi, 19);

    obs::set_mode(Mode::Off);
    obs::reset();
    let off = Trainer::new(quick_config(), 19).run(&ds);

    obs::set_mode(Mode::Json);
    obs::set_clock(ClockMode::Fixed(500));
    obs::reset();
    let on = Trainer::new(quick_config(), 19).run(&ds);
    obs::set_clock(ClockMode::Wall);
    obs::set_mode(Mode::Off);
    obs::reset();

    assert_eq!(off, on, "telemetry fed back into the training computation");
}
