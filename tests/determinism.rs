//! Bit-exact reproducibility of seeded runs (C-DETERMINISM).
//!
//! Every result in the repo is keyed by a `u64` seed, so two runs with
//! the same seed must produce *identical* — not merely close — numbers.
//! This holds across thread counts too: `fare_rt::par` reassembles
//! chunked results positionally, so the parallel experiment drivers and
//! the mapping pipeline cannot reorder floating-point reductions.

use fare::core::mapping::{map_adjacency, MappingConfig};
use fare::core::{FaultStrategy, TrainConfig, Trainer};
use fare::graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare::reram::{CrossbarArray, FaultSpec};
use fare::tensor::Matrix;

fn quick_config() -> TrainConfig {
    TrainConfig {
        model: ModelKind::Gcn,
        epochs: 4,
        fault_spec: FaultSpec::density(0.03),
        strategy: FaultStrategy::FaRe,
        ..TrainConfig::default()
    }
}

/// Same-seed GCN training yields bit-identical loss trajectories.
#[test]
fn same_seed_training_is_bit_identical() {
    let ds = Dataset::generate(DatasetKind::Ppi, 11);
    let a = Trainer::new(quick_config(), 11).run(&ds);
    let b = Trainer::new(quick_config(), 11).run(&ds);
    assert_eq!(a.history.len(), b.history.len());
    for (ea, eb) in a.history.iter().zip(&b.history) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits(), "epoch {}", ea.epoch);
        assert_eq!(ea.train_accuracy.to_bits(), eb.train_accuracy.to_bits());
        assert_eq!(ea.test_accuracy.to_bits(), eb.test_accuracy.to_bits());
    }
    assert_eq!(a, b);
}

/// Different seeds actually change the trajectory (the seed is not
/// silently ignored anywhere in the pipeline).
#[test]
fn different_seeds_diverge() {
    let ds = Dataset::generate(DatasetKind::Ppi, 11);
    let a = Trainer::new(quick_config(), 11).run(&ds);
    let b = Trainer::new(quick_config(), 12).run(&ds);
    assert_ne!(a.history, b.history);
}

/// The fault-aware mapping pipeline (a `par_iter` consumer) produces the
/// same placement on 1 thread and 4 threads.
#[test]
fn mapping_identical_across_thread_counts() {
    let mut rng = fare_rt::rng(21);
    let adj = Matrix::from_fn(96, 96, |i, j| {
        if i != j && (i * 13 + j * 7) % 11 == 0 {
            1.0
        } else {
            0.0
        }
    });
    let adj = adj.zip_map(&adj.transpose(), |a, b| if a + b > 0.0 { 1.0 } else { 0.0 });
    let mut array = CrossbarArray::new(18, 32);
    array.inject(&FaultSpec::density(0.05), &mut rng);
    let cfg = MappingConfig::default();

    fare_rt::par::set_threads(1);
    let one = map_adjacency(&adj, &array, &cfg);
    fare_rt::par::set_threads(4);
    let four = map_adjacency(&adj, &array, &cfg);
    fare_rt::par::set_threads(0);
    assert_eq!(one, four);
}

/// Full training (which drives the parallel experiment plumbing through
/// partitioning, batching, mapping and epochs) is thread-count
/// invariant end to end.
#[test]
fn training_identical_across_thread_counts() {
    let ds = Dataset::generate(DatasetKind::Ppi, 13);
    fare_rt::par::set_threads(1);
    let one = Trainer::new(quick_config(), 13).run(&ds);
    fare_rt::par::set_threads(4);
    let four = Trainer::new(quick_config(), 13).run(&ds);
    fare_rt::par::set_threads(0);
    for (ea, eb) in one.history.iter().zip(&four.history) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits(), "epoch {}", ea.epoch);
    }
    assert_eq!(one, four);
}
