//! Integration tests asserting the *qualitative claims* of the paper's
//! evaluation section on scaled-down runs. Absolute numbers differ from
//! the paper (synthetic graphs, smaller scale); the shapes must not.

use fare::core::experiments::{
    fig3, fig5, fig7, table2_workloads, ExperimentParams, FaultPhase, Workload,
};
use fare::core::related::{table1, Overhead};
use fare::core::FaultStrategy;
use fare::graph::datasets::{DatasetKind, ModelKind};
use fare::tensor::fixed::StuckPolarity;

fn quick_params() -> ExperimentParams {
    ExperimentParams {
        epochs: 12,
        seed: 42,
        trials: 2,
    }
}

#[test]
fn table1_only_fare_has_every_capability_cheaply() {
    let rows = table1();
    let winners: Vec<_> = rows
        .iter()
        .filter(|t| {
            t.training
                && t.combination
                && t.aggregation
                && t.post_deployment
                && t.overhead == Overhead::Low
        })
        .collect();
    assert_eq!(winners.len(), 1);
    assert_eq!(winners[0].reference, "FARe");
}

#[test]
fn fig3_sa1_more_severe_than_sa0() {
    let result = fig3(&quick_params());
    // Weights: SA1 must be drastically worse than SA0 (weight explosion).
    let w_sa0 = result.accuracy_of(FaultPhase::Weights, StuckPolarity::StuckAtZero);
    let w_sa1 = result.accuracy_of(FaultPhase::Weights, StuckPolarity::StuckAtOne);
    assert!(
        w_sa1 + 0.10 < w_sa0,
        "weights: SA1 ({w_sa1:.3}) should be well below SA0 ({w_sa0:.3})"
    );
    // Adjacency: SA1 (fabricated edges) at least as harmful as SA0
    // (deleted edges).
    let a_sa0 = result.accuracy_of(FaultPhase::Adjacency, StuckPolarity::StuckAtZero);
    let a_sa1 = result.accuracy_of(FaultPhase::Adjacency, StuckPolarity::StuckAtOne);
    assert!(
        a_sa1 <= a_sa0 + 0.02,
        "adjacency: SA1 ({a_sa1:.3}) should not beat SA0 ({a_sa0:.3})"
    );
    // And no faulty case beats the fault-free reference materially.
    assert!(w_sa1 < result.fault_free - 0.05);
}

/// Median of three samples, without sorting floats in-place elsewhere.
fn median3(a: f64, b: f64, c: f64) -> f64 {
    let mut v = [a, b, c];
    v.sort_by(|x, y| x.partial_cmp(y).unwrap());
    v[1]
}

#[test]
fn fig5_shape_fare_restores_accuracy_at_one_to_one() {
    // The paper's headline scenario: 5% faults at SA0:SA1 = 1:1. One
    // representative workload, evaluated at three base seeds and
    // compared on the *median* so the bands can be tighter than any
    // single seed would allow (see EXPERIMENTS.md, "Tolerance bands").
    let w = Workload {
        dataset: DatasetKind::Amazon2M,
        model: ModelKind::Sage,
    };
    let run = |seed: u64| {
        let params = ExperimentParams {
            epochs: 20,
            seed,
            trials: 2,
        };
        let cmp = fig5(&params, &[w], 0.5, &[0.05]);
        (
            cmp.fault_free_of(w),
            cmp.accuracy_of(w, FaultStrategy::FaultUnaware, 0.05),
            cmp.accuracy_of(w, FaultStrategy::FaRe, 0.05),
            cmp.accuracy_of(w, FaultStrategy::ClippingOnly, 0.05),
        )
    };
    let (f0, u0, r0, c0) = run(42);
    let (f1, u1, r1, c1) = run(43);
    let (f2, u2, r2, c2) = run(44);
    let free = median3(f0, f1, f2);
    let unaware = median3(u0, u1, u2);
    let fare = median3(r0, r1, r2);
    let clip = median3(c0, c1, c2);

    // Fault-unaware training collapses: the median loses more than half
    // the fault-free accuracy (observed median gap ~0.60).
    assert!(
        unaware < free - 0.5,
        "unaware ({unaware:.3}) should collapse vs fault-free ({free:.3})"
    );
    // FARe restores most of the lost accuracy (observed median lift
    // ~0.50; band 0.40).
    assert!(
        fare > unaware + 0.40,
        "FARe ({fare:.3}) should restore accuracy over unaware ({unaware:.3})"
    );
    // FARe ends close to fault-free. The median band is 0.12 — down
    // from the 0.15 single-seed band of PR 1, though still above the
    // paper's ~0.02: at this scaled-down size a clipped stuck-at-one
    // cell pins a weight at the clip threshold, which costs ~0.1
    // accuracy at 5% density regardless of mapping quality (observed
    // median gap 0.101).
    assert!(
        fare > free - 0.12,
        "FARe ({fare:.3}) should approach fault-free ({free:.3})"
    );
    // FARe >= clipping-only (the adjacency mapping must not hurt);
    // median FARe actually edges out clipping (observed +0.006).
    assert!(fare + 0.02 >= clip, "FARe ({fare:.3}) vs clipping ({clip:.3})");
}

#[test]
fn fig5_mean_strategy_ordering_nine_to_one() {
    // Across two workloads and two densities the mean ordering of the
    // paper must hold: unaware < NR and clipping <= FARe-ish bands.
    let ws = vec![
        Workload {
            dataset: DatasetKind::Ppi,
            model: ModelKind::Gcn,
        },
        Workload {
            dataset: DatasetKind::Amazon2M,
            model: ModelKind::Sage,
        },
    ];
    let cmp = fig5(&quick_params(), &ws, 0.1, &[0.03, 0.05]);
    let unaware = cmp.mean_accuracy(FaultStrategy::FaultUnaware);
    let fare = cmp.mean_accuracy(FaultStrategy::FaRe);
    let clip = cmp.mean_accuracy(FaultStrategy::ClippingOnly);
    assert!(fare > unaware, "FARe {fare:.3} vs unaware {unaware:.3}");
    assert!(clip > unaware, "clipping {clip:.3} vs unaware {unaware:.3}");
    assert!(fare + 0.02 >= clip, "FARe {fare:.3} vs clipping {clip:.3}");
}

#[test]
fn fig7_claims_hold_at_paper_scale() {
    let result = fig7();
    for (kind, t) in &result.rows {
        // FARe ~1% overhead.
        assert!(
            t.fare > 1.0 && t.fare < 1.05,
            "{kind}: FARe normalised time {}",
            t.fare
        );
        // Clipping negligible and below FARe.
        assert!(t.clipping < t.fare);
        // NR pays per-batch stalls.
        assert!(t.neuron_reordering > 3.0, "{kind}: NR {}", t.neuron_reordering);
    }
    // "Up to 4x speedup" over NR.
    let max_speedup = result
        .rows
        .iter()
        .map(|(_, t)| t.fare_speedup_over_nr())
        .fold(0.0f64, f64::max);
    assert!(
        max_speedup > 3.5 && max_speedup < 4.5,
        "max speedup {max_speedup}"
    );
}

#[test]
fn table2_workload_list_matches_paper() {
    let ws = table2_workloads();
    assert_eq!(ws.len(), 6);
    let has = |d: DatasetKind, m: ModelKind| ws.iter().any(|w| w.dataset == d && w.model == m);
    assert!(has(DatasetKind::Ppi, ModelKind::Gcn));
    assert!(has(DatasetKind::Ppi, ModelKind::Gat));
    assert!(has(DatasetKind::Reddit, ModelKind::Gcn));
    assert!(has(DatasetKind::Amazon2M, ModelKind::Gcn));
    assert!(has(DatasetKind::Amazon2M, ModelKind::Sage));
    assert!(has(DatasetKind::Ogbl, ModelKind::Sage));
}
