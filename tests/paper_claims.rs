//! Integration tests asserting the *qualitative claims* of the paper's
//! evaluation section on scaled-down runs. Absolute numbers differ from
//! the paper (synthetic graphs, smaller scale); the shapes must not.

use fare::core::experiments::{
    fig3, fig5, fig7, table2_workloads, ExperimentParams, FaultPhase, Workload,
};
use fare::core::related::{table1, Overhead};
use fare::core::FaultStrategy;
use fare::graph::datasets::{DatasetKind, ModelKind};
use fare::tensor::fixed::StuckPolarity;

fn quick_params() -> ExperimentParams {
    ExperimentParams {
        epochs: 12,
        seed: 42,
        trials: 2,
    }
}

#[test]
fn table1_only_fare_has_every_capability_cheaply() {
    let rows = table1();
    let winners: Vec<_> = rows
        .iter()
        .filter(|t| {
            t.training
                && t.combination
                && t.aggregation
                && t.post_deployment
                && t.overhead == Overhead::Low
        })
        .collect();
    assert_eq!(winners.len(), 1);
    assert_eq!(winners[0].reference, "FARe");
}

#[test]
fn fig3_sa1_more_severe_than_sa0() {
    let result = fig3(&quick_params());
    // Weights: SA1 must be drastically worse than SA0 (weight explosion).
    let w_sa0 = result.accuracy_of(FaultPhase::Weights, StuckPolarity::StuckAtZero);
    let w_sa1 = result.accuracy_of(FaultPhase::Weights, StuckPolarity::StuckAtOne);
    assert!(
        w_sa1 + 0.10 < w_sa0,
        "weights: SA1 ({w_sa1:.3}) should be well below SA0 ({w_sa0:.3})"
    );
    // Adjacency: SA1 (fabricated edges) at least as harmful as SA0
    // (deleted edges).
    let a_sa0 = result.accuracy_of(FaultPhase::Adjacency, StuckPolarity::StuckAtZero);
    let a_sa1 = result.accuracy_of(FaultPhase::Adjacency, StuckPolarity::StuckAtOne);
    assert!(
        a_sa1 <= a_sa0 + 0.02,
        "adjacency: SA1 ({a_sa1:.3}) should not beat SA0 ({a_sa0:.3})"
    );
    // And no faulty case beats the fault-free reference materially.
    assert!(w_sa1 < result.fault_free - 0.05);
}

#[test]
fn fig5_shape_fare_restores_accuracy_at_one_to_one() {
    // The paper's headline scenario: 5% faults at SA0:SA1 = 1:1. One
    // representative workload keeps the test fast.
    let w = Workload {
        dataset: DatasetKind::Amazon2M,
        model: ModelKind::Sage,
    };
    let cmp = fig5(&quick_params(), &[w], 0.5, &[0.05]);
    let free = cmp.fault_free_of(w);
    let unaware = cmp.accuracy_of(w, FaultStrategy::FaultUnaware, 0.05);
    let fare = cmp.accuracy_of(w, FaultStrategy::FaRe, 0.05);
    let clip = cmp.accuracy_of(w, FaultStrategy::ClippingOnly, 0.05);

    // Fault-unaware training collapses.
    assert!(
        unaware < free - 0.15,
        "unaware ({unaware:.3}) should collapse vs fault-free ({free:.3})"
    );
    // FARe restores a large fraction of the lost accuracy.
    assert!(
        fare > unaware + 0.15,
        "FARe ({fare:.3}) should restore accuracy over unaware ({unaware:.3})"
    );
    // FARe ends close to fault-free. The margin is 0.15, not the
    // paper's ~0.02: at this scaled-down size a clipped stuck-at-one
    // cell still pins a weight at the clip threshold, which costs
    // ~0.1 accuracy at 5% density regardless of mapping quality.
    assert!(
        fare > free - 0.15,
        "FARe ({fare:.3}) should approach fault-free ({free:.3})"
    );
    // FARe >= clipping-only (the adjacency mapping must not hurt).
    assert!(fare + 0.03 >= clip, "FARe ({fare:.3}) vs clipping ({clip:.3})");
}

#[test]
fn fig5_mean_strategy_ordering_nine_to_one() {
    // Across two workloads and two densities the mean ordering of the
    // paper must hold: unaware < NR and clipping <= FARe-ish bands.
    let ws = vec![
        Workload {
            dataset: DatasetKind::Ppi,
            model: ModelKind::Gcn,
        },
        Workload {
            dataset: DatasetKind::Amazon2M,
            model: ModelKind::Sage,
        },
    ];
    let cmp = fig5(&quick_params(), &ws, 0.1, &[0.03, 0.05]);
    let unaware = cmp.mean_accuracy(FaultStrategy::FaultUnaware);
    let fare = cmp.mean_accuracy(FaultStrategy::FaRe);
    let clip = cmp.mean_accuracy(FaultStrategy::ClippingOnly);
    assert!(fare > unaware, "FARe {fare:.3} vs unaware {unaware:.3}");
    assert!(clip > unaware, "clipping {clip:.3} vs unaware {unaware:.3}");
    assert!(fare + 0.02 >= clip, "FARe {fare:.3} vs clipping {clip:.3}");
}

#[test]
fn fig7_claims_hold_at_paper_scale() {
    let result = fig7();
    for (kind, t) in &result.rows {
        // FARe ~1% overhead.
        assert!(
            t.fare > 1.0 && t.fare < 1.05,
            "{kind}: FARe normalised time {}",
            t.fare
        );
        // Clipping negligible and below FARe.
        assert!(t.clipping < t.fare);
        // NR pays per-batch stalls.
        assert!(t.neuron_reordering > 3.0, "{kind}: NR {}", t.neuron_reordering);
    }
    // "Up to 4x speedup" over NR.
    let max_speedup = result
        .rows
        .iter()
        .map(|(_, t)| t.fare_speedup_over_nr())
        .fold(0.0f64, f64::max);
    assert!(
        max_speedup > 3.5 && max_speedup < 4.5,
        "max speedup {max_speedup}"
    );
}

#[test]
fn table2_workload_list_matches_paper() {
    let ws = table2_workloads();
    assert_eq!(ws.len(), 6);
    let has = |d: DatasetKind, m: ModelKind| ws.iter().any(|w| w.dataset == d && w.model == m);
    assert!(has(DatasetKind::Ppi, ModelKind::Gcn));
    assert!(has(DatasetKind::Ppi, ModelKind::Gat));
    assert!(has(DatasetKind::Reddit, ModelKind::Gcn));
    assert!(has(DatasetKind::Amazon2M, ModelKind::Gcn));
    assert!(has(DatasetKind::Amazon2M, ModelKind::Sage));
    assert!(has(DatasetKind::Ogbl, ModelKind::Sage));
}
