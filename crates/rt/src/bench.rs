//! `std::time`-based micro-benchmark harness — the subset of `criterion`
//! the workspace's `benches/` use.
//!
//! Each benchmark runs a short warmup, then `sample_size` timed samples,
//! and prints min/median/mean wall-clock time per iteration. No
//! statistics beyond that: the point is a hermetic, dependency-free
//! `cargo bench` that still surfaces order-of-magnitude regressions.

use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), self.sample_size, &mut f);
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, &mut f);
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (no-op; kept for criterion source compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and a parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Timing callback handed to each benchmark closure (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, one sample per call, after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3.min(self.sample_size) {
            std::hint::black_box(f());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    if sorted.is_empty() {
        println!("bench {label:<50} (no samples: b.iter was never called)");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "bench {label:<50} min {:>12} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::bench::Criterion as Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main` (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0usize;
        group.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 3 warmup + 5 timed.
        assert_eq!(calls, 8);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 42), &42usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
