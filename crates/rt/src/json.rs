//! Minimal JSON tree, parser and serializer — the subset of
//! `serde`/`serde_json` the workspace uses.
//!
//! Types opt in with the [`ToJson`]/[`FromJson`] traits; the
//! [`json_struct!`](crate::json_struct), [`json_enum!`](crate::json_enum),
//! [`json_enum_newtype!`](crate::json_enum_newtype) and
//! [`json_newtype!`](crate::json_newtype) macros generate both impls from
//! a field/variant list, replacing `#[derive(Serialize, Deserialize)]`.
//!
//! Encoding matches `serde_json`'s external conventions: structs are
//! objects, unit enum variants are strings, newtype variants are
//! single-key objects, tuples are arrays, `Option::None` is `null`.
//! Non-finite floats (NaN/±inf — e.g. from diverging faulty training)
//! serialise to `null` instead of producing invalid JSON, and `null`
//! deserialises back to NaN.
//!
//! Numbers are kept as their exact decimal token, so `u64` seeds
//! round-trip losslessly and floats round-trip bit-exactly via Rust's
//! shortest-representation formatting.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its exact decimal token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse or decode error.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Builds an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent, like `serde_json`).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError::new(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if tok.is_empty() || tok == "-" || tok.parse::<f64>().is_err() {
            return Err(self.err("invalid number"));
        }
        Ok(Json::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

/// Parses a JSON document into a [`Json`] tree.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------

/// Serialization into a [`Json`] tree (replaces `serde::Serialize`).
pub trait ToJson {
    /// The JSON encoding of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] tree (replaces `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Decodes a value, with a descriptive error on shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes `value` compactly (mirrors `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().to_compact())
}

/// Serializes `value` with indentation (mirrors
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().to_pretty())
}

/// Parses and decodes in one step (mirrors `serde_json::from_str`).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Decodes field `name` of object `v` — the workhorse of
/// [`json_struct!`](crate::json_struct).
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    let inner = v
        .get(name)
        .ok_or_else(|| JsonError::new(format!("missing field `{name}`")))?;
    T::from_json(inner).map_err(|e| JsonError::new(format!("field `{name}`: {e}")))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other}"))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, got {other}"))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(self.to_string())
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(tok) => tok.parse::<$t>().map_err(|_| {
                        JsonError::new(format!(
                            "number {tok} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(JsonError::new(format!(
                        "expected integer, got {other}"
                    ))),
                }
            }
        }
    )+};
}
json_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! json_float {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                if self.is_finite() {
                    // Rust's shortest round-trip formatting: parsing the
                    // token back as $t recovers the exact bits.
                    Json::Num(format!("{self}"))
                } else {
                    // NaN/±inf (diverging faulty training) → null, like
                    // serde_json, instead of emitting invalid JSON.
                    Json::Null
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(tok) => tok
                        .parse::<$t>()
                        .map_err(|_| JsonError::new(format!("invalid float {tok}"))),
                    // Inverse of the non-finite → null encoding.
                    Json::Null => Ok(<$t>::NAN),
                    other => Err(JsonError::new(format!("expected number, got {other}"))),
                }
            }
        }
    )+};
}
json_float!(f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!("expected array, got {other}"))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::new(format!("expected array of {N}, got {len}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

macro_rules! json_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Json::Arr(items) if items.len() == LEN => {
                        Ok(($($name::from_json(&items[$idx])?,)+))
                    }
                    other => Err(JsonError::new(format!(
                        "expected {LEN}-tuple, got {other}"
                    ))),
                }
            }
        }
    )+};
}
json_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

// ---------------------------------------------------------------------
// Impl-generating macros (the `#[derive(Serialize, Deserialize)]`
// replacements)
// ---------------------------------------------------------------------

/// Generates [`ToJson`](crate::json::ToJson) +
/// [`FromJson`](crate::json::FromJson) for a struct with named fields.
///
/// ```
/// struct Point { x: f64, y: f64 }
/// fare_rt::json_struct!(Point { x, y });
/// let p: Point = fare_rt::json::from_str(r#"{"x":1.5,"y":-2.0}"#).unwrap();
/// assert_eq!(p.x, 1.5);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        $crate::json_struct_to!($ty { $($field),+ });
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::field(v, stringify!($field))?),+
                })
            }
        }
    };
}

/// Serialize-only variant of [`json_struct!`](crate::json_struct), for
/// types with non-deserializable fields (e.g. `&'static str`).
#[macro_export]
macro_rules! json_struct_to {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
    };
}

/// Generates both traits for an enum of **unit** variants, encoded as
/// `"VariantName"` (serde's external tagging).
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(Self::$variant =>
                        $crate::json::Json::Str(stringify!($variant).to_string())),+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match v {
                    $($crate::json::Json::Str(s) if s == stringify!($variant) =>
                        Ok(Self::$variant),)+
                    other => Err($crate::json::JsonError::new(format!(
                        "unknown {} variant: {other}",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Generates both traits for an enum of **newtype** variants, encoded as
/// `{"VariantName": payload}` (serde's external tagging).
#[macro_export]
macro_rules! json_enum_newtype {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(Self::$variant(inner) => $crate::json::Json::Obj(vec![(
                        stringify!($variant).to_string(),
                        $crate::json::ToJson::to_json(inner),
                    )])),+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                $(if let Some(inner) = v.get(stringify!($variant)) {
                    return Ok(Self::$variant($crate::json::FromJson::from_json(inner)?));
                })+
                Err($crate::json::JsonError::new(format!(
                    "unknown {} variant: {v}",
                    stringify!($ty)
                )))
            }
        }
    };
}

/// Generates both traits for a single-field tuple struct, encoded as the
/// bare inner value (serde's newtype-struct convention).
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip_basic() {
        let text = r#"{"a":[1,2.5,-3],"b":null,"c":true,"d":"x\ny"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_compact(), text);
    }

    #[test]
    fn string_escaping() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{1F600}";
        let json = to_string(nasty).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, nasty);
    }

    #[test]
    fn non_finite_floats_serialize_to_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f32::NEG_INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for v in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-17] {
            let back: f64 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        for v in [0.1f32, 1.0 / 3.0f32, f32::MIN_POSITIVE, 3.4e38f32] {
            let back: f32 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn u64_round_trips_losslessly() {
        for v in [0u64, 42, u64::MAX, u64::MAX - 1, 1 << 53] {
            let back: u64 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: (Vec<usize>, Option<f64>, [u8; 3]) = (vec![1, 2, 3], None, [7, 8, 9]);
        let json = to_string(&v).unwrap();
        let back: (Vec<usize>, Option<f64>, [u8; 3]) = from_str(&json).unwrap();
        assert_eq!(back.0, v.0);
        assert!(back.1.is_none());
        assert_eq!(back.2, v.2);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num("1".into())),
            ("b".into(), Json::Arr(vec![Json::Bool(true)])),
        ]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[derive(Debug)]
    struct Point {
        x: f64,
        y: f64,
    }
    crate::json_struct!(Point { x, y });

    #[derive(Debug, PartialEq)]
    enum Kind {
        Alpha,
        Beta,
    }
    crate::json_enum!(Kind { Alpha, Beta });

    #[derive(Debug, PartialEq)]
    struct Wrap(i16);
    crate::json_newtype!(Wrap);

    #[derive(Debug, PartialEq)]
    enum Payload {
        Int(i32),
        Text(String),
    }
    crate::json_enum_newtype!(Payload { Int, Text });

    #[test]
    fn macros_generate_round_trips() {
        let p: Point = from_str(r#"{"x":1.5,"y":-2.0}"#).unwrap();
        assert_eq!((p.x, p.y), (1.5, -2.0));
        assert_eq!(to_string(&p).unwrap(), r#"{"x":1.5,"y":-2}"#);

        assert_eq!(to_string(&Kind::Beta).unwrap(), r#""Beta""#);
        assert_eq!(from_str::<Kind>(r#""Alpha""#).unwrap(), Kind::Alpha);
        assert!(from_str::<Kind>(r#""Gamma""#).is_err());

        assert_eq!(to_string(&Wrap(-7)).unwrap(), "-7");
        assert_eq!(from_str::<Wrap>("-7").unwrap(), Wrap(-7));

        let payload = Payload::Text("hi".into());
        let json = to_string(&payload).unwrap();
        assert_eq!(json, r#"{"Text":"hi"}"#);
        assert_eq!(from_str::<Payload>(&json).unwrap(), payload);
        assert_eq!(
            from_str::<Payload>(r#"{"Int":3}"#).unwrap(),
            Payload::Int(3)
        );
    }

    #[test]
    fn missing_field_error_names_field() {
        let err = from_str::<Point>(r#"{"x":1}"#).unwrap_err();
        assert!(err.to_string().contains("`y`"), "{err}");
    }
}
