//! Drop-in replacement for the subset of `rand` 0.8 the workspace uses.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — a
//! well-studied, fast, 256-bit-state PRNG. It is **not** the same stream
//! as `rand::rngs::StdRng` (ChaCha12), but the API surface is identical
//! for every call site in this repository: `seed_from_u64`, `gen`,
//! `gen_range`, `gen_bool`, `fill`, `sample`, `shuffle`, `choose`.
//!
//! Everything here is deterministic: a given seed produces the same
//! stream on every platform, build and run.

use std::ops::{Range, RangeInclusive};

/// One round of SplitMix64; advances `state` and returns the next output.
///
/// Used for seeding (a single `u64` seed is expanded into 256 bits of
/// state) and for domain separation in [`crate::domain_rng`].
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random `u64`s — the object-safe core trait (mirrors
/// `rand::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from a `u64` seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed, expanded through
    /// SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can produce values of `T` (mirrors
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T>> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a type: uniform over `[0, 1)` for
/// floats, uniform over the full domain for integers and `bool`
/// (mirrors `rand::distributions::Standard`).
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),+) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over a `lo..hi` / `lo..=hi` range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                debug_assert!(span > 0);
                // Lemire-style widening multiply: maps a uniform u64 onto
                // [0, span) with negligible bias for the spans used here.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $unit:ident),+) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let unit: $t = Standard.$unit(rng);
                let v = lo + (hi - lo) * unit;
                if !inclusive && v >= hi {
                    // Rounding can land exactly on `hi`; step back inside.
                    <$t>::max(lo, hi.next_down())
                } else {
                    v.clamp(lo, hi)
                }
            }
        }
    )+};
}

impl Standard {
    fn sample_f64<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        Distribution::<f64>::sample(self, rng)
    }

    fn sample_f32<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        Distribution::<f32>::sample(self, rng)
    }
}
uniform_float!(f64 => sample_f64, f32 => sample_f32);

/// Range argument to [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// A uniform distribution over a range, usable with [`Rng::sample`]
/// (mirrors `rand::distributions::Uniform`).
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        Self { lo, hi, inclusive: false }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        Self { lo, hi, inclusive: true }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.lo, self.hi, self.inclusive)
    }
}

/// Slice types fillable by [`Rng::fill`] (mirrors `rand::Fill`).
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

macro_rules! fill_via_standard {
    ($($t:ty),+) => {$(
        impl Fill for [$t] {
            fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = Standard.sample(rng);
                }
            }
        }
    )+};
}
fill_via_standard!(u32, u64, usize, f32, f64);

/// Convenience methods layered over [`RngCore`] (mirrors `rand::Rng`).
///
/// Blanket-implemented for every `RngCore`, including `&mut dyn RngCore`.
pub trait Rng: RngCore {
    /// Samples from the [`Standard`] distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` (a primitive slice) with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_with(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256\*\* (Blackman & Vigna), seeded through SplitMix64.
    ///
    /// Same name as `rand::rngs::StdRng` so call sites migrate with an
    /// import swap; the stream itself differs from upstream `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Random slice operations (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_between(rng, 0, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_between(rng, 0, self.len(), false)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state seeded by splitmix64 from 0 must be
        // stable forever: determinism is the whole point of this crate.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut rng2 = StdRng::seed_from_u64(0);
        let again: Vec<u64> = (0..3).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(0..=5);
            assert!((0..=5).contains(&w));
            let s: i16 = rng.gen_range(-100i16..=100);
            assert!((-100..=100).contains(&s));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            let w: f32 = rng.gen_range(0.5f32..=1.5);
            assert!((0.5..=1.5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "{mean}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }

    #[test]
    fn dyn_rng_core_usable_via_rng_trait() {
        // Mirrors the `&mut dyn RngCore` trait-object pattern in
        // fare-gnn's model builder.
        let mut rng = StdRng::seed_from_u64(11);
        let dynr: &mut dyn RngCore = &mut rng;
        let mut dynr = dynr;
        let v: f64 = (&mut dynr).gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn fill_fills_bytes_and_floats() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut bytes = [0u8; 13];
        rng.fill(&mut bytes[..]);
        assert!(bytes.iter().any(|&b| b != 0));
        let mut floats = [0.0f32; 5];
        rng.fill(&mut floats[..]);
        assert!(floats.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn sample_uniform_distribution() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Uniform::new(10usize, 20);
        for _ in 0..100 {
            let v = rng.sample(&d);
            assert!((10..20).contains(&v));
        }
    }
}
