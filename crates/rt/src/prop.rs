//! Seeded, shrink-free property testing — the subset of `proptest` the
//! workspace's `tests/proptests.rs` files use.
//!
//! The [`proptest!`](crate::proptest) macro expands each property into a
//! `#[test]` that draws `config.cases` inputs from a deterministic
//! per-test RNG (seeded from the test's name, overridable with
//! `FARE_PT_SEED`) and runs the body on each. On failure the offending
//! case number and `Debug`-rendered inputs are printed, then the panic
//! is re-raised — no shrinking, but the report pins down the exact
//! reproducible case.

use crate::rand::rngs::StdRng;
use crate::rand::{SampleRange, SampleUniform, Standard, Distribution as RandDistribution};
use std::ops::{Range, RangeInclusive};

/// Per-property configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic seed a property named `name` starts from.
///
/// FNV-1a over the name, xor-folded with `FARE_PT_SEED` when set, so a
/// failing property can be re-run under a different exploration seed
/// without recompiling.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(v) = std::env::var("FARE_PT_SEED") {
        if let Ok(extra) = v.parse::<u64>() {
            h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    h
}

/// A recipe for random values (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `keep`; gives up (panics) after 1000
    /// consecutive rejections.
    fn prop_filter<F>(self, why: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, why, keep }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    why: &'static str,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive cases: {}", self.why);
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Strategy for `any::<T>()` (mirrors `proptest::arbitrary::any`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy of a primitive type.
pub fn any<T>() -> Any<T>
where
    Standard: RandDistribution<T>,
{
    Any { _marker: std::marker::PhantomData }
}

impl<T> Strategy for Any<T>
where
    Standard: RandDistribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        Standard.sample(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use crate::rand::rngs::StdRng;

    /// Strategy for `Vec`s of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import target for property-test files (mirrors
/// `proptest::prelude`).
pub mod prelude {
    pub use super::{any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the rest of the current case when `cond` is false (mirrors
/// `proptest::prop_assume!`; the case still counts toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Property assertion (maps to `assert!`; failures are reported with the
/// generating case by the [`proptest!`](crate::proptest) runner).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality property assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality property assertion (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Expands properties into seeded `#[test]` functions.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]   // optional
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(0.0f32..1.0, 8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::prop::ProptestConfig as Default>::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`](crate::proptest) — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        #[test]
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::prop::ProptestConfig = $config;
            let mut rng = $crate::rng($crate::prop::test_seed(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::prop::Strategy::generate(&($strategy), &mut rng);)+
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "[fare-rt proptest] {} failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        case_desc
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        use super::Strategy;
        let s = (0u64..1000, -1.0f32..1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::rng(5);
        let mut r2 = crate::rng(5);
        for _ in 0..10 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn filter_respects_predicate() {
        use super::Strategy;
        let s = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::rng(6);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn collection_vec_has_requested_len() {
        use super::Strategy;
        let s = super::collection::vec(-1.0f64..1.0, 17);
        let mut rng = crate::rng(7);
        assert_eq!(s.generate(&mut rng).len(), 17);
    }

    proptest! {
        #[test]
        fn macro_generates_passing_test(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag as u64 * 0, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn macro_respects_config(v in super::collection::vec(0usize..10, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn flat_map_dependent_sizes(
            m in (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
                super::collection::vec(0i32..100, r * c).prop_map(move |v| (r, c, v))
            }),
        ) {
            let (r, c, v) = m;
            prop_assert_eq!(v.len(), r * c);
        }
    }
}
