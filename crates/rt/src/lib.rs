//! `fare-rt` — the FARe workspace's zero-dependency runtime layer.
//!
//! The build environment for this repository is **hermetic**: no network,
//! no crates.io registry. Every external crate the workspace used to pull
//! is replaced by a small, deterministic, in-repo shim:
//!
//! | module          | replaces     | surface                                    |
//! |-----------------|--------------|--------------------------------------------|
//! | [`rand`]        | `rand` 0.8   | `StdRng`, `Rng`, `SeedableRng`, `RngCore`, `seq::SliceRandom` |
//! | [`par`]         | `rayon`      | persistent worker pool: `par_iter` / `into_par_iter` map/sum/collect + `par_row_chunks` row partitioning |
//! | [`json`]        | `serde` + `serde_json` | [`json::Json`] value, parser, serializer, `ToJson`/`FromJson` + impl macros |
//! | [`prop`]        | `proptest`   | seeded, shrink-free `proptest!` macro + `Strategy` combinators |
//! | [`bench`]       | `criterion`  | `std::time`-based `criterion_group!`/`criterion_main!` harness |
//!
//! Everything is seeded and deterministic: two runs with the same seed
//! (and any thread count) produce bit-identical results, which is what
//! makes the FARe fault-injection experiments reproducible.

// Unsafe is denied crate-wide except for the single audited lifetime
// erasure inside `par::pool` (the persistent worker pool shares
// stack-borrowed batch state with pool threads, exactly like
// `std::thread::scope` / `rayon` do internally).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod par;
pub mod prop;
pub mod rand;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The canonical RNG constructor: one base seed drives the whole
/// experiment.
///
/// Every *library* (non-test) RNG in the workspace is built through this
/// function or [`domain_rng`], so a single `--seed` flag reproducibly
/// drives fault injection, partitioning and weight init.
///
/// ```
/// let mut a = fare_rt::rng(42);
/// let mut b = fare_rt::rng(42);
/// use fare_rt::rand::Rng;
/// assert_eq!(a.gen::<f64>(), b.gen::<f64>());
/// ```
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A domain-separated RNG: the same base seed, split into an independent
/// stream per subsystem.
///
/// Replaces the ad-hoc `seed ^ 0xC0FF_EE00`-style constants that used to
/// be scattered across the workspace. Two domains never collide unless
/// their names are equal, so fault injection, partitioning and init each
/// get their own reproducible stream from one seed.
pub fn domain_rng(seed: u64, domain: &str) -> StdRng {
    // FNV-1a over the domain name, then one splitmix64 round to decorrelate
    // neighbouring seeds before combining.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in domain.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(rand::splitmix64(&mut { seed }).wrapping_add(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = rng(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(7);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn domain_rng_separates_streams() {
        let mut a = domain_rng(42, "fault-injection");
        let mut b = domain_rng(42, "partitioning");
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
        let mut a2 = domain_rng(42, "fault-injection");
        let xs2: Vec<u64> = (0..4).map(|_| a2.gen()).collect();
        assert_eq!(xs, xs2);
    }
}
