//! Persistent-pool parallel primitives — the subset of `rayon` the
//! workspace uses.
//!
//! Work runs on a process-wide worker pool that is spawned **once** (and
//! grown lazily up to the configured thread count), not per call: the hot
//! kernels in `fare-tensor`/`fare-graph` issue many small parallel
//! batches per training step, and per-call `std::thread::scope` spawns
//! would dominate their runtime.
//!
//! Two primitives sit directly on the pool:
//!
//! - [`par_row_chunks`] — splits a flat row-major buffer into disjoint
//!   contiguous row ranges and hands each range to one worker. Each
//!   output row is produced by exactly one closure invocation in fixed
//!   order, so results are bit-identical for any thread count — the
//!   repo's determinism contract (`tests/determinism.rs`).
//! - [`scoped_map`] — order-preserving parallel map over owned items
//!   (chunked, reassembled positionally). `par_iter()` /
//!   `into_par_iter()` build on it.
//!
//! The thread count is a process-wide knob: [`set_threads`] wins, then
//! the `FARE_RT_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.
//!
//! Nested parallelism is deadlock-free by construction: a thread that
//! submits a batch *helps* — it pops and runs queued tasks (its own or
//! another batch's) while it waits — so progress never depends on a free
//! pool worker being available.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the number of worker threads (`0` restores auto-detection).
///
/// Takes effect for every subsequent parallel call in the process; used
/// by the determinism tests to compare 1- vs N-thread runs. Results are
/// bit-identical either way — this knob trades wall-clock only.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads parallel calls will use.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("FARE_RT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The persistent worker pool.
///
/// Tasks are type-erased pointers into a batch descriptor that lives on
/// the submitting thread's stack; [`run_batch`] does not return until
/// every task of its batch has finished, which is what makes the borrow
/// sound (see the safety notes on `pool` below).
#[allow(unsafe_code)]
mod pool {
    use super::*;
    use std::any::Any;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::thread::Thread;

    /// Shared state of one in-flight batch. Lives on the submitter's
    /// stack for the duration of [`run_batch`].
    struct Shared<'a> {
        f: &'a (dyn Fn(usize) + Sync),
        /// Tasks not yet finished. The submitter spins/parks until this
        /// hits zero, so `Shared` strictly outlives every task.
        remaining: AtomicUsize,
        /// First panic payload from any task, re-thrown by the submitter.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
        /// The submitting thread, unparked when the batch completes.
        waiter: Thread,
    }

    /// One unit of queued work: batch pointer + chunk index.
    ///
    /// The pointer is lifetime-erased; validity is guaranteed by the
    /// batch protocol (the submitter blocks in `run_batch` until
    /// `remaining == 0`, and `remaining` is only decremented *after* a
    /// task's last use of the batch state).
    struct Task {
        shared: *const Shared<'static>,
        index: usize,
    }

    // SAFETY: `Task` is a plain (pointer, index) pair; the pointee is
    // `Sync` (`&dyn Fn + Sync`, atomics, `Mutex`, `Thread`) and the
    // batch protocol keeps it alive until the task has run.
    unsafe impl Send for Task {}

    struct Pool {
        queue: Mutex<VecDeque<Task>>,
        available: Condvar,
        workers: Mutex<usize>,
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers: Mutex::new(0),
        })
    }

    /// Runs one task to completion and signals its batch.
    fn run_task(task: Task) {
        // SAFETY: the submitter of this task is blocked inside
        // `run_batch` until we decrement `remaining` below, so the
        // pointee is alive for the whole body of this function.
        let shared = unsafe { &*task.shared };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (shared.f)(task.index))) {
            let mut slot = shared.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // Clone the waiter handle *before* the decrement: once
        // `remaining` hits zero the submitter may return and drop
        // `Shared`, so nothing of it may be touched afterwards.
        // (`Thread` is internally reference-counted; unparking a thread
        // that has already moved on is a documented no-op.)
        let waiter = shared.waiter.clone();
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            waiter.unpark();
        }
    }

    /// Grows the pool so that at least `n` persistent workers exist.
    fn ensure_workers(n: usize) {
        let p = pool();
        let mut count = p.workers.lock().unwrap();
        while *count < n {
            *count += 1;
            let id = *count;
            std::thread::Builder::new()
                .name(format!("fare-rt-worker-{id}"))
                .spawn(move || worker_loop())
                .expect("spawn fare-rt worker");
        }
    }

    fn worker_loop() {
        let p = pool();
        loop {
            let task = {
                let mut q = p.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = p.available.wait(q).unwrap();
                }
            };
            run_task(task);
        }
    }

    /// Executes `f(0..chunks)` across the pool, returning once every
    /// invocation has finished. Panics from tasks are re-thrown here.
    ///
    /// Determinism: *which* thread runs a chunk is scheduling-dependent,
    /// but each chunk index is claimed exactly once and chunk bodies
    /// write disjoint state, so results do not depend on the schedule.
    pub fn run_batch(chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        match chunks {
            0 => return,
            1 => return f(0),
            _ => {}
        }
        ensure_workers(current_threads().saturating_sub(1).max(1));

        let shared = Shared {
            f,
            remaining: AtomicUsize::new(chunks),
            panic: Mutex::new(None),
            waiter: std::thread::current(),
        };
        // SAFETY (lifetime erasure): `shared` outlives every `Task`
        // because this function does not return until `remaining == 0`,
        // and tasks never touch `shared` after their decrement.
        let erased: *const Shared<'static> =
            (&shared as *const Shared<'_>).cast::<Shared<'static>>();

        {
            let p = pool();
            let mut q = p.queue.lock().unwrap();
            for index in 0..chunks {
                q.push_back(Task { shared: erased, index });
            }
            drop(q);
            p.available.notify_all();
        }

        // Help: run queued tasks (ours or another batch's) instead of
        // idling; park briefly when the queue is empty but our batch is
        // still in flight on other threads.
        let p = pool();
        while shared.remaining.load(Ordering::Acquire) != 0 {
            let task = p.queue.lock().unwrap().pop_front();
            match task {
                Some(t) => run_task(t),
                None => std::thread::park_timeout(Duration::from_micros(200)),
            }
        }

        let payload = shared.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

pub use pool::run_batch;

/// Applies `f` to every row of a flat row-major buffer, handing disjoint
/// contiguous row ranges to pool workers.
///
/// `data` is interpreted as `data.len() / row_len` rows of `row_len`
/// elements. `f(row_index, row)` is invoked exactly once per row, rows
/// within a range in ascending order; because every output row is
/// produced by exactly one invocation writing through its own disjoint
/// `&mut` slice, the result is bit-identical for any thread count.
///
/// This is the primitive the parallel matmul / SpMM kernels are built
/// on; rows are only ever partitioned, never split or reduced across
/// threads.
///
/// # Panics
/// Panics if `row_len` does not divide `data.len()` (unless both are 0).
pub fn par_row_chunks<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_len > 0, "par_row_chunks: row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "par_row_chunks: data is not whole rows");
    let rows = data.len() / row_len;
    let threads = current_threads().clamp(1, rows);
    if threads <= 1 {
        for (r, row) in data.chunks_mut(row_len).enumerate() {
            f(r, row);
        }
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    // Hand each worker its range through a one-shot slot: index `i` is
    // claimed exactly once, so the locks are uncontended.
    let slots: Vec<Mutex<Option<(usize, &mut [T])>>> = data
        .chunks_mut(chunk_rows * row_len)
        .enumerate()
        .map(|(ci, chunk)| Mutex::new(Some((ci * chunk_rows, chunk))))
        .collect();
    run_batch(slots.len(), &|i| {
        let (first_row, chunk) = slots[i]
            .lock()
            .unwrap()
            .take()
            .expect("par_row_chunks: chunk claimed twice");
        for (k, row) in chunk.chunks_mut(row_len).enumerate() {
            f(first_row + k, row);
        }
    });
}

/// Maps `f` over `items` on the worker pool, preserving input order.
pub fn scoped_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    struct Slot<T, U> {
        input: Vec<T>,
        output: Vec<U>,
    }
    let mut slots: Vec<Mutex<Slot<T, U>>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        slots.push(Mutex::new(Slot { input: chunk, output: Vec::new() }));
    }
    run_batch(slots.len(), &|i| {
        let mut slot = slots[i].lock().unwrap();
        let input = std::mem::take(&mut slot.input);
        slot.output = input.into_iter().map(&f).collect();
    });
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().unwrap().output)
        .collect()
}

/// Like [`scoped_map`], but each worker chunk first builds a scratch
/// value with `init()` and threads it through its items — the
/// `map_init` pattern for solvers with reusable internal buffers
/// (allocate once per worker, not once per item).
///
/// Determinism contract: `f`'s output must depend only on its item, not
/// on scratch history, because chunk boundaries move with the thread
/// count. Results are reassembled positionally, so the output order is
/// always the input order.
pub fn scoped_map_init<T, S, U, I, F>(items: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    let threads = current_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return items.into_iter().map(|t| f(&mut scratch, t)).collect();
    }
    let chunk_len = n.div_ceil(threads);
    struct Slot<T, U> {
        input: Vec<T>,
        output: Vec<U>,
    }
    let mut slots: Vec<Mutex<Slot<T, U>>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        slots.push(Mutex::new(Slot { input: chunk, output: Vec::new() }));
    }
    run_batch(slots.len(), &|i| {
        let mut slot = slots[i].lock().unwrap();
        let input = std::mem::take(&mut slot.input);
        let mut scratch = init();
        slot.output = input.into_iter().map(|t| f(&mut scratch, t)).collect();
    });
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().unwrap().output)
        .collect()
}

/// An eager parallel iterator: `map` runs immediately on the pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter { items: scoped_map(self.items, f) }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Collects the (already computed) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the results.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Owned conversion into a [`ParIter`] (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Borrowing conversion, `slice.par_iter()` (mirrors
/// `rayon::iter::IntoParallelRefIterator`).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Everything a `use fare_rt::par::prelude::*;` caller needs (mirrors
/// `rayon::prelude`).
pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_array_and_vec() {
        let from_array: Vec<i32> = [1, 2, 3, 4].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(from_array, vec![2, 3, 4, 5]);
        let from_vec: i64 = vec![1i64, 2, 3].into_par_iter().map(|x| x * x).sum();
        assert_eq!(from_vec, 14);
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec!["a", "b", "c"];
        let out: Vec<String> = v
            .into_par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn nested_parallel_maps() {
        let outer: Vec<usize> = (0..8).collect();
        let out: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..10).collect();
                inner.par_iter().map(|&j| i * j).sum::<usize>()
            })
            .collect();
        assert_eq!(out[3], 3 * 45);
    }

    #[test]
    fn identical_across_thread_counts() {
        let input: Vec<u64> = (0..37).collect();
        set_threads(1);
        let one: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        set_threads(4);
        let four: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        set_threads(0);
        assert_eq!(one, four);
    }

    #[test]
    fn map_init_reuses_scratch_and_preserves_order() {
        for &threads in &[1usize, 2, 3, 8] {
            set_threads(threads);
            let items: Vec<usize> = (0..41).collect();
            let out: Vec<usize> = scoped_map_init(
                items,
                || Vec::<usize>::new(),
                |scratch, x| {
                    // Scratch is reusable storage only — results never
                    // depend on what earlier items left behind.
                    scratch.clear();
                    scratch.extend(0..=x);
                    scratch.iter().sum()
                },
            );
            let expect: Vec<usize> = (0..41).map(|x| x * (x + 1) / 2).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
        set_threads(0);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn row_chunks_touches_every_row_once() {
        for &threads in &[1usize, 2, 3, 8] {
            set_threads(threads);
            let mut data = vec![0u32; 7 * 3];
            par_row_chunks(&mut data, 3, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v += (r * 10 + c) as u32;
                }
            });
            let expect: Vec<u32> =
                (0..7).flat_map(|r| (0..3).map(move |c| (r * 10 + c) as u32)).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
        set_threads(0);
    }

    #[test]
    fn row_chunks_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<u64> {
            set_threads(threads);
            let mut data = vec![0u64; 41 * 5];
            par_row_chunks(&mut data, 5, |r, row| {
                let mut h = r as u64 ^ 0x9e37_79b9;
                for v in row.iter_mut() {
                    h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
                    *v = h;
                }
            });
            data
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        set_threads(0);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn row_chunks_nested_inside_map() {
        set_threads(4);
        let outer: Vec<usize> = (0..6).collect();
        let out: Vec<u32> = outer
            .par_iter()
            .map(|&i| {
                let mut data = vec![0u32; 12 * 4];
                par_row_chunks(&mut data, 4, |r, row| {
                    for v in row.iter_mut() {
                        *v = (i * 100 + r) as u32;
                    }
                });
                data.iter().sum()
            })
            .collect();
        set_threads(0);
        let expect: Vec<u32> =
            (0..6).map(|i| (0..12).map(|r| (i * 100 + r) as u32 * 4).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn batch_panics_propagate() {
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 16];
            par_row_chunks(&mut data, 2, |r, _| {
                if r == 5 {
                    panic!("boom in row 5");
                }
            });
        });
        set_threads(0);
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_many_small_batches() {
        set_threads(3);
        for round in 0..200 {
            let mut data = vec![0usize; 9];
            par_row_chunks(&mut data, 1, |r, row| row[0] = r + round);
            assert_eq!(data[8], 8 + round);
        }
        set_threads(0);
    }
}
