//! Scoped-thread parallel map — the subset of `rayon` the workspace uses.
//!
//! `par_iter()` / `into_par_iter()` return a [`ParIter`] whose `map`
//! fans contiguous chunks out over `std::thread::scope` threads and
//! concatenates the results **in input order**. Because each item is
//! mapped independently and results are reassembled positionally, output
//! is bit-identical for any thread count — including 1 — which the
//! workspace's determinism tests rely on.
//!
//! The thread count is a process-wide knob: [`set_threads`] wins, then
//! the `FARE_RT_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the number of worker threads (`0` restores auto-detection).
///
/// Takes effect for every subsequent parallel call in the process; used
/// by the determinism tests to compare 1- vs N-thread runs.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads parallel calls will use.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("FARE_RT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on scoped threads, preserving input order.
pub fn scoped_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// An eager parallel iterator: `map` runs immediately on scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter { items: scoped_map(self.items, f) }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Collects the (already computed) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the results.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Owned conversion into a [`ParIter`] (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Borrowing conversion, `slice.par_iter()` (mirrors
/// `rayon::iter::IntoParallelRefIterator`).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Everything a `use fare_rt::par::prelude::*;` caller needs (mirrors
/// `rayon::prelude`).
pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_array_and_vec() {
        let from_array: Vec<i32> = [1, 2, 3, 4].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(from_array, vec![2, 3, 4, 5]);
        let from_vec: i64 = vec![1i64, 2, 3].into_par_iter().map(|x| x * x).sum();
        assert_eq!(from_vec, 14);
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec!["a", "b", "c"];
        let out: Vec<String> = v
            .into_par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn nested_parallel_maps() {
        let outer: Vec<usize> = (0..8).collect();
        let out: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..10).collect();
                inner.par_iter().map(|&j| i * j).sum::<usize>()
            })
            .collect();
        assert_eq!(out[3], 3 * 45);
    }

    #[test]
    fn identical_across_thread_counts() {
        let input: Vec<u64> = (0..37).collect();
        set_threads(1);
        let one: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        set_threads(4);
        let four: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        set_threads(0);
        assert_eq!(one, four);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
