//! Property-based tests for the tensor crate.

use fare_tensor::fixed::{apply_cell_fault, StuckPolarity, CELLS_PER_WORD};
use fare_tensor::{ops, CellWord, Fixed16, FixedFormat, Matrix};
use fare_rt::prop::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        fare_rt::prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_and_right(m in small_matrix(10)) {
        let il = Matrix::identity(m.rows());
        let ir = Matrix::identity(m.cols());
        prop_assert_eq!(il.matmul(&m), m.clone());
        prop_assert_eq!(m.matmul(&ir), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        dims in (1usize..6, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        use fare_rt::rand::{Rng, SeedableRng};
        let (m, k, n) = dims;
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed);
        let mut rnd = |r: usize, c: usize| {
            Matrix::from_fn(r, c, |_, _| rng.gen_range(-2.0f32..2.0))
        };
        let a = rnd(m, k);
        let b = rnd(k, n);
        let c = rnd(k, n);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul(
        dims in (1usize..6, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        use fare_rt::rand::{Rng, SeedableRng};
        let (m, k, n) = dims;
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(k, m, |_, _| rng.gen_range(-2.0f32..2.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-2.0f32..2.0));
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.iter().zip(slow.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_probability_distributions(m in small_matrix(8)) {
        let s = ops::softmax_rows(&m);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn clip_never_exceeds_limit(m in small_matrix(8), limit in 0.0f32..50.0) {
        let mut c = m;
        c.clip_inplace(limit);
        prop_assert!(c.iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn fixed_round_trip_error_bounded(v in -50.0f32..50.0, frac in 4u32..12) {
        let fmt = FixedFormat::new(frac);
        if v.abs() < fmt.max_value() {
            let err = (fmt.quantise(v) - v).abs();
            prop_assert!(err <= fmt.resolution(), "err {err} res {}", fmt.resolution());
        }
    }

    #[test]
    fn cell_word_round_trip(v in (-i16::MAX)..=i16::MAX) {
        // Sign-magnitude cannot represent i16::MIN, which the FixedFormat
        // encoder never produces; every other value round-trips exactly.
        let w = CellWord::from_fixed(Fixed16(v));
        prop_assert_eq!(w.to_fixed(), Fixed16(v));
    }

    #[test]
    fn sa0_never_increases_magnitude_prop(
        v in -60.0f32..60.0,
        cell in 0usize..CELLS_PER_WORD,
    ) {
        // The Fig. 3 asymmetry: stuck-at-0 can only shrink a weight's
        // magnitude (it clears sign/magnitude bits), never explode it.
        let fmt = FixedFormat::default();
        let faulty = apply_cell_fault(v, fmt, cell, StuckPolarity::StuckAtZero);
        prop_assert!(faulty.abs() <= v.abs() + fmt.resolution());
    }

    #[test]
    fn cell_fault_is_idempotent(
        v in -10.0f32..10.0,
        cell in 0usize..CELLS_PER_WORD,
        sa1 in any::<bool>(),
    ) {
        let fmt = FixedFormat::default();
        let pol = if sa1 { StuckPolarity::StuckAtOne } else { StuckPolarity::StuckAtZero };
        let once = apply_cell_fault(v, fmt, cell, pol);
        let twice = apply_cell_fault(once, fmt, cell, pol);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn gcn_normalise_row_sums_bounded(seed in 0u64..500, n in 2usize..10) {
        use fare_rt::rand::{Rng, SeedableRng};
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed);
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.4) {
                    adj[(i, j)] = 1.0;
                    adj[(j, i)] = 1.0;
                }
            }
        }
        let norm = ops::gcn_normalise(&adj);
        // Symmetric normalisation keeps entries in [0, 1] and the matrix
        // symmetric.
        for i in 0..n {
            for j in 0..n {
                prop_assert!((norm[(i, j)] - norm[(j, i)]).abs() < 1e-6);
                prop_assert!(norm[(i, j)] >= 0.0 && norm[(i, j)] <= 1.0 + 1e-6);
            }
        }
    }
}

/// Bitwise view of a matrix so thread-count comparisons catch even a
/// single reordered floating-point reduction.
fn bits(m: &Matrix) -> Vec<u32> {
    m.iter().map(|v| v.to_bits()).collect()
}

// The dense matmul family runs on the fare-rt worker pool, partitioned
// by disjoint output rows. That partitioning must keep results
// bit-identical at every thread count (C-DETERMINISM).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_thread_invariant(
        dims in (1usize..20, 1usize..20, 1usize..20),
        seed in 0u64..1000,
    ) {
        use fare_rt::rand::{Rng, SeedableRng};
        let (m, k, n) = dims;
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0f32..2.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-2.0f32..2.0));
        let at = a.transpose();
        let bt = b.transpose();
        let run = |t: usize| {
            fare_rt::par::set_threads(t);
            (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt))
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        fare_rt::par::set_threads(0);
        for par in [&two, &eight] {
            prop_assert_eq!(bits(&one.0), bits(&par.0));
            prop_assert_eq!(bits(&one.1), bits(&par.1));
            prop_assert_eq!(bits(&one.2), bits(&par.2));
        }
        // The three formulations share one accumulation order, so they
        // agree bitwise with each other too.
        prop_assert_eq!(bits(&one.0), bits(&one.1));
        prop_assert_eq!(bits(&one.0), bits(&one.2));
    }
}
