use std::error::Error;
use std::fmt;

/// Error returned when two matrices have incompatible shapes for an
/// operation.
///
/// # Example
///
/// ```
/// use fare_tensor::{Matrix, ShapeError};
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(2, 3);
/// let err: ShapeError = a.try_matmul(&b).unwrap_err();
/// assert!(err.to_string().contains("2x3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl ShapeError {
    pub(crate) fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that failed (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Shape of the left-hand operand as `(rows, cols)`.
    pub fn lhs(&self) -> (usize, usize) {
        self.lhs
    }

    /// Shape of the right-hand operand as `(rows, cols)`.
    pub fn rhs(&self) -> (usize, usize) {
        self.rhs
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}
