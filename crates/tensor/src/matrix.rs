use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};


use crate::ShapeError;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the workhorse value type of the FARe reproduction: GNN
/// weights, node features, gradients and dense adjacency blocks are all
/// `Matrix` values. The API favours explicitness over operator magic —
/// shape mismatches panic in the operator forms and return a
/// [`ShapeError`] in the `try_*` forms.
///
/// # Example
///
/// ```
/// use fare_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

fare_rt::json_struct!(Matrix { rows, cols, data });

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// use fare_tensor::Matrix;
    /// let m = Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert!(m.iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows`×`cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged (different lengths) or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the backing row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the backing row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing row-major vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns element `(r, c)` or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        self[(r, c)] = value;
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutably iterates over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the shapes differ.
    pub fn try_zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("zip_map", self.shape(), other.shape()));
        }
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise combination of two matrices.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.try_zip_map(other, f).expect("shape mismatch in zip_map")
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scaled(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Self) -> Result<Self, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        let lhs_data = &self.data;
        let lhs_cols = self.cols;
        let rhs_data = &rhs.data;
        let rhs_cols = rhs.cols;
        // i-k-j loop order keeps the inner loop contiguous for both the
        // output row and the rhs row, which matters for the large
        // feature-matrix products in GNN training. Output rows are
        // disjoint, so the row partition is bit-identical for any thread
        // count. The inner loop is branch-free: sparse operands go
        // through `CsrMatrix::spmm`, dense ones would mispredict a
        // zero-skip here.
        fare_rt::par::par_row_chunks(&mut out.data, rhs_cols, |i, out_row| {
            for k in 0..lhs_cols {
                let a = lhs_data[i * lhs_cols + k];
                let rhs_row = &rhs_data[k * rhs_cols..(k + 1) * rhs_cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        });
        Ok(out)
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        self.try_matmul(rhs).expect("shape mismatch in matmul")
    }

    /// Matrix product `selfᵀ * rhs` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.rows, rhs.rows,
            "shape mismatch in t_matmul: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Self::zeros(self.cols, rhs.cols);
        let lhs_data = &self.data;
        let lhs_cols = self.cols;
        let rhs_data = &rhs.data;
        let rhs_cols = rhs.cols;
        let inner = self.rows;
        // Output-row-outer so each out row is owned by one worker; the
        // per-row accumulation order (ascending k) matches the previous
        // k-outer formulation element for element.
        fare_rt::par::par_row_chunks(&mut out.data, rhs_cols, |i, out_row| {
            for k in 0..inner {
                let a = lhs_data[k * lhs_cols + i];
                let rhs_row = &rhs_data[k * rhs_cols..(k + 1) * rhs_cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// Matrix product `self * rhsᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.cols,
            "shape mismatch in matmul_t: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Self::zeros(self.rows, rhs.rows);
        let lhs_data = &self.data;
        let lhs_cols = self.cols;
        let rhs_data = &rhs.data;
        let rhs_rows = rhs.rows;
        fare_rt::par::par_row_chunks(&mut out.data, rhs_rows, |i, out_row| {
            let lhs_row = &lhs_data[i * lhs_cols..(i + 1) * lhs_cols];
            for (j, o) in out_row.iter_mut().enumerate() {
                let rhs_row = &rhs_data[j * lhs_cols..(j + 1) * lhs_cols];
                let mut acc = 0.0;
                for (&a, &b) in lhs_row.iter().zip(rhs_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in each row.
    ///
    /// Used to turn class logits into predictions.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Clamps every element into `[-limit, limit]`.
    ///
    /// This is the "weight clipping" primitive from the paper's combination
    /// phase (Section IV-B).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is negative or NaN.
    pub fn clip_inplace(&mut self, limit: f32) {
        assert!(limit >= 0.0, "clip limit must be non-negative, got {limit}");
        for v in &mut self.data {
            *v = v.clamp(-limit, limit);
        }
    }

    /// Extracts the dense sub-matrix with rows `r0..r0+h`, cols `c0..c0+w`,
    /// zero-padding any region that falls outside `self`.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        Self::from_fn(h, w, |r, c| self.get(r0 + r, c0 + c).unwrap_or(0.0))
    }

    /// Counts elements for which `pred` holds.
    pub fn count_where(&self, pred: impl Fn(f32) -> bool) -> usize {
        self.data.iter().filter(|&&v| pred(v)).count()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scaled(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in +=");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in -=");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  ")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn try_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op(), "matmul");
        assert_eq!(err.lhs(), (2, 3));
        assert_eq!(err.rhs(), (2, 3));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.0], &[2.0, 1.0, -1.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn clip_inplace_bounds_values() {
        let mut m = Matrix::from_rows(&[&[10.0, -10.0, 0.5]]);
        m.clip_inplace(1.0);
        assert_eq!(m.as_slice(), &[1.0, -1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "clip limit must be non-negative")]
    fn clip_negative_limit_panics() {
        Matrix::zeros(1, 1).clip_inplace(-1.0);
    }

    #[test]
    fn block_zero_pads_outside() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b.as_slice(), &[4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn operators_add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_rows(&[&[1.0, 1.0]]);
        a += &b;
        a += &b;
        assert_eq!(a.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.0]]);
        assert_eq!(m.sum(), 2.0);
        assert_eq!(m.mean(), 0.5);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.min(), -2.0);
        assert!((m.frobenius_norm() - (14.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(m.count_where(|v| v > 0.0), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert!(s.contains("Matrix 2x2"));
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let m = Matrix::zeros(2, 2);
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
        assert_eq!(m.get(1, 1), Some(0.0));
    }
}
