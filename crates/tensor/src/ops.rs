//! Free-standing numerical operations used by the GNN layers.
//!
//! These operate on [`Matrix`] values and keep the layer code in
//! `fare-gnn` readable: activations, row-wise softmax and the numerically
//! stable log-sum-exp reduction.

use crate::Matrix;

/// Rectified linear unit, elementwise.
///
/// # Example
///
/// ```
/// use fare_tensor::{ops, Matrix};
/// let m = Matrix::from_rows(&[&[-1.0, 2.0]]);
/// assert_eq!(ops::relu(&m).as_slice(), &[0.0, 2.0]);
/// ```
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// Derivative mask of ReLU evaluated at the pre-activation `m`.
///
/// Entry is 1.0 where `m > 0`, else 0.0.
pub fn relu_grad(m: &Matrix) -> Matrix {
    m.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Exponential linear unit with `alpha = 1`, elementwise.
///
/// Used by the GAT attention layers.
pub fn elu(m: &Matrix) -> Matrix {
    m.map(|v| if v > 0.0 { v } else { v.exp_m1() })
}

/// Derivative of [`elu`] evaluated at the pre-activation `m`.
pub fn elu_grad(m: &Matrix) -> Matrix {
    m.map(|v| if v > 0.0 { 1.0 } else { v.exp() })
}

/// Leaky ReLU with slope `alpha` on the negative side.
pub fn leaky_relu(m: &Matrix, alpha: f32) -> Matrix {
    m.map(|v| if v > 0.0 { v } else { alpha * v })
}

/// Derivative of [`leaky_relu`] evaluated at the pre-activation `m`.
pub fn leaky_relu_grad(m: &Matrix, alpha: f32) -> Matrix {
    m.map(|v| if v > 0.0 { 1.0 } else { alpha })
}

/// Numerically stable row-wise softmax.
///
/// Each row is shifted by its max before exponentiation so large logits
/// (e.g. from fault-corrupted weights) do not overflow.
///
/// # Example
///
/// ```
/// use fare_tensor::{ops, Matrix};
/// let m = Matrix::from_rows(&[&[0.0, 0.0]]);
/// let s = ops::softmax_rows(&m);
/// assert!((s[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // A row of -inf (fully masked attention) softmaxes to uniform zeros
        // rather than NaN.
        if !max.is_finite() {
            row.iter_mut().for_each(|v| *v = 0.0);
            continue;
        }
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Numerically stable row-wise log-softmax.
pub fn log_softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = max
            + row
                .iter()
                .map(|&v| (v - max).exp())
                .sum::<f32>()
                .ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

/// Mean cross-entropy loss between row-softmaxed `logits` and integer
/// `labels`, together with the gradient w.r.t. the logits.
///
/// Returns `(loss, grad)` where `grad` has the same shape as `logits` and
/// already includes the `1/rows` averaging factor.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn cross_entropy_with_grad(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "labels length must equal logits rows"
    );
    let probs = softmax_rows(logits);
    let n = logits.rows().max(1) as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < logits.cols(),
            "label {label} out of range for {} classes",
            logits.cols()
        );
        let p = probs[(r, label)].max(1e-12);
        loss -= p.ln();
        grad[(r, label)] -= 1.0;
    }
    grad.map_inplace(|v| v / n);
    (loss / n, grad)
}

/// Classification accuracy of `logits` against integer `labels`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.rows());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Row-normalises `adj + I` symmetrically: `D^{-1/2} (A+I) D^{-1/2}`.
///
/// This is the GCN propagation matrix Â from Kipf & Welling; the FARe
/// aggregation phase multiplies node features by this matrix.
pub fn gcn_normalise(adj: &Matrix) -> Matrix {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    let n = adj.rows();
    let mut a_hat = adj.clone();
    for i in 0..n {
        a_hat[(i, i)] += 1.0;
    }
    let deg_inv_sqrt: Vec<f32> = (0..n)
        .map(|i| {
            let d: f32 = a_hat.row(i).iter().sum();
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    Matrix::from_fn(n, n, |r, c| a_hat[(r, c)] * deg_inv_sqrt[r] * deg_inv_sqrt[c])
}

/// Row-normalises `adj` (mean aggregation): `D^{-1} A`.
///
/// This is the propagation matrix used by the GraphSAGE mean aggregator.
pub fn row_normalise(adj: &Matrix) -> Matrix {
    let mut out = adj.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let d: f32 = row.iter().sum();
        if d > 0.0 {
            for v in row.iter_mut() {
                *v /= d;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_grad() {
        let m = Matrix::from_rows(&[&[-2.0, 0.0, 3.0]]);
        assert_eq!(relu(&m).as_slice(), &[0.0, 0.0, 3.0]);
        assert_eq!(relu_grad(&m).as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn elu_continuity_at_zero() {
        let m = Matrix::from_rows(&[&[-1e-5, 1e-5]]);
        let e = elu(&m);
        assert!((e[(0, 0)] - e[(0, 1)]).abs() < 1e-4);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_handles_huge_logits() {
        let m = Matrix::from_rows(&[&[1e30, 0.0]]);
        let s = softmax_rows(&m);
        assert!((s[(0, 0)] - 1.0).abs() < 1e-6);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_fully_masked_row_is_zero() {
        let m = Matrix::from_rows(&[&[f32::NEG_INFINITY, f32::NEG_INFINITY]]);
        let s = softmax_rows(&m);
        assert_eq!(s.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let m = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let ls = log_softmax_rows(&m);
        let s = softmax_rows(&m);
        for c in 0..3 {
            assert!((ls[(0, c)] - s[(0, c)].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, grad) = cross_entropy_with_grad(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert!(grad.frobenius_norm() < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_direction() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, grad) = cross_entropy_with_grad(&logits, &[0]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
        // Gradient should push the correct logit up (negative gradient).
        assert!(grad[(0, 0)] < 0.0);
        assert!(grad[(0, 1)] > 0.0);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[0.0, 0.2, -0.4]]);
        let labels = [2, 1];
        let (_, grad) = cross_entropy_with_grad(&logits, &labels);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus[(r, c)] += eps;
                let mut minus = logits.clone();
                minus[(r, c)] -= eps;
                let (lp, _) = cross_entropy_with_grad(&plus, &labels);
                let (lm, _) = cross_entropy_with_grad(&minus, &labels);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad[(r, c)]).abs() < 1e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn gcn_normalise_symmetric_and_bounded() {
        let adj = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let norm = gcn_normalise(&adj);
        for r in 0..3 {
            for c in 0..3 {
                assert!((norm[(r, c)] - norm[(c, r)]).abs() < 1e-6);
                assert!(norm[(r, c)] >= 0.0 && norm[(r, c)] <= 1.0);
            }
        }
        // Self loops present.
        assert!(norm[(0, 0)] > 0.0);
    }

    #[test]
    fn gcn_normalise_isolated_node_is_selfloop_only() {
        let adj = Matrix::zeros(2, 2);
        let norm = gcn_normalise(&adj);
        assert!((norm[(0, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(norm[(0, 1)], 0.0);
    }

    #[test]
    fn row_normalise_rows_sum_to_one_or_zero() {
        let adj = Matrix::from_rows(&[&[0.0, 2.0, 2.0], &[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0]]);
        let norm = row_normalise(&adj);
        assert!((norm.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(norm.row(1).iter().sum::<f32>(), 0.0);
        assert!((norm.row(2).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }
}
