//! 16-bit fixed-point weight representation and 2-bit cell slicing.
//!
//! ReRAM-based PIM accelerators store each GNN weight as a 16-bit
//! fixed-point number distributed across eight 2-bit cells (Section III-A
//! of the paper). Partial products are reassembled with shift-and-add, so
//! a stuck-at fault on a cell near the MSB corrupts the weight
//! exponentially more than one near the LSB — the "weight explosion"
//! effect FARe's clipping counteracts.
//!
//! This module implements that representation exactly:
//!
//! - [`FixedFormat`] — a signed Q-format (default Q6.9 plus sign) chosen so
//!   typical GNN weights (|w| ≲ 1) use most of the dynamic range.
//! - [`Fixed16`] — one encoded weight.
//! - [`CellWord`] — the weight as eight 2-bit cells, MSB-first, with
//!   stuck-at corruption applied per cell.


/// Number of ReRAM cells a single 16-bit weight is distributed across.
pub const CELLS_PER_WORD: usize = 8;

/// Bits stored per ReRAM cell (Table III: 2-bit/cell resolution).
pub const BITS_PER_CELL: u32 = 2;

/// Signed fixed-point format: 1 sign bit + `15 - frac_bits` integer bits +
/// `frac_bits` fractional bits, two's complement.
///
/// # Example
///
/// ```
/// use fare_tensor::FixedFormat;
/// let fmt = FixedFormat::default();
/// let x = fmt.encode(0.5);
/// assert!((fmt.decode(x) - 0.5).abs() < fmt.resolution());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    frac_bits: u32,
}

fare_rt::json_struct!(FixedFormat { frac_bits });

impl FixedFormat {
    /// Creates a format with the given number of fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= 16`.
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits < 16, "frac_bits must be < 16, got {frac_bits}");
        Self { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Smallest representable positive increment.
    pub fn resolution(&self) -> f32 {
        1.0 / (1i32 << self.frac_bits) as f32
    }

    /// Largest representable magnitude.
    pub fn max_value(&self) -> f32 {
        i16::MAX as f32 * self.resolution()
    }

    /// Encodes an `f32` with saturation (NaN encodes to zero).
    pub fn encode(&self, value: f32) -> Fixed16 {
        if value.is_nan() {
            return Fixed16(0);
        }
        let scaled = (value * (1i32 << self.frac_bits) as f32).round();
        // Clamp to ±i16::MAX: the sign-magnitude cell layout cannot
        // represent i16::MIN.
        Fixed16(scaled.clamp(-(i16::MAX as f32), i16::MAX as f32) as i16)
    }

    /// Decodes a [`Fixed16`] back to `f32`.
    pub fn decode(&self, value: Fixed16) -> f32 {
        value.0 as f32 * self.resolution()
    }

    /// Convenience round-trip: quantises `value` to this format's grid.
    pub fn quantise(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }
}

impl Default for FixedFormat {
    /// Q6.9 + sign: range ±64 with ~2e-3 resolution — wide enough that
    /// healthy training never saturates, narrow enough that an MSB-stuck
    /// weight explodes by orders of magnitude.
    fn default() -> Self {
        Self { frac_bits: 9 }
    }
}

/// One 16-bit fixed-point weight (two's complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fixed16(pub i16);

fare_rt::json_newtype!(Fixed16);

impl Fixed16 {
    /// Raw two's-complement bits.
    pub fn to_bits(self) -> u16 {
        self.0 as u16
    }

    /// Reconstructs from raw bits.
    pub fn from_bits(bits: u16) -> Self {
        Self(bits as i16)
    }
}

/// Converts a two's-complement value to the **sign-magnitude** bit layout
/// the cells store: bit 15 = sign, bits 14..0 = magnitude.
///
/// ReRAM conductances are non-negative, so accelerators store the weight
/// *magnitude* across the cells and handle the sign separately (sign bit
/// or differential crossbar pair). `i16::MIN` saturates to magnitude
/// `0x7FFF`.
fn to_sign_magnitude(v: i16) -> u16 {
    if v < 0 {
        0x8000 | (v as i32).unsigned_abs().min(0x7FFF) as u16
    } else {
        v as u16
    }
}

/// Inverse of [`to_sign_magnitude`]. `0x8000` ("−0") decodes to 0.
fn from_sign_magnitude(bits: u16) -> i16 {
    let mag = (bits & 0x7FFF) as i16;
    if bits & 0x8000 != 0 {
        -mag
    } else {
        mag
    }
}

/// A 16-bit weight sliced into eight 2-bit cells, MSB-first, in
/// **sign-magnitude** layout.
///
/// `cells[0]` holds the sign bit plus the top magnitude bit; `cells[7]`
/// holds magnitude bits 1..0. Stuck-at faults are applied per cell:
/// stuck-at-0 forces the cell to `0b00` (high-resistance, bits read 0),
/// stuck-at-1 to `0b11` (low-resistance, bits read 1).
///
/// The sign-magnitude layout reflects how ReRAM stores weights (cell
/// conductances are non-negative; the sign lives in its own bit /
/// differential pair) and produces the fault asymmetry the paper
/// observes: an SA1 near the MSB *inflates the magnitude* exponentially
/// ("weight explosion"), whereas an SA0 merely shrinks the magnitude
/// toward zero.
///
/// # Example
///
/// ```
/// use fare_tensor::{CellWord, Fixed16};
/// let w = CellWord::from_fixed(Fixed16(300));
/// assert_eq!(w.to_fixed(), Fixed16(300));
/// let neg = CellWord::from_fixed(Fixed16(-1));
/// assert_eq!(neg.cell(0), 0b10); // sign bit set, top magnitude bit clear
/// assert_eq!(neg.to_fixed(), Fixed16(-1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellWord {
    cells: [u8; CELLS_PER_WORD],
}

fare_rt::json_struct!(CellWord { cells });

impl CellWord {
    /// Slices a fixed-point value into cells (sign-magnitude layout).
    pub fn from_fixed(value: Fixed16) -> Self {
        let bits = to_sign_magnitude(value.0);
        let mut cells = [0u8; CELLS_PER_WORD];
        for (i, cell) in cells.iter_mut().enumerate() {
            let shift = (CELLS_PER_WORD - 1 - i) as u32 * BITS_PER_CELL;
            *cell = ((bits >> shift) & 0b11) as u8;
        }
        Self { cells }
    }

    /// Reassembles the cells into a fixed-point value (shift-and-add).
    pub fn to_fixed(&self) -> Fixed16 {
        let mut bits: u16 = 0;
        for &cell in &self.cells {
            bits = (bits << BITS_PER_CELL) | (cell as u16);
        }
        Fixed16(from_sign_magnitude(bits))
    }

    /// Reads cell `i` (0 = MSB cell).
    ///
    /// # Panics
    ///
    /// Panics if `i >= CELLS_PER_WORD`.
    pub fn cell(&self, i: usize) -> u8 {
        self.cells[i]
    }

    /// Forces cell `i` to the stuck-at-0 state (`0b00`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= CELLS_PER_WORD`.
    pub fn stick_at_zero(&mut self, i: usize) {
        self.cells[i] = 0b00;
    }

    /// Forces cell `i` to the stuck-at-1 state (`0b11`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= CELLS_PER_WORD`.
    pub fn stick_at_one(&mut self, i: usize) {
        self.cells[i] = 0b11;
    }

    /// Iterates over the cells, MSB cell first.
    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.cells.iter()
    }
}

impl From<Fixed16> for CellWord {
    fn from(value: Fixed16) -> Self {
        Self::from_fixed(value)
    }
}

impl From<CellWord> for Fixed16 {
    fn from(word: CellWord) -> Self {
        word.to_fixed()
    }
}

/// Corrupts `value` (given in format `fmt`) by sticking cell `cell_index`
/// at 0 or 1, returning the decoded faulty `f32`.
///
/// This is the single-weight fault model used throughout the crossbar
/// simulator.
///
/// # Example
///
/// An SA1 fault on the MSB cell of a small positive weight produces a
/// huge-magnitude weight ("weight explosion"):
///
/// ```
/// use fare_tensor::fixed::{apply_cell_fault, FixedFormat, StuckPolarity};
/// let fmt = FixedFormat::default();
/// let faulty = apply_cell_fault(0.01, fmt, 0, StuckPolarity::StuckAtOne);
/// assert!(faulty.abs() > 10.0);
/// ```
pub fn apply_cell_fault(
    value: f32,
    fmt: FixedFormat,
    cell_index: usize,
    polarity: StuckPolarity,
) -> f32 {
    let mut word = CellWord::from_fixed(fmt.encode(value));
    match polarity {
        StuckPolarity::StuckAtZero => word.stick_at_zero(cell_index),
        StuckPolarity::StuckAtOne => word.stick_at_one(cell_index),
    }
    fmt.decode(word.to_fixed())
}

/// Polarity of a stuck-at fault.
///
/// SA0 pins the cell to the high-resistance state (reads as all-zero
/// bits); SA1 pins it to the low-resistance state (reads as all-one bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckPolarity {
    /// Stuck-at-0: cell permanently reads `0b00`.
    StuckAtZero,
    /// Stuck-at-1: cell permanently reads `0b11`.
    StuckAtOne,
}

fare_rt::json_enum!(StuckPolarity { StuckAtZero, StuckAtOne });

impl std::fmt::Display for StuckPolarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StuckPolarity::StuckAtZero => write!(f, "SA0"),
            StuckPolarity::StuckAtOne => write!(f, "SA1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_within_resolution() {
        let fmt = FixedFormat::default();
        for &v in &[0.0, 0.5, -0.5, 1.25, -3.75, 0.001, -0.001] {
            let rt = fmt.quantise(v);
            assert!(
                (rt - v).abs() <= fmt.resolution() / 2.0 + 1e-9,
                "{v} -> {rt}"
            );
        }
    }

    #[test]
    fn encode_saturates() {
        let fmt = FixedFormat::default();
        assert!((fmt.decode(fmt.encode(1e9)) - fmt.max_value()).abs() < 1e-3);
        assert!(fmt.decode(fmt.encode(-1e9)) < -fmt.max_value() + 0.1);
    }

    #[test]
    fn nan_encodes_to_zero() {
        let fmt = FixedFormat::default();
        assert_eq!(fmt.encode(f32::NAN), Fixed16(0));
    }

    #[test]
    fn cell_word_round_trip_all_values() {
        for v in [0i16, 1, -1, 300, -300, i16::MAX, -i16::MAX, 12345, -12345] {
            let w = CellWord::from_fixed(Fixed16(v));
            assert_eq!(w.to_fixed(), Fixed16(v), "value {v}");
        }
    }

    #[test]
    fn i16_min_saturates_to_neg_max() {
        // Sign-magnitude cannot represent i16::MIN; it saturates.
        let w = CellWord::from_fixed(Fixed16(i16::MIN));
        assert_eq!(w.to_fixed(), Fixed16(-i16::MAX));
    }

    #[test]
    fn msb_cell_is_sign_region() {
        // -1: sign bit set, magnitude 1 → MSB cell is 0b10, LSB cell 0b01.
        let w = CellWord::from_fixed(Fixed16(-1));
        assert_eq!(w.cell(0), 0b10);
        assert_eq!(w.cell(CELLS_PER_WORD - 1), 0b01);
    }

    #[test]
    fn sa1_near_msb_explodes_positive_weight() {
        let fmt = FixedFormat::default();
        let clean = 0.02f32;
        let msb_fault = apply_cell_fault(clean, fmt, 0, StuckPolarity::StuckAtOne);
        let lsb_fault = apply_cell_fault(clean, fmt, CELLS_PER_WORD - 1, StuckPolarity::StuckAtOne);
        assert!(
            msb_fault.abs() > 100.0 * lsb_fault.abs().max(clean),
            "msb {msb_fault} lsb {lsb_fault}"
        );
    }

    #[test]
    fn sa0_zeroes_out_small_weight() {
        let fmt = FixedFormat::default();
        // A weight small enough to live entirely in the LSB cell.
        let tiny = fmt.resolution();
        let faulty = apply_cell_fault(tiny, fmt, CELLS_PER_WORD - 1, StuckPolarity::StuckAtZero);
        assert_eq!(faulty, 0.0);
    }

    #[test]
    fn sa0_msb_on_negative_weight_is_benign() {
        let fmt = FixedFormat::default();
        // Sign-magnitude: SA0 on the MSB cell clears the sign and the top
        // magnitude bit — for a small weight that only flips the sign, no
        // explosion. This asymmetry (SA1 explodes, SA0 does not) is the
        // paper's Fig. 3 observation.
        let faulty = apply_cell_fault(-0.01, fmt, 0, StuckPolarity::StuckAtZero);
        assert!(faulty.abs() < 0.1, "got {faulty}");
    }

    #[test]
    fn sa0_never_increases_magnitude() {
        let fmt = FixedFormat::default();
        for &v in &[0.01f32, -0.4, 3.7, -25.0, 60.0] {
            for cell in 0..CELLS_PER_WORD {
                let faulty = apply_cell_fault(v, fmt, cell, StuckPolarity::StuckAtZero);
                assert!(
                    faulty.abs() <= v.abs() + fmt.resolution(),
                    "SA0 grew |{v}| to |{faulty}| at cell {cell}"
                );
            }
        }
    }

    #[test]
    fn sa1_explosion_exceeds_any_sa0_damage() {
        // The Fig. 3 asymmetry at the single-weight level: the worst SA1
        // corruption dwarfs the worst SA0 corruption for small weights.
        let fmt = FixedFormat::default();
        let v = 0.05f32;
        let worst = |pol: StuckPolarity| -> f32 {
            (0..CELLS_PER_WORD)
                .map(|c| (apply_cell_fault(v, fmt, c, pol) - v).abs())
                .fold(0.0, f32::max)
        };
        assert!(worst(StuckPolarity::StuckAtOne) > 10.0 * worst(StuckPolarity::StuckAtZero));
    }

    #[test]
    fn fault_on_already_matching_cell_is_noop() {
        let fmt = FixedFormat::default();
        // 0.0 encodes to all-zero cells: SA0 anywhere changes nothing.
        for i in 0..CELLS_PER_WORD {
            assert_eq!(apply_cell_fault(0.0, fmt, i, StuckPolarity::StuckAtZero), 0.0);
        }
    }

    #[test]
    fn polarity_display() {
        assert_eq!(StuckPolarity::StuckAtZero.to_string(), "SA0");
        assert_eq!(StuckPolarity::StuckAtOne.to_string(), "SA1");
    }

    #[test]
    #[should_panic(expected = "frac_bits must be < 16")]
    fn format_rejects_too_many_frac_bits() {
        FixedFormat::new(16);
    }
}
