//! Weight initialisers.
//!
//! All initialisers take an explicit [`fare_rt::rand::Rng`] so experiments are
//! reproducible from a seed.

use fare_rt::rand::Rng;

use crate::Matrix;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// use fare_tensor::init;
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(7);
/// let w = init::xavier_uniform(64, 32, &mut rng);
/// assert_eq!(w.shape(), (64, 32));
/// let a = (6.0f32 / 96.0).sqrt();
/// assert!(w.iter().all(|v| v.abs() <= a));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// He/Kaiming uniform initialisation: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
///
/// Preferred for ReLU networks.
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// Uniform initialisation in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    assert!(lo < hi, "invalid uniform range [{lo}, {hi})");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Standard normal initialisation scaled by `std` (Box–Muller).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        // Box–Muller transform; avoids pulling in rand_distr.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn he_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_uniform(16, 8, &mut rng);
        let a = (6.0f32 / 16.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let w1 = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(42));
        let w2 = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(w1, w2);
    }

    #[test]
    fn normal_mean_approximately_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = normal(100, 100, 1.0, &mut rng);
        assert!(w.mean().abs() < 0.05, "mean {}", w.mean());
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_bad_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        uniform(1, 1, 1.0, 1.0, &mut rng);
    }
}
