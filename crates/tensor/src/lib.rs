//! Dense linear algebra and fixed-point quantisation kernels.
//!
//! This crate is the numerical substrate of the FARe reproduction. It
//! provides:
//!
//! - [`Matrix`]: a row-major dense `f32` matrix with the handful of
//!   operations GNN training needs (matmul, transpose, elementwise maps,
//!   reductions, softmax).
//! - [`fixed::Fixed16`]: the 16-bit fixed-point weight representation used
//!   by ReRAM-based PIM accelerators, together with the 2-bit-per-cell
//!   slicing that determines how stuck-at faults corrupt a stored weight.
//! - [`init`]: weight initialisers (Xavier/Glorot, He, uniform).
//!
//! # Example
//!
//! ```
//! use fare_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fixed;
pub mod init;
mod matrix;
pub mod ops;

pub use error::ShapeError;
pub use fixed::{CellWord, Fixed16, FixedFormat};
pub use matrix::Matrix;
