//! Property tests for the span-trace exporters: arbitrary well-formed
//! span streams must round-trip losslessly through JSONL, export to
//! parseable Chrome Trace JSON with every event intact, and keep the
//! nesting/monotonicity invariants the emitter guarantees by
//! construction.

use fare_obs::trace::{Phase, TraceEvent, TraceLog};
use fare_rt::json::Json;
use fare_rt::prop::prelude::*;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};

const NAMES: [&str; 7] = [
    "core.trainer.run",
    "core.trainer.epoch",
    "core.trainer.batch",
    "gnn.aggregate",
    "gnn.matmul",
    "reram.mvm",
    "core.mapping.refresh",
];

/// Generate a random *well-formed* span stream: a random walk that
/// either opens a random span or closes the innermost one, then closes
/// whatever is left — balanced by construction, with strictly
/// increasing fixed-clock timestamps.
fn random_stream(seed: u64, len: usize, step: u64) -> TraceLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut ts = 0u64;
    let mut tick = |events: &mut Vec<TraceEvent>, name: &str, ph: Phase, arg: Option<u64>| {
        events.push(TraceEvent {
            name: name.to_string(),
            ph,
            ts_ns: ts,
            track: 0,
            arg,
        });
        ts += step;
    };
    for _ in 0..len {
        let open = stack.is_empty() || rng.gen_bool(0.55);
        if open {
            let name = NAMES[rng.gen_range(0..NAMES.len())];
            let arg = if rng.gen_bool(0.4) {
                Some(rng.gen_range(0..1000u64))
            } else {
                None
            };
            stack.push(name);
            tick(&mut events, name, Phase::B, arg);
        } else {
            let name = stack.pop().unwrap();
            tick(&mut events, name, Phase::E, None);
        }
    }
    while let Some(name) = stack.pop() {
        tick(&mut events, name, Phase::E, None);
    }
    TraceLog::from_events(step, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jsonl_round_trips_arbitrary_streams(
        seed in 0u64..10_000,
        len in 0usize..120,
        step in 1u64..5_000,
    ) {
        let log = random_stream(seed, len, step);
        let text = log.to_jsonl();
        let back = TraceLog::from_jsonl(&text).expect("round trip parses");
        prop_assert_eq!(&back, &log);
        // Idempotent: re-encoding is byte-identical.
        prop_assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn generated_streams_satisfy_nesting_invariants(
        seed in 0u64..10_000,
        len in 0usize..120,
    ) {
        let log = random_stream(seed, len, 10);
        prop_assert!(log.validate_nesting().is_ok());
        // Begin and end counts balance per name.
        let mut per_name: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
        for ev in &log.events {
            *per_name.entry(ev.name.as_str()).or_insert(0) +=
                if ev.ph == Phase::B { 1 } else { -1 };
        }
        prop_assert!(per_name.values().all(|&v| v == 0));
    }

    #[test]
    fn chrome_export_parses_back_with_every_event(
        seed in 0u64..10_000,
        len in 0usize..120,
        step in 1u64..5_000,
    ) {
        let log = random_stream(seed, len, step);
        let chrome = log.to_chrome();
        let parsed = fare_rt::json::parse(&chrome).expect("chrome export parses");
        let Json::Obj(fields) = parsed else { panic!("chrome export is not an object") };
        let events = fields.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v);
        let Some(Json::Arr(events)) = events else { panic!("no traceEvents array") };
        prop_assert_eq!(events.len(), log.events.len());
        // Spot-check field fidelity on every event: name matches and
        // ph is B or E in stream order.
        for (ev, parsed_ev) in log.events.iter().zip(events) {
            let Json::Obj(po) = parsed_ev else { panic!("event is not an object") };
            let get = |key: &str| po.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
            prop_assert_eq!(get("name"), Some(Json::Str(ev.name.clone())));
            let want_ph = match ev.ph { Phase::B => "B", Phase::E => "E" };
            prop_assert_eq!(get("ph"), Some(Json::Str(want_ph.to_string())));
            // Timestamp in µs: ns/1000 with three fixed decimals.
            let want_ts = format!("{}.{:03}", ev.ts_ns / 1000, ev.ts_ns % 1000);
            prop_assert_eq!(get("ts"), Some(Json::Num(want_ts)));
        }
    }

    #[test]
    fn nesting_validator_rejects_random_corruption(
        seed in 0u64..10_000,
        len in 4usize..120,
    ) {
        let log = random_stream(seed, len, 10);
        // len >= 4 guarantees at least one event. Flipping one phase
        // always breaks balance (B count no longer equals E count for
        // that name).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let idx = rng.gen_range(0..log.events.len());
        let mut corrupted = log.clone();
        corrupted.events[idx].ph = match corrupted.events[idx].ph {
            Phase::B => Phase::E,
            Phase::E => Phase::B,
        };
        prop_assert!(corrupted.validate_nesting().is_err());
    }
}
