//! Spatial (per-crossbar) telemetry rollups.
//!
//! A [`HeatmapGrid`] is a named grid of per-crossbar accumulators —
//! SA0/SA1 fault-cell counts, mapping mismatch cost, modeled MVM
//! traffic and modeled energy — produced once per instrumented run
//! (the trainer rolls its batch states up at the end of
//! `Trainer::run`) and recorded into a process-global sink that
//! [`RunManifest::capture`](crate::RunManifest::capture) drains into
//! the manifest's `heatmaps` section.
//!
//! Cell values are stored as parallel arrays indexed by crossbar, with
//! a `rows × cols` display shape (`cols = ceil(sqrt(cells))`) chosen
//! purely for rendering — `fare-report heatmap` turns these into ASCII
//! or SVG grids. All values are accumulated on logical paths, so grids
//! are bit-identical across `FARE_RT_THREADS` like the rest of the
//! manifest.

use std::sync::Mutex;

/// Per-crossbar accumulators for one named grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapGrid {
    /// Grid name (e.g. `crossbars`).
    pub name: String,
    /// Display rows (`ceil(cells / cols)`).
    pub rows: u64,
    /// Display columns (`ceil(sqrt(cells))`).
    pub cols: u64,
    /// SA0 (stuck-at-zero) fault cells per crossbar.
    pub sa0: Vec<u64>,
    /// SA1 (stuck-at-one) fault cells per crossbar.
    pub sa1: Vec<u64>,
    /// Final mapping mismatch cost attributed to each crossbar.
    pub mismatch: Vec<u64>,
    /// Modeled MVM traffic (weight-block activations) per crossbar.
    pub mvms: Vec<u64>,
    /// Modeled energy share per crossbar, nanojoules (apportioned from
    /// the chip-level energy model by MVM traffic).
    pub energy_nj: Vec<f64>,
}
fare_rt::json_struct!(HeatmapGrid {
    name,
    rows,
    cols,
    sa0,
    sa1,
    mismatch,
    mvms,
    energy_nj
});

/// Display shape for `cells` crossbars: near-square, wide-first.
pub fn grid_shape(cells: usize) -> (u64, u64) {
    if cells == 0 {
        return (0, 0);
    }
    let cols = (cells as f64).sqrt().ceil() as u64;
    let rows = (cells as u64).div_ceil(cols);
    (rows, cols)
}

impl HeatmapGrid {
    /// An all-zero grid over `cells` crossbars.
    pub fn zeros(name: &str, cells: usize) -> HeatmapGrid {
        let (rows, cols) = grid_shape(cells);
        HeatmapGrid {
            name: name.to_string(),
            rows,
            cols,
            sa0: vec![0; cells],
            sa1: vec![0; cells],
            mismatch: vec![0; cells],
            mvms: vec![0; cells],
            energy_nj: vec![0.0; cells],
        }
    }

    /// Number of crossbar cells.
    pub fn cells(&self) -> usize {
        self.sa0.len()
    }

    /// The named metric as `f64` values, or `None` for an unknown name.
    /// Valid names: `sa0`, `sa1`, `faults` (sa0+sa1), `mismatch`,
    /// `mvms`, `energy`.
    pub fn metric(&self, which: &str) -> Option<Vec<f64>> {
        let vals = match which {
            "sa0" => self.sa0.iter().map(|&v| v as f64).collect(),
            "sa1" => self.sa1.iter().map(|&v| v as f64).collect(),
            "faults" => self
                .sa0
                .iter()
                .zip(&self.sa1)
                .map(|(&a, &b)| (a + b) as f64)
                .collect(),
            "mismatch" => self.mismatch.iter().map(|&v| v as f64).collect(),
            "mvms" => self.mvms.iter().map(|&v| v as f64).collect(),
            "energy" => self.energy_nj.clone(),
            _ => return None,
        };
        Some(vals)
    }

    /// Metric names [`metric`](Self::metric) understands.
    pub fn metric_names() -> &'static [&'static str] {
        &["sa0", "sa1", "faults", "mismatch", "mvms", "energy"]
    }
}

static SINK: Mutex<Vec<HeatmapGrid>> = Mutex::new(Vec::new());

/// Record one grid. No-op when telemetry is off.
pub fn record(grid: HeatmapGrid) {
    if !crate::enabled() {
        return;
    }
    SINK.lock().unwrap().push(grid);
}

/// Grids recorded since the last [`reset`](crate::reset) (sink left
/// untouched).
pub fn recorded() -> Vec<HeatmapGrid> {
    SINK.lock().unwrap().clone()
}

/// Clear the sink (called by [`crate::reset`]).
pub(crate) fn reset() {
    SINK.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_is_near_square() {
        assert_eq!(grid_shape(0), (0, 0));
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(17), (4, 5));
    }

    #[test]
    fn metrics_resolve_and_round_trip() {
        let mut g = HeatmapGrid::zeros("crossbars", 3);
        g.sa0 = vec![1, 0, 2];
        g.sa1 = vec![0, 4, 1];
        g.energy_nj = vec![0.5, 1.25, 0.0];
        assert_eq!(g.metric("faults"), Some(vec![1.0, 4.0, 3.0]));
        assert_eq!(g.metric("energy"), Some(vec![0.5, 1.25, 0.0]));
        assert_eq!(g.metric("volts"), None);
        for name in HeatmapGrid::metric_names() {
            assert!(g.metric(name).is_some());
        }
        let text = fare_rt::json::to_string(&g).unwrap();
        let back: HeatmapGrid = fare_rt::json::from_str(&text).unwrap();
        assert_eq!(back, g);
    }
}
