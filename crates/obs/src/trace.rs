//! Hierarchical span tracing behind `FARE_OBS=trace`.
//!
//! Instrumented code opens nested spans ([`span`]/[`span_arg`]); each
//! span pushes a begin event when created and an end event when
//! dropped, into a bounded global ring buffer (oldest events are
//! dropped first, with a drop count kept, so tracing can never grow
//! without bound). The recorded stream can be drained with [`take`]
//! and exported two ways:
//!
//! - [`TraceLog::to_jsonl`] — one JSON object per line, preceded by a
//!   meta header line; lossless round trip via [`TraceLog::from_jsonl`].
//! - [`TraceLog::to_chrome`] — Chrome Trace Event Format JSON, loadable
//!   in `chrome://tracing` or Perfetto (`ui.perfetto.dev`).
//!
//! ## Timestamps and determinism
//!
//! Timestamps come from the installed [`ClockMode`](crate::ClockMode):
//!
//! * `Wall` — nanoseconds since the first event of the process; real
//!   profile, not reproducible.
//! * `Fixed(step_ns)` — a global event-sequence counter times
//!   `step_ns`: every begin/end event gets the next tick, so the trace
//!   is strictly ordered and **fully deterministic**. Because spans are
//!   only emitted on logical event paths (never inside `fare-rt`
//!   worker closures — same rule as counters), the byte stream is
//!   identical at any `FARE_RT_THREADS`, which is what
//!   `tests/trace_golden.rs` pins.
//!
//! The event sequence (and the wall epoch) rewind on
//! [`reset`](crate::reset), so every instrumented run starts its
//! timeline at t = 0.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::ClockMode;

/// Begin/end phase of a [`TraceEvent`] (Chrome trace `ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    B,
    /// Span end (`"E"`).
    E,
}
fare_rt::json_enum!(Phase { B, E });

/// One begin or end event in the span stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name, `layer.operation` (e.g. `core.trainer.epoch`,
    /// `gnn.aggregate`, `reram.mvm`).
    pub name: String,
    /// Phase: begin or end.
    pub ph: Phase,
    /// Timestamp in nanoseconds (see module docs for the clock rules).
    pub ts_ns: u64,
    /// Logical track for the Chrome export (pipeline stage, layer
    /// index, …). Spans recorded by [`span`] use track 0.
    pub track: u64,
    /// Optional argument (epoch number, batch index, block count, …).
    pub arg: Option<u64>,
}
fare_rt::json_struct!(TraceEvent {
    name,
    ph,
    ts_ns,
    track,
    arg
});

/// Ring-buffer state behind the global trace sink.
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    const fn new() -> Self {
        Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Default ring capacity (events, not spans). The golden workload emits
/// ~2k events; a full Reddit run stays well under this.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

static RING: Mutex<Ring> = Mutex::new(Ring::new());
/// Next event-sequence tick for the fixed clock.
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Wall epoch: the `Instant` of the first wall-clocked event since the
/// last reset (nanos offset stored lazily under the ring lock).
static WALL_EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

/// Change the ring capacity (existing overflow is trimmed oldest-first).
pub fn set_capacity(capacity: usize) {
    let mut ring = RING.lock().unwrap();
    ring.capacity = capacity.max(2);
    while ring.events.len() > ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
}

/// Clear the buffer and rewind the timeline (called by
/// [`crate::reset`]).
pub(crate) fn reset() {
    let mut ring = RING.lock().unwrap();
    ring.events.clear();
    ring.dropped = 0;
    SEQ.store(0, Ordering::Relaxed);
    *WALL_EPOCH.lock().unwrap() = None;
}

fn next_ts() -> u64 {
    match crate::clock() {
        ClockMode::Fixed(step) => SEQ.fetch_add(1, Ordering::Relaxed).wrapping_mul(step),
        ClockMode::Wall => {
            let mut epoch = WALL_EPOCH.lock().unwrap();
            let start = *epoch.get_or_insert_with(Instant::now);
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64
        }
    }
}

fn emit(name: &str, ph: Phase, track: u64, arg: Option<u64>) {
    let ev = TraceEvent {
        name: name.to_string(),
        ph,
        ts_ns: next_ts(),
        track,
        arg,
    };
    RING.lock().unwrap().push(ev);
}

/// RAII guard for one traced span: emits the begin event on creation
/// and the matching end event on drop. Inert when `FARE_OBS != trace`.
#[must_use = "a span ends when dropped; binding to _ ends it immediately"]
pub struct Span {
    name: &'static str,
    armed: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            emit(self.name, Phase::E, 0, None);
        }
    }
}

/// Open a span. Call only on logical event paths (main thread /
/// once-per-event), never inside worker closures — the same placement
/// rule as counters, and what keeps traces thread-invariant.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::trace_enabled() {
        return Span { name, armed: false };
    }
    emit(name, Phase::B, 0, None);
    Span { name, armed: true }
}

/// [`span`] with an argument on the begin event (epoch index, batch
/// index, …), surfaced under `args` in the Chrome export.
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> Span {
    if !crate::trace_enabled() {
        return Span { name, armed: false };
    }
    emit(name, Phase::B, 0, Some(arg));
    Span { name, armed: true }
}

/// A drained trace: the event stream plus the clock step it was
/// recorded under (`step_ns` = 0 means wall clock) and how many events
/// the ring dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Fixed-clock step in ns; 0 when recorded under the wall clock.
    pub step_ns: u64,
    /// Events the ring buffer evicted (oldest-first) due to capacity.
    pub dropped: u64,
    /// The surviving events, in emission order.
    pub events: Vec<TraceEvent>,
}

/// Meta header line of the JSONL encoding.
#[derive(Debug, Clone, PartialEq)]
struct TraceMeta {
    step_ns: u64,
    dropped: u64,
    events: u64,
}
fare_rt::json_struct!(TraceMeta {
    step_ns,
    dropped,
    events
});

/// Drain the recorded events (and drop count) into a [`TraceLog`].
/// The timeline keeps running; use [`crate::reset`] to rewind it.
pub fn take() -> TraceLog {
    let mut ring = RING.lock().unwrap();
    let events: Vec<TraceEvent> = ring.events.drain(..).collect();
    let dropped = ring.dropped;
    ring.dropped = 0;
    drop(ring);
    let step_ns = match crate::clock() {
        ClockMode::Fixed(step) => step,
        ClockMode::Wall => 0,
    };
    TraceLog {
        step_ns,
        dropped,
        events,
    }
}

/// Events currently buffered (for tests; does not drain).
pub fn buffered() -> usize {
    RING.lock().unwrap().events.len()
}

impl TraceLog {
    /// Build a log from externally-constructed events (used by the
    /// pipeline-timing example to export *modeled* schedules).
    pub fn from_events(step_ns: u64, events: Vec<TraceEvent>) -> TraceLog {
        TraceLog {
            step_ns,
            dropped: 0,
            events,
        }
    }

    /// JSONL encoding: a meta line (`{"step_ns":…,"dropped":…,
    /// "events":N}`) followed by one compact JSON object per event,
    /// newline-terminated. Byte-deterministic given the same events.
    pub fn to_jsonl(&self) -> String {
        let meta = TraceMeta {
            step_ns: self.step_ns,
            dropped: self.dropped,
            events: self.events.len() as u64,
        };
        let mut out = fare_rt::json::to_string(&meta).expect("trace meta serialises");
        out.push('\n');
        for ev in &self.events {
            out.push_str(&fare_rt::json::to_string(ev).expect("trace event serialises"));
            out.push('\n');
        }
        out
    }

    /// Parse a [`to_jsonl`](Self::to_jsonl) stream back. Errors on
    /// malformed lines or an event count that disagrees with the meta
    /// header.
    pub fn from_jsonl(text: &str) -> Result<TraceLog, String> {
        let mut lines = text.lines();
        let meta_line = lines.next().ok_or("empty trace stream")?;
        let meta: TraceMeta =
            fare_rt::json::from_str(meta_line).map_err(|e| format!("bad meta line: {e:?}"))?;
        let mut events = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let ev: TraceEvent = fare_rt::json::from_str(line)
                .map_err(|e| format!("bad event on line {}: {e:?}", i + 2))?;
            events.push(ev);
        }
        if events.len() as u64 != meta.events {
            return Err(format!(
                "meta says {} events, stream has {}",
                meta.events,
                events.len()
            ));
        }
        Ok(TraceLog {
            step_ns: meta.step_ns,
            dropped: meta.dropped,
            events,
        })
    }

    /// Chrome Trace Event Format JSON: open the output in
    /// `chrome://tracing` or Perfetto. Timestamps are microseconds
    /// (`ts_ns / 1000`, fractional part kept); `track` maps to `tid` so
    /// modeled pipeline stages render as parallel rows.
    pub fn to_chrome(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = match ev.ph {
                Phase::B => "B",
                Phase::E => "E",
            };
            let cat = ev.name.split('.').next().unwrap_or("fare");
            let ts_us = ev.ts_ns / 1000;
            let ts_frac = ev.ts_ns % 1000;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
                ev.name, cat, ph, ts_us, ts_frac, ev.track
            ));
            if let Some(arg) = ev.arg {
                out.push_str(&format!(",\"args\":{{\"arg\":{arg}}}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Check the structural invariants of a span stream: every end
    /// matches the innermost open begin of the same name, nothing is
    /// left open, and timestamps never decrease. Returns a description
    /// of the first violation.
    pub fn validate_nesting(&self) -> Result<(), String> {
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0u64;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.ts_ns < last_ts {
                return Err(format!(
                    "event {i} ({}) goes back in time: {} < {}",
                    ev.name, ev.ts_ns, last_ts
                ));
            }
            last_ts = ev.ts_ns;
            match ev.ph {
                Phase::B => stack.push(&ev.name),
                Phase::E => match stack.pop() {
                    Some(open) if open == ev.name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: end of {} while {} is innermost",
                            ev.name, open
                        ))
                    }
                    None => return Err(format!("event {i}: end of {} with no open span", ev.name)),
                },
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!("span {open} never ended"));
        }
        Ok(())
    }

    /// Per-span-name (begin) event counts, sorted by name — the compact
    /// shape pinned by the trace-golden digest.
    pub fn span_counts(&self) -> Vec<(String, u64)> {
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for ev in &self.events {
            if ev.ph == Phase::B {
                *counts.entry(&ev.name).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_clock, set_mode, ClockMode, Mode};
    use std::sync::MutexGuard;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fixture() -> TraceLog {
        TraceLog::from_events(
            7,
            vec![
                TraceEvent {
                    name: "core.trainer.run".into(),
                    ph: Phase::B,
                    ts_ns: 0,
                    track: 0,
                    arg: None,
                },
                TraceEvent {
                    name: "core.trainer.epoch".into(),
                    ph: Phase::B,
                    ts_ns: 7,
                    track: 0,
                    arg: Some(0),
                },
                TraceEvent {
                    name: "core.trainer.epoch".into(),
                    ph: Phase::E,
                    ts_ns: 14,
                    track: 0,
                    arg: None,
                },
                TraceEvent {
                    name: "core.trainer.run".into(),
                    ph: Phase::E,
                    ts_ns: 21,
                    track: 0,
                    arg: None,
                },
            ],
        )
    }

    #[test]
    fn spans_are_inert_when_not_tracing() {
        let _g = lock();
        set_mode(Mode::Json);
        crate::reset();
        {
            let _s = span("core.trainer.run");
        }
        assert_eq!(buffered(), 0, "json mode must not record spans");
        set_mode(Mode::Off);
        crate::reset();
    }

    #[test]
    fn fixed_clock_spans_are_sequenced_and_nested() {
        let _g = lock();
        set_mode(Mode::Trace);
        set_clock(ClockMode::Fixed(10));
        crate::reset();
        {
            let _run = span("core.trainer.run");
            for e in 0..2u64 {
                let _epoch = span_arg("core.trainer.epoch", e);
            }
        }
        let log = take();
        set_clock(ClockMode::Wall);
        set_mode(Mode::Off);
        crate::reset();

        assert_eq!(log.events.len(), 6);
        assert_eq!(log.step_ns, 10);
        let ts: Vec<u64> = log.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(log.events[1].arg, Some(0));
        log.validate_nesting().unwrap();
        assert_eq!(
            log.span_counts(),
            vec![
                ("core.trainer.epoch".to_string(), 2),
                ("core.trainer.run".to_string(), 1)
            ]
        );
    }

    #[test]
    fn jsonl_round_trips_byte_exactly() {
        let log = fixture();
        let text = log.to_jsonl();
        let back = TraceLog::from_jsonl(&text).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_rejects_count_mismatch_and_garbage() {
        let log = fixture();
        let mut text = log.to_jsonl();
        // Drop the last event line → count mismatch.
        let trimmed: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n")
        };
        assert!(TraceLog::from_jsonl(&trimmed).is_err());
        text.push_str("not json\n");
        assert!(TraceLog::from_jsonl(&text).is_err());
        assert!(TraceLog::from_jsonl("").is_err());
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_events() {
        let log = fixture();
        let chrome = log.to_chrome();
        let parsed = fare_rt::json::parse(&chrome).expect("chrome export parses as JSON");
        let obj = match parsed {
            fare_rt::json::Json::Obj(o) => o,
            other => panic!("expected object, got {other:?}"),
        };
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        match events {
            fare_rt::json::Json::Arr(a) => assert_eq!(a.len(), log.events.len()),
            other => panic!("expected array, got {other:?}"),
        }
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ts\":0.007")); // 7 ns = 0.007 µs
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let _g = lock();
        set_mode(Mode::Trace);
        set_clock(ClockMode::Fixed(1));
        crate::reset();
        set_capacity(4);
        for i in 0..6u64 {
            let _s = span_arg("reram.mvm", i); // 2 events each
        }
        let log = take();
        set_capacity(DEFAULT_CAPACITY);
        set_clock(ClockMode::Wall);
        set_mode(Mode::Off);
        crate::reset();

        assert_eq!(log.events.len(), 4);
        assert_eq!(log.dropped, 8);
        // Survivors are the newest events.
        assert_eq!(log.events.last().unwrap().ts_ns, 11);
    }

    #[test]
    fn validate_nesting_flags_violations() {
        let mut log = fixture();
        log.events[2].name = "gnn.forward".into();
        assert!(log.validate_nesting().is_err());

        let mut log = fixture();
        log.events.truncate(2);
        assert!(log.validate_nesting().is_err());

        let mut log = fixture();
        log.events[3].ts_ns = 1;
        assert!(log.validate_nesting().is_err());
    }
}
