//! # fare-obs — telemetry core for the FARe workspace
//!
//! A zero-external-dependency, thread-safe observability layer:
//!
//! - **named monotonic counters** ([`Counter`]) — faults injected per
//!   polarity, crossbars corrupted/remapped, MVM and matmul
//!   invocations, `RemapCache` hits/misses, … The full taxonomy lives
//!   in [`counters`] and every counter is registered there, so a run
//!   manifest can enumerate them all.
//! - **span timers** ([`SpanTimer`]) with an injectable clock
//!   ([`ClockMode`]): under [`ClockMode::Fixed`] every span records a
//!   constant duration, so timer records stay bit-identical across
//!   `FARE_RT_THREADS` settings and golden traces can include them.
//! - a **per-epoch metrics sink** ([`record_epoch`]) the trainer feeds,
//! - **hierarchical span tracing** ([`trace`]) behind `FARE_OBS=trace`:
//!   nested begin/end events (train run → epoch → batch → {aggregate,
//!   matmul, mvm, map_adjacency, remap_refresh}) in a bounded ring
//!   buffer, exportable as a JSONL stream or a Chrome Trace Event
//!   Format JSON (`chrome://tracing` / Perfetto),
//! - **spatial heatmaps** ([`heatmap`]): per-crossbar accumulators
//!   (SA0/SA1 fault cells, mismatch cost, MVM traffic, modeled energy)
//!   rolled up into [`HeatmapGrid`]s on the manifest,
//! - and a [`RunManifest`] — seed, config, counter totals, epoch curve,
//!   heatmaps and optional bench numbers — serialised via `fare-rt`
//!   JSON.
//!
//! ## Overhead contract
//!
//! The whole layer sits behind a `FARE_OBS=trace|json|off` switch
//! (default **off**). Every recording call starts with a single relaxed
//! atomic load; when disabled nothing else happens, so instrumented hot
//! loops pay one predictable branch. `trace` is a strict superset of
//! `json` (counters/timers/epochs still record). Telemetry never feeds
//! back into any computation: enabling or disabling it must not change
//! a single bit of any training output (pinned by
//! `tests/determinism.rs`).
//!
//! ## Determinism contract
//!
//! Counter increments and span emissions are placed on *logical* event
//! paths (one `add` per injected fault, per MVM call, per cache
//! probe…), never inside per-chunk worker closures, so totals are
//! identical at any `FARE_RT_THREADS`. Combined with the fixed clock
//! (which also drives trace timestamps, see [`trace`]) this makes the
//! whole [`RunManifest`] — and the full span trace — bit-identical
//! across thread counts, the property `tests/golden_trace.rs` and
//! `tests/trace_golden.rs` snapshot.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fare_rt::json::ToJson;

pub mod heatmap;
pub mod trace;

pub use heatmap::HeatmapGrid;

// ---------------------------------------------------------------------------
// Mode switch
// ---------------------------------------------------------------------------

/// Telemetry mode: `Off` makes every recording call a no-op after one
/// relaxed atomic load; `Json` records counters/timers/epochs/heatmaps
/// so a [`RunManifest`] can be captured; `Trace` additionally records
/// nested spans into the [`trace`] ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Off,
    Json,
    Trace,
}

/// 0 = unresolved (read `FARE_OBS` on first use), 1 = off, 2 = json,
/// 3 = trace.
static MODE: AtomicU8 = AtomicU8::new(0);

fn resolve_mode() -> u8 {
    let resolved = match std::env::var("FARE_OBS") {
        Ok(v) if v == "trace" => 3,
        Ok(v) if v == "json" => 2,
        _ => 1,
    };
    // Racing first-uses resolve to the same value; any interleaved
    // `set_mode` wins over the env default.
    let _ = MODE.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    MODE.load(Ordering::Relaxed)
}

/// Is telemetry recording (json or trace)? One relaxed load on the
/// fast path.
#[inline]
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        0 => resolve_mode() >= 2,
        m => m >= 2,
    }
}

/// Is span tracing recording? One relaxed load on the fast path.
#[inline]
pub fn trace_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        0 => resolve_mode() == 3,
        m => m == 3,
    }
}

/// Programmatically override the `FARE_OBS` environment switch
/// (tests and examples use this; the env var only sets the default).
pub fn set_mode(mode: Mode) {
    let m = match mode {
        Mode::Off => 1,
        Mode::Json => 2,
        Mode::Trace => 3,
    };
    MODE.store(m, Ordering::Relaxed);
}

/// The currently effective mode.
pub fn mode() -> Mode {
    if trace_enabled() {
        Mode::Trace
    } else if enabled() {
        Mode::Json
    } else {
        Mode::Off
    }
}

// ---------------------------------------------------------------------------
// Clock injection
// ---------------------------------------------------------------------------

/// The clock behind every [`SpanTimer`].
///
/// * `Wall` — real monotonic time (`std::time::Instant`); durations are
///   informative but not reproducible.
/// * `Fixed(step_ns)` — every completed span records exactly `step_ns`
///   nanoseconds. Totals become `count × step_ns`: fully deterministic,
///   so golden traces can pin them. This is the **deterministic-clock
///   rule**: any test that compares manifests bitwise must install a
///   fixed clock first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    Wall,
    Fixed(u64),
}

/// 0 = wall, 1 = fixed (step in `CLOCK_STEP`).
static CLOCK_KIND: AtomicU8 = AtomicU8::new(0);
static CLOCK_STEP: AtomicU64 = AtomicU64::new(0);

/// Install the clock used by all span timers.
pub fn set_clock(clock: ClockMode) {
    match clock {
        ClockMode::Wall => CLOCK_KIND.store(0, Ordering::Relaxed),
        ClockMode::Fixed(step) => {
            CLOCK_STEP.store(step, Ordering::Relaxed);
            CLOCK_KIND.store(1, Ordering::Relaxed);
        }
    }
}

/// The clock currently installed.
pub fn clock() -> ClockMode {
    if CLOCK_KIND.load(Ordering::Relaxed) == 0 {
        ClockMode::Wall
    } else {
        ClockMode::Fixed(CLOCK_STEP.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter. Declare as a `static` in [`counters`] and
/// register it in [`counters::all`] so manifests can see it.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` events. No-op (after one relaxed load) when telemetry is
    /// off. Call once per *logical* event, never inside a per-chunk
    /// worker closure — that is what keeps totals thread-invariant.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The counter taxonomy. Names are `layer.subsystem.event`; a counter
/// only appears in a manifest once its total is non-zero, so adding a
/// new counter here never breaks an existing golden trace (see
/// DESIGN.md §7).
pub mod counters {
    use super::Counter;

    // -- fare-reram -------------------------------------------------------
    /// SA0 (stuck-at-zero) fault cells injected into crossbars.
    pub static RERAM_FAULTS_INJECTED_SA0: Counter = Counter::new("reram.faults.injected_sa0");
    /// SA1 (stuck-at-one) fault cells injected into crossbars.
    pub static RERAM_FAULTS_INJECTED_SA1: Counter = Counter::new("reram.faults.injected_sa1");
    /// Crossbars whose fault map was cleared.
    pub static RERAM_FAULTS_CLEARED: Counter = Counter::new("reram.faults.cleared");
    /// Draws from the Poisson fault-count sampler.
    pub static RERAM_POISSON_SAMPLES: Counter = Counter::new("reram.faults.poisson_samples");
    /// Stored matrices corrupted through a crossbar fault map
    /// (`Crossbar::read_binary`).
    pub static RERAM_CROSSBARS_CORRUPTED: Counter = Counter::new("reram.crossbars.corrupted");
    /// Analog MVM invocations (`crossbar_mvm`).
    pub static RERAM_MVM_CALLS: Counter = Counter::new("reram.mvm.calls");
    /// Pipeline cycles attributed to those MVMs.
    pub static RERAM_MVM_CYCLES: Counter = Counter::new("reram.mvm.cycles");
    /// Whole-matrix faulty matmuls (`crossbar_matmul`).
    pub static RERAM_MATMUL_CALLS: Counter = Counter::new("reram.matmul.calls");
    /// Input rows pushed through `crossbar_matmul`.
    pub static RERAM_MATMUL_ROWS: Counter = Counter::new("reram.matmul.rows");
    /// Discrete-event pipeline simulations (`pipeline::simulate`).
    pub static RERAM_PIPELINE_SIMS: Counter = Counter::new("reram.pipeline.sims");
    /// Batches scheduled across all pipeline simulations.
    pub static RERAM_PIPELINE_BATCHES: Counter = Counter::new("reram.pipeline.batches");
    /// Closed-form timing-model evaluations (any strategy).
    pub static RERAM_TIMING_EVALS: Counter = Counter::new("reram.timing.evals");
    /// Energy-model estimates (`energy::estimate`).
    pub static RERAM_ENERGY_ESTIMATES: Counter = Counter::new("reram.energy.estimates");

    // -- fare-gnn ---------------------------------------------------------
    /// Full-model forward passes.
    pub static GNN_FORWARD_CALLS: Counter = Counter::new("gnn.forward.calls");
    /// Full-model backward passes.
    pub static GNN_BACKWARD_CALLS: Counter = Counter::new("gnn.backward.calls");
    /// Masked-accuracy evaluations.
    pub static GNN_ACCURACY_EVALS: Counter = Counter::new("gnn.metrics.accuracy_evals");

    // -- fare-core --------------------------------------------------------
    /// `Trainer::run` invocations.
    pub static CORE_TRAINER_RUNS: Counter = Counter::new("core.trainer.runs");
    /// Training epochs completed.
    pub static CORE_TRAINER_EPOCHS: Counter = Counter::new("core.trainer.epochs");
    /// Mini-batches trained.
    pub static CORE_TRAINER_BATCHES: Counter = Counter::new("core.trainer.batches");
    /// Post-deployment fault-injection events (per-epoch BIST rounds
    /// that actually added faults).
    pub static CORE_TRAINER_POST_INJECTIONS: Counter =
        Counter::new("core.trainer.post_deployment_injections");
    /// Full Algorithm-1 adjacency mappings built.
    pub static CORE_MAPPINGS_BUILT: Counter = Counter::new("core.mapping.built");
    /// Distinct (block-class, crossbar-class) G1 pairs actually solved.
    pub static CORE_MAPPING_PAIRS_SOLVED: Counter = Counter::new("core.mapping.pairs_solved");
    /// `RemapCache` probes that reused a cached row permutation.
    pub static CORE_REMAP_CACHE_HITS: Counter = Counter::new("core.remap_cache.hits");
    /// `RemapCache` probes that had to re-solve (crossbar mutated or
    /// placement moved) — i.e. crossbars remapped.
    pub static CORE_REMAP_CACHE_MISSES: Counter = Counter::new("core.remap_cache.misses");
    /// Strategy×density cells dispatched by the experiment drivers.
    pub static CORE_EXPERIMENT_CELLS: Counter = Counter::new("core.experiments.cells");

    /// Every counter, in manifest order. **Register new counters here**
    /// or they will silently stay out of every manifest.
    pub fn all() -> &'static [&'static Counter] {
        static ALL: [&Counter; 25] = [
            &RERAM_FAULTS_INJECTED_SA0,
            &RERAM_FAULTS_INJECTED_SA1,
            &RERAM_FAULTS_CLEARED,
            &RERAM_POISSON_SAMPLES,
            &RERAM_CROSSBARS_CORRUPTED,
            &RERAM_MVM_CALLS,
            &RERAM_MVM_CYCLES,
            &RERAM_MATMUL_CALLS,
            &RERAM_MATMUL_ROWS,
            &RERAM_PIPELINE_SIMS,
            &RERAM_PIPELINE_BATCHES,
            &RERAM_TIMING_EVALS,
            &RERAM_ENERGY_ESTIMATES,
            &GNN_FORWARD_CALLS,
            &GNN_BACKWARD_CALLS,
            &GNN_ACCURACY_EVALS,
            &CORE_TRAINER_RUNS,
            &CORE_TRAINER_EPOCHS,
            &CORE_TRAINER_BATCHES,
            &CORE_TRAINER_POST_INJECTIONS,
            &CORE_MAPPINGS_BUILT,
            &CORE_MAPPING_PAIRS_SOLVED,
            &CORE_REMAP_CACHE_HITS,
            &CORE_REMAP_CACHE_MISSES,
            &CORE_EXPERIMENT_CELLS,
        ];
        &ALL
    }
}

// ---------------------------------------------------------------------------
// Span timers
// ---------------------------------------------------------------------------

/// A named span timer: counts completed spans and accumulates their
/// duration under the installed [`ClockMode`]. Declare as a `static`
/// in [`timers`] and register it in [`timers::all`].
pub struct SpanTimer {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl SpanTimer {
    pub const fn new(name: &'static str) -> Self {
        SpanTimer {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Time `f` as one span. When telemetry is off this is just `f()`.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !enabled() {
            return f();
        }
        match clock() {
            ClockMode::Fixed(step) => {
                let out = f();
                self.count.fetch_add(1, Ordering::Relaxed);
                self.total_ns.fetch_add(step, Ordering::Relaxed);
                out
            }
            ClockMode::Wall => {
                let start = Instant::now();
                let out = f();
                let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.count.fetch_add(1, Ordering::Relaxed);
                self.total_ns.fetch_add(elapsed, Ordering::Relaxed);
                out
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// The span-timer registry; same registration rule as [`counters`].
pub mod timers {
    use super::SpanTimer;

    /// One whole `Trainer::run` (partition → map → epochs → evaluate).
    pub static CORE_TRAINER_RUN: SpanTimer = SpanTimer::new("core.trainer.run");
    /// One full Algorithm-1 adjacency mapping.
    pub static CORE_MAPPING_MAP: SpanTimer = SpanTimer::new("core.mapping.map_adjacency");
    /// One incremental post-BIST row-permutation refresh.
    pub static CORE_MAPPING_REFRESH: SpanTimer = SpanTimer::new("core.mapping.refresh");

    /// Every timer, in manifest order.
    pub fn all() -> &'static [&'static SpanTimer] {
        static ALL: [&SpanTimer; 3] = [&CORE_TRAINER_RUN, &CORE_MAPPING_MAP, &CORE_MAPPING_REFRESH];
        &ALL
    }
}

// ---------------------------------------------------------------------------
// Per-epoch metrics sink
// ---------------------------------------------------------------------------

/// One per-epoch training record, as pushed by the trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    pub epoch: usize,
    pub loss: f64,
    pub train_accuracy: f64,
    pub test_accuracy: f64,
}
fare_rt::json_struct!(EpochRecord {
    epoch,
    loss,
    train_accuracy,
    test_accuracy
});

static EPOCH_SINK: Mutex<Vec<EpochRecord>> = Mutex::new(Vec::new());

/// Record one epoch of training metrics. No-op when telemetry is off.
pub fn record_epoch(epoch: usize, loss: f64, train_accuracy: f64, test_accuracy: f64) {
    if !enabled() {
        return;
    }
    EPOCH_SINK.lock().unwrap().push(EpochRecord {
        epoch,
        loss,
        train_accuracy,
        test_accuracy,
    });
}

/// Epochs recorded since the last [`reset`] (sink left untouched).
pub fn epochs_recorded() -> Vec<EpochRecord> {
    EPOCH_SINK.lock().unwrap().clone()
}

// ---------------------------------------------------------------------------
// Reset
// ---------------------------------------------------------------------------

/// Zero every counter and timer, clear the epoch and heatmap sinks and
/// the trace buffer (rewinding the trace timeline to t=0). Call at the
/// start of a run whose manifest should describe that run alone.
pub fn reset() {
    for c in counters::all() {
        c.reset();
    }
    for t in timers::all() {
        t.reset();
    }
    EPOCH_SINK.lock().unwrap().clear();
    heatmap::reset();
    trace::reset();
}

// ---------------------------------------------------------------------------
// Run manifest
// ---------------------------------------------------------------------------

/// One counter total in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterEntry {
    pub name: String,
    pub value: u64,
}
fare_rt::json_struct!(CounterEntry { name, value });

/// One span-timer total in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerEntry {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
}
fare_rt::json_struct!(TimerEntry {
    name,
    count,
    total_ns
});

/// One named bench number (seconds, ratios, …) attached to a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    pub value: f64,
}
fare_rt::json_struct!(BenchEntry { name, value });

/// The primary correctness artifact of an instrumented run: seed,
/// config (compact JSON string), every non-zero counter, every
/// non-empty timer, the per-epoch metric curve, and optional bench
/// numbers. Serialised losslessly via `fare-rt` JSON, so two manifests
/// are bit-identical iff the runs behaved identically.
///
/// Thread count is deliberately **not** part of the manifest: the
/// determinism gate compares manifests across `FARE_RT_THREADS`
/// settings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    pub run: String,
    pub seed: u64,
    pub config: String,
    pub counters: Vec<CounterEntry>,
    pub timers: Vec<TimerEntry>,
    pub epochs: Vec<EpochRecord>,
    pub heatmaps: Vec<HeatmapGrid>,
    pub bench: Vec<BenchEntry>,
}
fare_rt::json_struct!(RunManifest {
    run,
    seed,
    config,
    counters,
    timers,
    epochs,
    heatmaps,
    bench
});

impl RunManifest {
    /// Snapshot the current telemetry state into a manifest.
    ///
    /// Only non-zero counters and non-empty timers are included — the
    /// rule that lets new counters be added without perturbing golden
    /// traces of runs that never hit them.
    pub fn capture(run: &str, seed: u64, config: &impl ToJson) -> RunManifest {
        let config = fare_rt::json::to_string(config).unwrap_or_else(|_| "null".into());
        RunManifest {
            run: run.to_string(),
            seed,
            config,
            counters: counters::all()
                .iter()
                .filter(|c| c.get() > 0)
                .map(|c| CounterEntry {
                    name: c.name().to_string(),
                    value: c.get(),
                })
                .collect(),
            timers: timers::all()
                .iter()
                .filter(|t| t.count() > 0)
                .map(|t| TimerEntry {
                    name: t.name().to_string(),
                    count: t.count(),
                    total_ns: t.total_ns(),
                })
                .collect(),
            epochs: epochs_recorded(),
            heatmaps: heatmap::recorded(),
            bench: Vec::new(),
        }
    }

    /// Attach a named bench number (chainable).
    pub fn with_bench(mut self, name: &str, value: f64) -> Self {
        self.bench.push(BenchEntry {
            name: name.to_string(),
            value,
        });
        self
    }

    /// Pretty JSON — the golden-trace snapshot format.
    pub fn to_json_pretty(&self) -> String {
        fare_rt::json::to_string_pretty(self).expect("RunManifest serialises infallibly")
    }

    /// Human-readable summary block for examples and CLI tools.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run manifest: {} (seed {})\n",
            self.run, self.seed
        ));
        if !self.epochs.is_empty() {
            let last = &self.epochs[self.epochs.len() - 1];
            out.push_str(&format!(
                "  epochs recorded: {} (final loss {:.4}, train acc {:.3}, test acc {:.3})\n",
                self.epochs.len(),
                last.loss,
                last.train_accuracy,
                last.test_accuracy
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for c in &self.counters {
                out.push_str(&format!("    {:<44} {:>14}\n", c.name, c.value));
            }
        }
        if !self.timers.is_empty() {
            out.push_str("  timers:\n");
            for t in &self.timers {
                out.push_str(&format!(
                    "    {:<44} {:>6} spans {:>12.3} ms\n",
                    t.name,
                    t.count,
                    t.total_ns as f64 / 1e6
                ));
            }
        }
        if !self.heatmaps.is_empty() {
            out.push_str("  heatmaps:\n");
            for h in &self.heatmaps {
                out.push_str(&format!(
                    "    {:<44} {:>4} cells  sa0 {:>8}  sa1 {:>8}  mismatch {:>10}\n",
                    h.name,
                    h.cells(),
                    h.sa0.iter().sum::<u64>(),
                    h.sa1.iter().sum::<u64>(),
                    h.mismatch.iter().sum::<u64>()
                ));
            }
        }
        if !self.bench.is_empty() {
            out.push_str("  bench:\n");
            for b in &self.bench {
                out.push_str(&format!("    {:<44} {:>14.6}\n", b.name, b.value));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Counters/timers/sink are process-global; serialise the tests
    /// that mutate them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_are_inert_when_disabled() {
        let _g = lock();
        set_mode(Mode::Off);
        reset();
        counters::RERAM_MVM_CALLS.add(5);
        assert_eq!(counters::RERAM_MVM_CALLS.get(), 0);
        set_mode(Mode::Json);
        counters::RERAM_MVM_CALLS.add(5);
        assert_eq!(counters::RERAM_MVM_CALLS.get(), 5);
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn fixed_clock_makes_timers_deterministic() {
        let _g = lock();
        set_mode(Mode::Json);
        set_clock(ClockMode::Fixed(250));
        reset();
        for _ in 0..4 {
            timers::CORE_TRAINER_RUN.time(|| std::hint::black_box(1 + 1));
        }
        assert_eq!(timers::CORE_TRAINER_RUN.count(), 4);
        assert_eq!(timers::CORE_TRAINER_RUN.total_ns(), 1000);
        set_clock(ClockMode::Wall);
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn manifest_includes_only_nonzero_counters_and_round_trips() {
        let _g = lock();
        set_mode(Mode::Json);
        reset();
        counters::CORE_REMAP_CACHE_HITS.add(3);
        record_epoch(0, 1.5, 0.4, 0.35);
        let m = RunManifest::capture("unit", 9, &7u32).with_bench("secs", 0.25);
        assert_eq!(m.counters.len(), 1);
        assert_eq!(m.counters[0].name, "core.remap_cache.hits");
        assert_eq!(m.epochs.len(), 1);
        let text = m.to_json_pretty();
        let back: RunManifest = fare_rt::json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json_pretty(), text);
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn counter_names_are_unique_and_registered() {
        let mut seen = std::collections::HashSet::new();
        for c in counters::all() {
            assert!(seen.insert(c.name()), "duplicate counter {}", c.name());
        }
        let mut seen = std::collections::HashSet::new();
        for t in timers::all() {
            assert!(seen.insert(t.name()), "duplicate timer {}", t.name());
        }
    }
}
