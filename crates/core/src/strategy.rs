
/// The fault-mitigation scheme a training run uses — FARe or one of the
/// paper's baselines (Section V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStrategy {
    /// No mitigation: naive sequential mapping, raw weight reads.
    FaultUnaware,
    /// Neuron reordering (Xia et al.): permutes rows in both phases to
    /// overlap faults, recomputed after every batch on the updated
    /// weights — accurate-ish but stalls the pipeline.
    NeuronReordering,
    /// Weight clipping alone (Joardar et al.): bounds combination-phase
    /// explosions, leaves the adjacency unprotected.
    ClippingOnly,
    /// FARe: fault-aware adjacency mapping + weight clipping.
    FaRe,
}

fare_rt::json_enum!(FaultStrategy { FaultUnaware, NeuronReordering, ClippingOnly, FaRe });

impl FaultStrategy {
    /// All strategies in the paper's comparison order.
    pub fn all() -> [FaultStrategy; 4] {
        [
            FaultStrategy::FaultUnaware,
            FaultStrategy::NeuronReordering,
            FaultStrategy::ClippingOnly,
            FaultStrategy::FaRe,
        ]
    }

    /// Does this strategy clip weight reads?
    pub fn clips_weights(&self) -> bool {
        matches!(self, FaultStrategy::ClippingOnly | FaultStrategy::FaRe)
    }

    /// Does this strategy run the fault-aware adjacency mapping
    /// (Algorithm 1)?
    pub fn maps_adjacency(&self) -> bool {
        matches!(self, FaultStrategy::FaRe)
    }

    /// Does this strategy recompute permutations after every batch
    /// (paying pipeline stalls)?
    pub fn reorders_per_batch(&self) -> bool {
        matches!(self, FaultStrategy::NeuronReordering)
    }
}

impl std::fmt::Display for FaultStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultStrategy::FaultUnaware => write!(f, "fault-unaware"),
            FaultStrategy::NeuronReordering => write!(f, "NR"),
            FaultStrategy::ClippingOnly => write!(f, "clipping"),
            FaultStrategy::FaRe => write!(f, "FARe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        use FaultStrategy::*;
        assert!(!FaultUnaware.clips_weights());
        assert!(!FaultUnaware.maps_adjacency());
        assert!(!FaultUnaware.reorders_per_batch());

        assert!(!NeuronReordering.clips_weights());
        assert!(NeuronReordering.reorders_per_batch());

        assert!(ClippingOnly.clips_weights());
        assert!(!ClippingOnly.maps_adjacency());

        assert!(FaRe.clips_weights());
        assert!(FaRe.maps_adjacency());
        assert!(!FaRe.reorders_per_batch());
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultStrategy::FaRe.to_string(), "FARe");
        assert_eq!(FaultStrategy::NeuronReordering.to_string(), "NR");
        assert_eq!(FaultStrategy::all().len(), 4);
    }
}
