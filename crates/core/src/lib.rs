//! The FARe framework: fault-aware GNN training on ReRAM-based PIM
//! accelerators (DATE 2024).
//!
//! FARe combines two synergistic defences:
//!
//! 1. **Fault-aware adjacency mapping** ([`mapping`], the paper's
//!    Algorithm 1) — the batch adjacency matrix is block-decomposed and
//!    each block is assigned to a crossbar *and row-permuted within it*
//!    so stored ones land on stuck-at-1 cells and stored zeros on
//!    stuck-at-0 cells, minimising corruption of the aggregation phase.
//! 2. **Weight clipping** ([`clipping`]) — a hardware comparator bounds
//!    every weight read, preventing the "weight explosion" a stuck-at-1
//!    cell near the MSB would otherwise cause in the combination phase.
//!
//! The crate also implements the paper's baselines — fault-unaware
//! training, neuron reordering (NR) and clipping-only — behind one
//! [`FaultStrategy`] switch, plus [`Trainer`], the full mini-batch
//! pipelined training loop, and [`experiments`], runners that regenerate
//! every figure of the evaluation section.
//!
//! # Example
//!
//! ```
//! use fare_core::{FaultStrategy, TrainConfig, Trainer};
//! use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
//! use fare_reram::FaultSpec;
//!
//! let dataset = Dataset::generate(DatasetKind::Ppi, 7);
//! let config = TrainConfig {
//!     model: ModelKind::Gcn,
//!     epochs: 2,
//!     fault_spec: FaultSpec::density(0.03),
//!     strategy: FaultStrategy::FaRe,
//!     ..TrainConfig::default()
//! };
//! let outcome = Trainer::new(config, 7).run(&dataset);
//! assert_eq!(outcome.history.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod clipping;
pub mod clustering;
pub mod experiments;
mod faulty;
pub mod link_prediction;
pub mod mapping;
pub mod related;
mod strategy;
mod trainer;

pub use faulty::{
    corrupt_adjacency_mapped, corrupt_adjacency_unaware, FaultyWeightReader,
};
pub use mapping::{
    map_adjacency, map_adjacency_cached, refresh_row_permutations,
    refresh_row_permutations_cached, BlockPlacement, Mapping, MappingConfig, RemapCache,
};
pub use strategy::FaultStrategy;
pub use trainer::{run_fault_free, EpochStats, TrainConfig, TrainOutcome, Trainer};
