//! Link prediction on faulty ReRAM hardware.
//!
//! The paper's Ogbl-citation2 workload is, in its original form, a link
//! prediction benchmark, and link prediction is one of the three edge
//! applications the introduction motivates. This runner trains a GNN
//! *encoder* through the same faulty aggregation/combination pipeline as
//! the node-classification [`crate::Trainer`], decodes edges with a dot
//! product ([`fare_gnn::link`]), and reports held-out AUC — so FARe's
//! protection can be evaluated on a second task family.
//!
//! Two calibration notes:
//!
//! - *Attainable AUC*: the synthetic datasets are stochastic block
//!   models, where an intra-community non-edge is statistically
//!   indistinguishable from a held-out edge. With uniformly sampled
//!   negatives the Bayes-optimal AUC is therefore well below 1
//!   (≈ 0.7–0.85 depending on community count and hub overlay); scores
//!   in that band mean the encoder fully learned the communities.
//! - *Clip threshold*: θ is task-dependent (the paper fixes it per
//!   run). Classification keeps weights inside [−1, 1] naturally, but
//!   the dot-product BCE objective legitimately grows weights larger, so
//!   link tasks should use a wider window (θ ≈ 4, or
//!   [`crate::clipping::threshold_for`]) — with θ = 1 the comparator
//!   clips *healthy* weights and FARe loses its edge.

use fare_gnn::link::{auc, bce_loss_and_grad, pair_scores};
use fare_gnn::{Adam, Gnn, GnnDims};
use fare_graph::batch::make_batches;
use fare_graph::datasets::Dataset;
use fare_graph::partition::partition;
use fare_graph::CsrGraph;
use fare_reram::CrossbarArray;
use fare_tensor::Matrix;
use fare_rt::rand::Rng;

use crate::faulty::FaultyWeightReader;
use crate::mapping::{
    map_adjacency, reordered_sequential_mapping, sequential_mapping, MappingConfig,
};
use crate::trainer::hardware_view;
use crate::{FaultStrategy, TrainConfig};

/// Per-epoch link-prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean BCE loss over batches.
    pub loss: f64,
    /// Held-out AUC on the faulty hardware.
    pub auc: f64,
}

fare_rt::json_struct!(LinkEpochStats { epoch, loss, auc });

/// Outcome of a link-prediction run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkOutcome {
    /// Per-epoch statistics.
    pub history: Vec<LinkEpochStats>,
    /// Final held-out AUC.
    pub final_auc: f64,
    /// Number of held-out test edges actually evaluated.
    pub test_edges: usize,
    /// Final node embeddings over the whole graph (rows indexed by
    /// global node id; nodes in batches the runner skipped stay zero).
    pub embeddings: Matrix,
}

fare_rt::json_struct!(LinkOutcome { history, final_auc, test_edges, embeddings });

struct LinkBatch {
    nodes: Vec<usize>,
    adj: Matrix,
    /// Corrupted training adjacency with cached normalisations. This
    /// runner never injects post-deployment faults or remaps, so the
    /// view built at batch assembly stays exact for the whole run.
    view: fare_graph::GraphView,
    features: Matrix,
    train_pos: Vec<(usize, usize)>,
    test_pos: Vec<(usize, usize)>,
}

fn sample_negatives(
    n: usize,
    graph: &CsrGraph,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(count);
    let mut guard = 0;
    while out.len() < count && guard < 50 * count.max(1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !graph.has_edge(u, v) {
            out.push((u, v));
        }
    }
    out
}

/// Trains a link predictor under `config` (model, epochs, faults,
/// strategy all honoured; `hidden_dim` doubles as the embedding
/// dimension) and returns held-out AUC.
///
/// 10 % of each batch subgraph's edges are held out of the training
/// adjacency and used, against an equal number of sampled non-edges, for
/// evaluation.
///
/// # Panics
///
/// Panics on the same configuration errors as [`crate::Trainer::new`].
pub fn run_link_prediction(config: &TrainConfig, seed: u64, dataset: &Dataset) -> LinkOutcome {
    assert!(config.epochs > 0, "epochs must be positive");
    assert_eq!(config.crossbar_size % 8, 0, "crossbar size must be a multiple of 8");
    let cfg = config;
    let mut rng = fare_rt::domain_rng(seed, "link-prediction");
    let n_xbar = cfg.crossbar_size;
    let map_cfg = MappingConfig {
        matcher: cfg.matcher,
        prune: true,
        ..MappingConfig::default()
    };

    let parts = partition(&dataset.graph, dataset.spec.partitions, &mut rng);
    let batches = make_batches(
        &dataset.graph,
        &parts,
        dataset.spec.clusters_per_batch,
        &mut rng,
    );

    // Embedding model: output layer emits `hidden_dim`-dimensional node
    // embeddings.
    let dims = GnnDims {
        input: dataset.spec.feature_dim,
        hidden: cfg.hidden_dim,
        output: cfg.hidden_dim,
    };
    let mut model = Gnn::with_depth(cfg.model, dims, cfg.depth, &mut rng);
    let mut reader = FaultyWeightReader::for_model(&model, n_xbar);
    if cfg.weight_faults {
        reader.inject(&cfg.fault_spec, &mut rng);
    }
    if cfg.strategy.clips_weights() {
        reader.set_clip(Some(cfg.clip_threshold));
    }
    let mut opt = Adam::new(cfg.learning_rate, &model);

    let mut states: Vec<LinkBatch> = batches
        .into_iter()
        .filter(|b| b.graph.num_edges() >= 5)
        .map(|batch| {
            // Hold out ~10% of the batch's edges for evaluation.
            let mut edges: Vec<(usize, usize)> = batch.graph.edges().collect();
            // Deterministic shuffle.
            for i in (1..edges.len()).rev() {
                edges.swap(i, rng.gen_range(0..=i));
            }
            let holdout = (edges.len() / 10).max(1);
            let test_pos: Vec<(usize, usize)> = edges[..holdout].to_vec();
            let train_pos: Vec<(usize, usize)> = edges[holdout..].to_vec();
            let train_graph = CsrGraph::from_edges(batch.num_nodes(), &train_pos);
            let adj = train_graph.to_dense();

            let blocks = adj.rows().div_ceil(n_xbar).pow(2);
            let pool = ((blocks as f64 * cfg.crossbar_slack).ceil() as usize).max(blocks);
            let mut array = CrossbarArray::new(pool, n_xbar);
            if cfg.adjacency_faults {
                array.inject(&cfg.fault_spec, &mut rng);
            }
            let mapping = match cfg.strategy {
                FaultStrategy::FaRe => map_adjacency(&adj, &array, &map_cfg),
                FaultStrategy::NeuronReordering => {
                    reordered_sequential_mapping(&adj, &array, cfg.matcher)
                }
                _ => sequential_mapping(&adj, &array),
            };
            let features = batch.gather_features(&dataset.features);
            // The array and mapping are consumed here: this runner never
            // injects post-deployment faults or remaps, so only the
            // corrupted view they produce is needed afterwards.
            let view = hardware_view(cfg.adjacency_faults, &adj, &array, &mapping);
            LinkBatch {
                nodes: batch.nodes.clone(),
                adj,
                view,
                features,
                train_pos,
                test_pos,
            }
        })
        .collect();
    assert!(!states.is_empty(), "no batch has enough edges for link prediction");

    if cfg.strategy.reorders_per_batch() {
        reader.optimize_placements(&model, cfg.matcher);
    }

    let evaluate = |model: &Gnn, reader: &FaultyWeightReader, states: &[LinkBatch], seed: u64| -> (f64, usize) {
        let mut eval_rng = fare_rt::domain_rng(seed, "link-eval");
        let mut pos_scores = Vec::new();
        let mut neg_scores = Vec::new();
        for state in states {
            let (emb, _) = model.forward(&state.view, &state.features, reader);
            pos_scores.extend(pair_scores(&emb, &state.test_pos));
            let graph = CsrGraph::from_edges(
                state.adj.rows(),
                &state.train_pos,
            );
            let negs = sample_negatives(state.adj.rows(), &graph, state.test_pos.len(), &mut eval_rng);
            neg_scores.extend(pair_scores(&emb, &negs));
        }
        (auc(&pos_scores, &neg_scores), pos_scores.len())
    };

    let mut history = Vec::with_capacity(cfg.epochs);
    let mut test_edges = 0;
    for epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0;
        let num_states = states.len();
        for state in &mut states {
            let (emb, cache) = model.forward(&state.view, &state.features, &reader);
            let graph = CsrGraph::from_edges(state.adj.rows(), &state.train_pos);
            let negs = sample_negatives(state.adj.rows(), &graph, state.train_pos.len(), &mut rng);
            if state.train_pos.is_empty() && negs.is_empty() {
                continue;
            }
            let (loss, grad) = bce_loss_and_grad(&emb, &state.train_pos, &negs);
            epoch_loss += loss;
            let grads = model.backward(&state.view, &cache, &grad);
            model.apply_gradients(&grads, &mut opt);
            if cfg.strategy.clips_weights() {
                model.clip_weights(cfg.clip_threshold);
            }
        }
        let (epoch_auc, edges) = evaluate(&model, &reader, &states, seed + epoch as u64);
        test_edges = edges;
        history.push(LinkEpochStats {
            epoch,
            loss: epoch_loss / num_states.max(1) as f64,
            auc: epoch_auc,
        });
    }
    let final_auc = history.last().map(|h| h.auc).unwrap_or(0.5);

    // Assemble the global embedding matrix from a final faulty-hardware
    // forward pass over every batch (for downstream clustering).
    let mut embeddings = Matrix::zeros(dataset.graph.num_nodes(), cfg.hidden_dim);
    for state in &states {
        let (emb, _) = model.forward(&state.view, &state.features, &reader);
        for (local, &global) in state.nodes.iter().enumerate() {
            embeddings.row_mut(global).copy_from_slice(emb.row(local));
        }
    }

    LinkOutcome {
        history,
        final_auc,
        test_edges,
        embeddings,
    }
}

#[cfg(test)]
mod tests {
    use fare_graph::datasets::{DatasetKind, ModelKind};
    use fare_reram::FaultSpec;

    use super::*;

    fn config(strategy: FaultStrategy, density: f64, epochs: usize) -> TrainConfig {
        TrainConfig {
            model: ModelKind::Sage,
            epochs,
            // Wider clip window: the BCE link objective grows weights
            // past the classification default (see module docs).
            clip_threshold: 4.0,
            fault_spec: FaultSpec::with_ratio(density, 1.0, 1.0),
            strategy,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn link_prediction_learns_on_clean_hardware() {
        let ds = Dataset::generate(DatasetKind::Ogbl, 5);
        let out = run_link_prediction(&config(FaultStrategy::FaRe, 0.0, 15), 5, &ds);
        assert_eq!(out.history.len(), 15);
        assert!(out.test_edges > 10);
        // SBM negatives cap attainable AUC (see module docs); 0.58 is
        // well clear of the 0.5 chance baseline.
        assert!(
            out.final_auc > 0.58,
            "clean-hardware AUC too low: {}",
            out.final_auc
        );
        // Training actually improved ranking quality.
        assert!(out.final_auc > out.history[0].auc - 0.02);
    }

    #[test]
    fn fare_does_not_trail_unaware_under_faults() {
        let ds = Dataset::generate(DatasetKind::Ogbl, 6);
        // 3-seed median to tame variance (3% density, 1:1 ratio); per
        // seed, FARe-vs-unaware swings from -0.06 to +0.06, but the
        // median is stable (see EXPERIMENTS.md, "Tolerance bands").
        let median = |strategy: FaultStrategy| -> f64 {
            let mut aucs: Vec<f64> = (0..3)
                .map(|t| {
                    run_link_prediction(&config(strategy, 0.03, 12), 6 + 100 * t, &ds).final_auc
                })
                .collect();
            aucs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            aucs[1]
        };
        let fare = median(FaultStrategy::FaRe);
        let unaware = median(FaultStrategy::FaultUnaware);
        // Tightened from -0.03 (PR 1, 2-seed mean): observed medians
        // are FARe 0.570 vs unaware 0.555.
        assert!(
            fare > unaware - 0.01,
            "FARe AUC {fare:.3} should not trail unaware {unaware:.3}"
        );
        // Clear of the 0.5 chance line despite the faults. The median
        // FARe AUC sits at ~0.57 at this scale, so the bar moves up to
        // 0.54 (was 0.52) — separation from chance with real margin.
        assert!(fare > 0.54, "FARe AUC under faults too low: {fare:.3}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = Dataset::generate(DatasetKind::Ppi, 7);
        let a = run_link_prediction(&config(FaultStrategy::FaRe, 0.03, 3), 7, &ds);
        let b = run_link_prediction(&config(FaultStrategy::FaRe, 0.03, 3), 7, &ds);
        assert_eq!(a.history, b.history);
    }
}
