//! The full FARe training pipeline: partition → mini-batch → map →
//! train on faulty crossbars → clip → (per-epoch BIST + refresh).

use fare_gnn::{Adam, Gnn, GnnDims, IdealReader};
use fare_graph::batch::make_batches;
use fare_graph::datasets::{Dataset, ModelKind};
use fare_graph::partition::partition;
use fare_graph::GraphView;
use fare_matching::Matcher;
use fare_reram::timing::{PipelineSpec, TimingModel};
use fare_reram::{CrossbarArray, FaultSpec};
use fare_tensor::{ops, Matrix};

use crate::faulty::{corrupt_adjacency_mapped, FaultyWeightReader};
use crate::mapping::{
    map_adjacency_cached, refresh_row_permutations_cached, reordered_sequential_mapping,
    sequential_mapping, Mapping, MappingConfig, RemapCache,
};
use crate::FaultStrategy;

/// Configuration of one training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// GNN architecture.
    pub model: ModelKind,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Number of GNN layers (>= 2). Deeper models add pipeline stages.
    pub depth: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (Table II: 0.01).
    pub learning_rate: f32,
    /// Decoupled (AdamW-style) weight decay; 0 disables it.
    pub weight_decay: f32,
    /// Global gradient-norm clip; 0 disables it. Stabilises training
    /// against outlier gradients from fault-corrupted forward passes.
    pub grad_clip_norm: f32,
    /// Weight clip threshold θ.
    pub clip_threshold: f32,
    /// Pre-deployment fault statistics.
    pub fault_spec: FaultSpec,
    /// Log-normal σ of programming variation on stored weights
    /// (extension; 0 disables it).
    pub weight_variation_sigma: f64,
    /// Per-epoch retention-drift σ compounded onto the variation field
    /// (extension; 0 disables it; requires or implies a variation
    /// field).
    pub weight_drift_sigma: f64,
    /// Extra fault density added *in total* over the run as
    /// post-deployment faults, injected in equal per-epoch increments
    /// (paper Fig. 6 uses 0.01).
    pub post_deployment_density: f64,
    /// Mitigation scheme.
    pub strategy: FaultStrategy,
    /// Crossbar dimension (must be a multiple of 8 for the weight path).
    pub crossbar_size: usize,
    /// Crossbar over-provisioning for the adjacency pool: the algorithm
    /// gets `ceil(blocks × slack)` crossbars to choose from.
    pub crossbar_slack: f64,
    /// Assignment solver for all matchings.
    pub matcher: Matcher,
    /// Inject faults into the weight fabrics (combination phase)?
    pub weight_faults: bool,
    /// Inject faults into the adjacency crossbars (aggregation phase)?
    pub adjacency_faults: bool,
    /// For FARe: refresh row permutations after each post-deployment BIST
    /// scan (the paper's maintenance step). Disable for ablation only.
    pub post_refresh: bool,
}

fare_rt::json_struct!(TrainConfig { model, hidden_dim, depth, epochs, learning_rate, weight_decay, grad_clip_norm, clip_threshold, fault_spec, weight_variation_sigma, weight_drift_sigma, post_deployment_density, strategy, crossbar_size, crossbar_slack, matcher, weight_faults, adjacency_faults, post_refresh });

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Gcn,
            hidden_dim: 16,
            depth: 2,
            epochs: 20,
            learning_rate: 0.01,
            weight_decay: 0.0,
            grad_clip_norm: 0.0,
            clip_threshold: crate::clipping::DEFAULT_THRESHOLD,
            fault_spec: FaultSpec::fault_free(),
            weight_variation_sigma: 0.0,
            weight_drift_sigma: 0.0,
            post_deployment_density: 0.0,
            strategy: FaultStrategy::FaRe,
            crossbar_size: 16,
            crossbar_slack: 1.5,
            matcher: Matcher::BSuitor,
            weight_faults: true,
            adjacency_faults: true,
            post_refresh: true,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub loss: f64,
    /// Training-split accuracy evaluated on the faulty hardware.
    pub train_accuracy: f64,
    /// Test-split accuracy evaluated on the faulty hardware.
    pub test_accuracy: f64,
}

fare_rt::json_struct!(EpochStats { epoch, loss, train_accuracy, test_accuracy });

/// Result of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Final-epoch training accuracy.
    pub final_train_accuracy: f64,
    /// Final-epoch test accuracy.
    pub final_test_accuracy: f64,
    /// Best test accuracy over all epochs (for early-stopping analyses).
    pub best_test_accuracy: f64,
    /// Execution time normalised to fault-free pipelined training
    /// (Fig. 7's metric) for this strategy.
    pub normalized_time: f64,
    /// Total adjacency mismatch cost under the final mappings.
    pub final_mapping_cost: usize,
    /// Number of mini-batches per epoch.
    pub num_batches: usize,
}

fare_rt::json_struct!(TrainOutcome { history, final_train_accuracy, final_test_accuracy, best_test_accuracy, normalized_time, final_mapping_cost, num_batches });

/// Cross-entropy restricted to masked rows: returns the mean loss over
/// selected rows and a gradient that is zero elsewhere.
fn masked_cross_entropy(logits: &Matrix, labels: &[usize], mask: &[bool]) -> (f64, Matrix) {
    assert_eq!(labels.len(), logits.rows());
    assert_eq!(mask.len(), logits.rows());
    let selected: Vec<usize> = (0..mask.len()).filter(|&i| mask[i]).collect();
    if selected.is_empty() {
        return (0.0, Matrix::zeros(logits.rows(), logits.cols()));
    }
    let probs = ops::softmax_rows(logits);
    let n = selected.len() as f32;
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for &i in &selected {
        let label = labels[i];
        loss -= (probs[(i, label)].max(1e-12) as f64).ln();
        for c in 0..logits.cols() {
            grad[(i, c)] = (probs[(i, c)] - if c == label { 1.0 } else { 0.0 }) / n;
        }
    }
    (loss / selected.len() as f64, grad)
}

/// Per-batch hardware state.
struct BatchState {
    adj: Matrix,
    /// The adjacency as the hardware currently aggregates it, with its
    /// normalisations cached. Rebuilt only when the corruption changes
    /// (initial mapping, post-deployment injection, permutation refresh)
    /// — `corrupt_adjacency_mapped` is a pure function of
    /// `(adj, array, mapping)`, so between those events the view is
    /// exact.
    view: GraphView,
    features: Matrix,
    labels: Vec<usize>,
    train_mask: Vec<bool>,
    array: CrossbarArray,
    mapping: Mapping,
    /// Memoised `G₁` solutions keyed by block position; lets the
    /// post-BIST refresh re-solve only the crossbars whose fault state
    /// actually changed.
    remap: RemapCache,
}

/// The adjacency the model actually sees, wrapped in a [`GraphView`] so
/// each normalisation is computed once per corruption event instead of
/// once per forward pass.
pub(crate) fn hardware_view(
    adjacency_faults: bool,
    adj: &Matrix,
    array: &CrossbarArray,
    mapping: &Mapping,
) -> GraphView {
    if adjacency_faults {
        GraphView::from_dense(corrupt_adjacency_mapped(adj, array, mapping))
    } else {
        GraphView::from_dense(adj.clone())
    }
}

/// Drives a full training run of one configuration on one dataset.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    seed: u64,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero epochs, crossbar
    /// size not a multiple of 8, non-positive slack).
    pub fn new(config: TrainConfig, seed: u64) -> Self {
        assert!(config.epochs > 0, "epochs must be positive");
        assert!(config.depth >= 2, "depth must be at least 2");
        assert_eq!(config.crossbar_size % 8, 0, "crossbar size must be a multiple of 8");
        assert!(config.crossbar_slack >= 1.0, "crossbar slack must be >= 1.0");
        Self { config, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs training and returns the outcome.
    ///
    /// Deterministic for a given `(config, seed, dataset)`.
    pub fn run(&self, dataset: &Dataset) -> TrainOutcome {
        fare_obs::timers::CORE_TRAINER_RUN.time(|| self.run_inner(dataset))
    }

    fn run_inner(&self, dataset: &Dataset) -> TrainOutcome {
        fare_obs::counters::CORE_TRAINER_RUNS.incr();
        let _run_span = fare_obs::trace::span("core.trainer.run");
        let cfg = &self.config;
        let mut rng = fare_rt::domain_rng(self.seed, "trainer");
        let n = cfg.crossbar_size;
        let map_cfg = MappingConfig {
            matcher: cfg.matcher,
            prune: true,
            ..MappingConfig::default()
        };

        // 1. Partition + mini-batches (host-side preprocessing).
        let parts = partition(&dataset.graph, dataset.spec.partitions, &mut rng);
        let batches = make_batches(
            &dataset.graph,
            &parts,
            dataset.spec.clusters_per_batch,
            &mut rng,
        );
        let num_batches = batches.len();

        // 2. Model + weight fabrics.
        let dims = GnnDims {
            input: dataset.spec.feature_dim,
            hidden: cfg.hidden_dim,
            output: dataset.num_classes,
        };
        let mut model = Gnn::with_depth(cfg.model, dims, cfg.depth, &mut rng);
        let mut reader = FaultyWeightReader::for_model(&model, n);
        if cfg.weight_faults {
            reader.inject(&cfg.fault_spec, &mut rng);
        }
        if cfg.weight_variation_sigma > 0.0 || cfg.weight_drift_sigma > 0.0 {
            reader.inject_variation(
                &fare_reram::variation::VariationSpec::new(cfg.weight_variation_sigma),
                &mut rng,
            );
        }
        if cfg.strategy.clips_weights() {
            reader.set_clip(Some(cfg.clip_threshold));
        }
        let mut opt = Adam::new(cfg.learning_rate, &model).with_weight_decay(cfg.weight_decay);

        // 3. Adjacency crossbar pools + initial (pre-deployment) mapping.
        let mut states: Vec<BatchState> = batches
            .into_iter()
            .map(|batch| {
                let adj = batch.dense_adjacency();
                let blocks = adj.rows().div_ceil(n).pow(2);
                let pool = ((blocks as f64 * cfg.crossbar_slack).ceil() as usize).max(blocks);
                let mut array = CrossbarArray::new(pool, n);
                if cfg.adjacency_faults {
                    array.inject(&cfg.fault_spec, &mut rng);
                }
                let mut remap = RemapCache::new();
                let mapping = match cfg.strategy {
                    FaultStrategy::FaRe => map_adjacency_cached(&adj, &array, &map_cfg, &mut remap),
                    FaultStrategy::NeuronReordering => {
                        reordered_sequential_mapping(&adj, &array, cfg.matcher)
                    }
                    _ => sequential_mapping(&adj, &array),
                };
                let features = batch.gather_features(&dataset.features);
                let labels = batch.gather_labels(&dataset.labels);
                let train_mask: Vec<bool> =
                    batch.nodes.iter().map(|&u| dataset.train_mask[u]).collect();
                let view = hardware_view(cfg.adjacency_faults, &adj, &array, &mapping);
                BatchState {
                    adj,
                    view,
                    features,
                    labels,
                    train_mask,
                    array,
                    mapping,
                    remap,
                }
            })
            .collect();

        // NR's weight-row reordering. The hardware recomputes the
        // permutation after every batch and stalls the pipeline for it —
        // the timing model charges exactly that. In simulation we compute
        // the placement once here and refresh it after every
        // post-deployment BIST event: the recomputation chases the same
        // static faults each time, so it is idempotent until the fault
        // map changes, and refreshing it every simulated batch would only
        // inject corruption churn the real mechanism does not have.
        if cfg.strategy.reorders_per_batch() {
            reader.optimize_placements(&model, cfg.matcher);
        }

        // 4. Training epochs.
        let per_epoch_extra = if cfg.post_deployment_density > 0.0 {
            cfg.post_deployment_density / cfg.epochs as f64
        } else {
            0.0
        };
        let mut history = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let _epoch_span = fare_obs::trace::span_arg("core.trainer.epoch", epoch as u64);
            let mut epoch_loss = 0.0f64;
            for (bi, state) in states.iter_mut().enumerate() {
                fare_obs::counters::CORE_TRAINER_BATCHES.incr();
                let _batch_span = fare_obs::trace::span_arg("core.trainer.batch", bi as u64);
                let (logits, cache) = model.forward(&state.view, &state.features, &reader);
                let (loss, grad) =
                    masked_cross_entropy(&logits, &state.labels, &state.train_mask);
                epoch_loss += loss;
                let mut grads = model.backward(&state.view, &cache, &grad);
                if cfg.grad_clip_norm > 0.0 {
                    grads.clip_norm(cfg.grad_clip_norm);
                }
                model.apply_gradients(&grads, &mut opt);
                if cfg.strategy.clips_weights() {
                    model.clip_weights(cfg.clip_threshold);
                }
            }

            // Retention drift compounds every epoch.
            if cfg.weight_drift_sigma > 0.0 && epoch + 1 < cfg.epochs {
                reader.apply_drift(cfg.weight_drift_sigma, &mut rng);
            }

            // Post-deployment faults appear; BIST reveals them; FARe
            // refreshes its row permutations on the existing assignment Π.
            if per_epoch_extra > 0.0 && epoch + 1 < cfg.epochs {
                fare_obs::counters::CORE_TRAINER_POST_INJECTIONS.incr();
                let extra = FaultSpec::with_sa1_fraction(
                    per_epoch_extra,
                    cfg.fault_spec.sa1_fraction,
                );
                if cfg.adjacency_faults {
                    for state in &mut states {
                        state.array.inject(&extra, &mut rng);
                    }
                }
                if cfg.weight_faults {
                    reader.inject(&extra, &mut rng);
                }
                if cfg.strategy.maps_adjacency() && cfg.adjacency_faults && cfg.post_refresh {
                    for state in &mut states {
                        state.mapping = refresh_row_permutations_cached(
                            &state.adj,
                            &state.array,
                            &state.mapping,
                            cfg.matcher,
                            &mut state.remap,
                        );
                    }
                }
                // NR reacts to the BIST-detected new faults too.
                if cfg.strategy.reorders_per_batch() {
                    if cfg.adjacency_faults {
                        for state in &mut states {
                            state.mapping = reordered_sequential_mapping(
                                &state.adj,
                                &state.array,
                                cfg.matcher,
                            );
                        }
                    }
                    reader.optimize_placements(&model, cfg.matcher);
                }
                // The corruption changed (new faults and possibly new
                // permutations) — rebuild the cached views.
                if cfg.adjacency_faults {
                    for state in &mut states {
                        state.view =
                            hardware_view(true, &state.adj, &state.array, &state.mapping);
                    }
                }
            }

            // Epoch-end evaluation on the faulty hardware.
            let (train_acc, test_acc) = self.evaluate(&model, &reader, &states);
            let loss = epoch_loss / num_batches.max(1) as f64;
            fare_obs::counters::CORE_TRAINER_EPOCHS.incr();
            fare_obs::record_epoch(epoch, loss, train_acc, test_acc);
            history.push(EpochStats {
                epoch,
                loss,
                train_accuracy: train_acc,
                test_accuracy: test_acc,
            });
        }

        // 5. Timing (Fig. 7 model): stages = aggregation+combination per
        // layer + softmax/update stage.
        let stages = 2 * model.num_layers() + 1;
        let timing = TimingModel::new(PipelineSpec::new(
            num_batches.max(1),
            stages,
            1e-3,
            cfg.epochs,
        ));
        let times = timing.normalized();
        let normalized_time = match cfg.strategy {
            FaultStrategy::FaultUnaware => times.fault_free,
            FaultStrategy::ClippingOnly => times.clipping,
            FaultStrategy::NeuronReordering => times.neuron_reordering,
            FaultStrategy::FaRe => times.fare,
        };

        // 6. Spatial telemetry rollup: one per-crossbar heatmap over the
        // concatenated adjacency pools of every batch (pure observation —
        // reads fault maps and placements, touches no training state).
        if fare_obs::enabled() {
            fare_obs::heatmap::record(crossbar_heatmap(
                &states,
                cfg.epochs,
                model.num_layers(),
                num_batches.max(1),
                stages,
            ));
        }

        let last = history.last().copied().expect("at least one epoch");
        let best_test_accuracy = history
            .iter()
            .map(|e| e.test_accuracy)
            .fold(0.0f64, f64::max);
        TrainOutcome {
            final_train_accuracy: last.train_accuracy,
            final_test_accuracy: last.test_accuracy,
            best_test_accuracy,
            normalized_time,
            final_mapping_cost: states.iter().map(|s| s.mapping.total_cost()).sum(),
            num_batches,
            history,
        }
    }

    /// Accuracy over train/test splits, evaluated batch-by-batch on the
    /// current faulty hardware state.
    fn evaluate(
        &self,
        model: &Gnn,
        reader: &FaultyWeightReader,
        states: &[BatchState],
    ) -> (f64, f64) {
        let mut train = (0usize, 0usize);
        let mut test = (0usize, 0usize);
        for state in states {
            let (logits, _) = model.forward(&state.view, &state.features, reader);
            let preds = logits.argmax_rows();
            for (i, &label) in state.labels.iter().enumerate() {
                let correct = (preds[i] == label) as usize;
                if state.train_mask[i] {
                    train.0 += correct;
                    train.1 += 1;
                } else {
                    test.0 += correct;
                    test.1 += 1;
                }
            }
        }
        (
            train.0 as f64 / train.1.max(1) as f64,
            test.0 as f64 / test.1.max(1) as f64,
        )
    }
}

/// Per-crossbar telemetry rollup over the concatenated adjacency pools
/// of every batch state: measured SA0/SA1 fault cells and final mapping
/// mismatch cost per crossbar, plus *modeled* MVM traffic (each mapped
/// block is activated once per aggregation pass; three passes — train
/// forward, backward, evaluation forward — per layer per epoch) and the
/// chip-level energy estimate apportioned by that traffic.
fn crossbar_heatmap(
    states: &[BatchState],
    epochs: usize,
    num_layers: usize,
    num_batches: usize,
    stages: usize,
) -> fare_obs::HeatmapGrid {
    let cells: usize = states.iter().map(|s| s.array.len()).sum();
    let mut grid = fare_obs::HeatmapGrid::zeros("adjacency_crossbars", cells);
    let mut offset = 0usize;
    for state in states {
        for i in 0..state.array.len() {
            let xb = state.array.crossbar(i);
            grid.sa0[offset + i] = xb.sa0_count() as u64;
            grid.sa1[offset + i] = xb.sa1_count() as u64;
        }
        for p in state.mapping.placements() {
            grid.mismatch[offset + p.crossbar] += p.mismatch_cost as u64;
            grid.mvms[offset + p.crossbar] += (epochs * num_layers * 3) as u64;
        }
        offset += state.array.len();
    }
    if cells > 0 {
        let spec = PipelineSpec::new(num_batches, stages, 1e-3, epochs);
        let report = fare_reram::energy::estimate(
            &fare_reram::ChipConfig::date2024(),
            cells,
            &spec,
        );
        let total_mvms: u64 = grid.mvms.iter().sum();
        if total_mvms > 0 {
            for (e, &m) in grid.energy_nj.iter_mut().zip(&grid.mvms) {
                *e = report.energy_j * 1e9 * (m as f64 / total_mvms as f64);
            }
        }
    }
    grid
}

/// Trains the same configuration on **ideal** hardware (no quantisation,
/// no faults) — the "fault-free" reference bar of every figure.
///
/// Uses the same partitioning, batching, model init and update schedule
/// as [`Trainer::run`] so accuracy differences isolate the hardware
/// effects.
pub fn run_fault_free(config: &TrainConfig, seed: u64, dataset: &Dataset) -> TrainOutcome {
    let mut rng = fare_rt::domain_rng(seed, "trainer");
    let parts = partition(&dataset.graph, dataset.spec.partitions, &mut rng);
    let batches = make_batches(
        &dataset.graph,
        &parts,
        dataset.spec.clusters_per_batch,
        &mut rng,
    );
    let num_batches = batches.len();
    let dims = GnnDims {
        input: dataset.spec.feature_dim,
        hidden: config.hidden_dim,
        output: dataset.num_classes,
    };
    let mut model = Gnn::with_depth(config.model, dims, config.depth, &mut rng);
    let mut opt =
        Adam::new(config.learning_rate, &model).with_weight_decay(config.weight_decay);

    struct Prepared {
        view: GraphView,
        features: Matrix,
        labels: Vec<usize>,
        train_mask: Vec<bool>,
    }
    let prepared: Vec<Prepared> = batches
        .iter()
        .map(|b| Prepared {
            // Fault-free: build the sparse view straight from the batch
            // subgraph, never materialising a dense adjacency.
            view: GraphView::from_graph(&b.graph),
            features: b.gather_features(&dataset.features),
            labels: b.gather_labels(&dataset.labels),
            train_mask: b.nodes.iter().map(|&u| dataset.train_mask[u]).collect(),
        })
        .collect();

    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0;
        for p in &prepared {
            let (logits, cache) = model.forward(&p.view, &p.features, &IdealReader);
            let (loss, grad) = masked_cross_entropy(&logits, &p.labels, &p.train_mask);
            epoch_loss += loss;
            let mut grads = model.backward(&p.view, &cache, &grad);
            if config.grad_clip_norm > 0.0 {
                grads.clip_norm(config.grad_clip_norm);
            }
            model.apply_gradients(&grads, &mut opt);
        }
        let mut train = (0usize, 0usize);
        let mut test = (0usize, 0usize);
        for p in &prepared {
            let (logits, _) = model.forward(&p.view, &p.features, &IdealReader);
            let preds = logits.argmax_rows();
            for (i, &label) in p.labels.iter().enumerate() {
                let correct = (preds[i] == label) as usize;
                if p.train_mask[i] {
                    train.0 += correct;
                    train.1 += 1;
                } else {
                    test.0 += correct;
                    test.1 += 1;
                }
            }
        }
        history.push(EpochStats {
            epoch,
            loss: epoch_loss / num_batches.max(1) as f64,
            train_accuracy: train.0 as f64 / train.1.max(1) as f64,
            test_accuracy: test.0 as f64 / test.1.max(1) as f64,
        });
    }
    let last = history.last().copied().expect("at least one epoch");
    let best_test_accuracy = history
        .iter()
        .map(|e| e.test_accuracy)
        .fold(0.0f64, f64::max);
    TrainOutcome {
        final_train_accuracy: last.train_accuracy,
        final_test_accuracy: last.test_accuracy,
        best_test_accuracy,
        normalized_time: 1.0,
        final_mapping_cost: 0,
        num_batches,
        history,
    }
}

#[cfg(test)]
mod tests {
    use fare_graph::datasets::DatasetKind;

    use super::*;

    fn quick_config(strategy: FaultStrategy, density: f64) -> TrainConfig {
        TrainConfig {
            epochs: 3,
            fault_spec: FaultSpec::density(density),
            strategy,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn masked_cross_entropy_ignores_unmasked_rows() {
        let logits = Matrix::from_rows(&[&[5.0, -5.0], &[-5.0, 5.0]]);
        // Row 1 is wrong but masked out.
        let (loss, grad) = masked_cross_entropy(&logits, &[0, 0], &[true, false]);
        assert!(loss < 1e-3);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn masked_cross_entropy_empty_mask() {
        let logits = Matrix::zeros(2, 2);
        let (loss, grad) = masked_cross_entropy(&logits, &[0, 1], &[false, false]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.frobenius_norm(), 0.0);
    }

    #[test]
    fn fault_free_run_learns_ppi() {
        let ds = Dataset::generate(DatasetKind::Ppi, 3);
        let config = TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        };
        let out = run_fault_free(&config, 3, &ds);
        assert!(
            out.final_test_accuracy > 0.6,
            "fault-free accuracy too low: {}",
            out.final_test_accuracy
        );
        // Accuracy improved over training.
        assert!(out.history[0].test_accuracy < out.final_test_accuracy + 0.05);
    }

    #[test]
    fn trainer_runs_all_strategies() {
        let ds = Dataset::generate(DatasetKind::Ppi, 4);
        for strategy in FaultStrategy::all() {
            let out = Trainer::new(quick_config(strategy, 0.03), 4).run(&ds);
            assert_eq!(out.history.len(), 3, "{strategy}");
            assert!(out.num_batches > 1);
            assert!(out.final_test_accuracy >= 0.0 && out.final_test_accuracy <= 1.0);
        }
    }

    #[test]
    fn zero_density_fare_matches_ideal_closely() {
        // With no faults, FARe differs from ideal only by quantisation.
        let ds = Dataset::generate(DatasetKind::Ppi, 5);
        let config = TrainConfig {
            epochs: 10,
            fault_spec: FaultSpec::fault_free(),
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        };
        let faulty = Trainer::new(config, 5).run(&ds);
        let ideal = run_fault_free(&config, 5, &ds);
        assert!(
            (faulty.final_test_accuracy - ideal.final_test_accuracy).abs() < 0.1,
            "quantisation-only gap too large: {} vs {}",
            faulty.final_test_accuracy,
            ideal.final_test_accuracy
        );
    }

    #[test]
    fn timing_ordering_matches_fig7() {
        let ds = Dataset::generate(DatasetKind::Ppi, 6);
        let times: Vec<f64> = FaultStrategy::all()
            .iter()
            .map(|&s| Trainer::new(quick_config(s, 0.01), 6).run(&ds).normalized_time)
            .collect();
        let (unaware, nr, clip, fare) = (times[0], times[1], times[2], times[3]);
        assert_eq!(unaware, 1.0);
        assert!(clip < fare);
        // At this test's tiny pipeline geometry (few batches) the relative
        // clip-stage charge is inflated; the paper-scale ~1% figure is
        // asserted in the fig7 experiment tests. Here we check ordering
        // and rough magnitude only.
        assert!(fare < 1.2, "FARe overhead too big: {fare}");
        assert!(nr > 2.0, "NR overhead too small: {nr}");
        assert!(nr > 2.0 * fare);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let ds = Dataset::generate(DatasetKind::Ppi, 7);
        let a = Trainer::new(quick_config(FaultStrategy::FaRe, 0.02), 7).run(&ds);
        let b = Trainer::new(quick_config(FaultStrategy::FaRe, 0.02), 7).run(&ds);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn moderate_variation_tolerated_with_fare() {
        let ds = Dataset::generate(DatasetKind::Ppi, 15);
        let base = TrainConfig {
            epochs: 8,
            fault_spec: FaultSpec::density(0.02),
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        };
        let clean = Trainer::new(base, 15).run(&ds).final_test_accuracy;
        let varied = Trainer::new(
            TrainConfig {
                weight_variation_sigma: 0.1,
                ..base
            },
            15,
        )
        .run(&ds)
        .final_test_accuracy;
        // 10% programming variation should cost only a few points —
        // training adapts to the static multiplicative field.
        assert!(
            varied > clean - 0.1,
            "variation too damaging: {clean:.3} -> {varied:.3}"
        );
    }

    #[test]
    fn regularisation_knobs_do_not_break_training() {
        let ds = Dataset::generate(DatasetKind::Ppi, 18);
        let out = Trainer::new(
            TrainConfig {
                epochs: 8,
                weight_decay: 0.001,
                grad_clip_norm: 1.0,
                fault_spec: FaultSpec::density(0.02),
                strategy: FaultStrategy::FaRe,
                ..TrainConfig::default()
            },
            18,
        )
        .run(&ds);
        assert!(
            out.final_test_accuracy > 0.6,
            "regularised run failed to learn: {:.3}",
            out.final_test_accuracy
        );
        assert!(out.best_test_accuracy >= out.final_test_accuracy - 1e-12);
        assert!(out.best_test_accuracy <= 1.0);
    }

    #[test]
    fn mild_drift_tolerated() {
        let ds = Dataset::generate(DatasetKind::Ppi, 17);
        let base = TrainConfig {
            epochs: 8,
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        };
        let clean = Trainer::new(base, 17).run(&ds).final_test_accuracy;
        let drifted = Trainer::new(
            TrainConfig {
                weight_drift_sigma: 0.01,
                ..base
            },
            17,
        )
        .run(&ds)
        .final_test_accuracy;
        // 1% per-epoch drift over 8 epochs is absorbed by training.
        assert!(
            drifted > clean - 0.1,
            "drift too damaging: {clean:.3} -> {drifted:.3}"
        );
    }

    #[test]
    fn extreme_variation_degrades_accuracy() {
        let ds = Dataset::generate(DatasetKind::Ppi, 16);
        let base = TrainConfig {
            epochs: 8,
            fault_spec: FaultSpec::fault_free(),
            strategy: FaultStrategy::FaultUnaware,
            ..TrainConfig::default()
        };
        let clean = Trainer::new(base, 16).run(&ds).final_test_accuracy;
        let wrecked = Trainer::new(
            TrainConfig {
                weight_variation_sigma: 2.0,
                ..base
            },
            16,
        )
        .run(&ds)
        .final_test_accuracy;
        assert!(
            wrecked < clean,
            "σ=2 variation should hurt: {clean:.3} vs {wrecked:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_bad_crossbar_size() {
        Trainer::new(
            TrainConfig {
                crossbar_size: 12,
                ..TrainConfig::default()
            },
            0,
        );
    }
}
