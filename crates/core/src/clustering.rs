//! Graph clustering on faulty ReRAM hardware.
//!
//! The third application family the paper's introduction motivates. The
//! encoder is trained with the self-supervised link-prediction objective
//! ([`crate::link_prediction`]) through the same faulty pipeline, the
//! resulting node embeddings are clustered with k-means, and cluster
//! quality is scored against the (held-back) ground-truth communities
//! with purity and NMI.

use fare_gnn::cluster::{kmeans, nmi, purity};
use fare_graph::datasets::Dataset;

use crate::link_prediction::run_link_prediction;
use crate::TrainConfig;

/// Outcome of a clustering run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringOutcome {
    /// Cluster purity against ground-truth communities.
    pub purity: f64,
    /// Normalised mutual information against ground truth.
    pub nmi: f64,
    /// Link-prediction AUC of the underlying encoder (diagnostic).
    pub link_auc: f64,
    /// Number of clusters requested (= dataset communities).
    pub k: usize,
}

fare_rt::json_struct!(ClusteringOutcome { purity, nmi, link_auc, k });

/// Trains an encoder self-supervised under `config`, clusters its
/// embeddings into the dataset's community count, and scores against
/// ground truth.
///
/// Labels are used only for *scoring*, never for training — this is the
/// unsupervised regime the paper's intro describes.
///
/// # Panics
///
/// Panics on the same configuration errors as
/// [`run_link_prediction`].
pub fn run_graph_clustering(config: &TrainConfig, seed: u64, dataset: &Dataset) -> ClusteringOutcome {
    let link = run_link_prediction(config, seed, dataset);
    let k = dataset.num_classes;
    let mut rng = fare_rt::domain_rng(seed, "clustering");
    let km = kmeans(&link.embeddings, k, 100, &mut rng);
    ClusteringOutcome {
        purity: purity(&km.assignment, &dataset.labels),
        nmi: nmi(&km.assignment, &dataset.labels),
        link_auc: link.final_auc,
        k,
    }
}

#[cfg(test)]
mod tests {
    use fare_graph::datasets::{DatasetKind, ModelKind};
    use fare_reram::FaultSpec;

    use super::*;
    use crate::FaultStrategy;

    #[test]
    fn clustering_beats_chance_on_clean_hardware() {
        let ds = Dataset::generate(DatasetKind::Reddit, 4);
        let config = TrainConfig {
            model: ModelKind::Gcn,
            epochs: 12,
            clip_threshold: 4.0,
            fault_spec: FaultSpec::fault_free(),
            strategy: FaultStrategy::FaRe,
            ..TrainConfig::default()
        };
        let out = run_graph_clustering(&config, 4, &ds);
        let chance = 1.0 / ds.num_classes as f64;
        assert_eq!(out.k, ds.num_classes);
        assert!(
            out.purity > 2.0 * chance,
            "purity {:.3} not above chance {:.3}",
            out.purity,
            chance
        );
        assert!(out.nmi > 0.1, "NMI {:.3} too low", out.nmi);
    }

    #[test]
    fn fare_clustering_not_worse_than_unaware_under_faults() {
        let ds = Dataset::generate(DatasetKind::Reddit, 8);
        let run = |strategy: FaultStrategy| -> f64 {
            let config = TrainConfig {
                model: ModelKind::Gcn,
                epochs: 8,
                clip_threshold: 4.0,
                fault_spec: FaultSpec::with_ratio(0.03, 1.0, 1.0),
                strategy,
                ..TrainConfig::default()
            };
            (0..2)
                .map(|t| run_graph_clustering(&config, 8 + 100 * t, &ds).nmi)
                .sum::<f64>()
                / 2.0
        };
        let fare = run(FaultStrategy::FaRe);
        let unaware = run(FaultStrategy::FaultUnaware);
        assert!(
            fare > unaware - 0.05,
            "FARe NMI {fare:.3} should not trail unaware {unaware:.3}"
        );
    }
}
