//! Parameterised runners for every figure of the evaluation section.
//!
//! Each runner reproduces the corresponding experiment's *protocol* —
//! same workloads, fault ratios, densities, and comparison baselines as
//! the paper — on the scaled synthetic datasets. The `fare-bench` crate
//! wraps them in one binary per figure; integration tests assert the
//! qualitative shapes (who wins, by roughly what factor).

use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare_reram::timing::{NormalizedTimes, PipelineSpec, TimingModel};
use fare_reram::FaultSpec;
use fare_tensor::fixed::StuckPolarity;
use fare_rt::par::prelude::*;

use crate::{run_fault_free, FaultStrategy, TrainConfig, TrainOutcome, Trainer};

/// One (dataset, model) pairing from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Dataset preset.
    pub dataset: DatasetKind,
    /// Model architecture.
    pub model: ModelKind,
}

fare_rt::json_struct!(Workload { dataset, model });

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{}", self.dataset, self.model)
    }
}

/// All six Table II workloads.
pub fn table2_workloads() -> Vec<Workload> {
    DatasetKind::all()
        .iter()
        .flat_map(|&dataset| {
            dataset
                .spec()
                .models
                .iter()
                .map(move |&model| Workload { dataset, model })
        })
        .collect()
}

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentParams {
    /// Training epochs per run (paper: 100; scale down for CI).
    pub epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent trials averaged per bar (fault pattern + init vary by
    /// trial). The paper plots single runs on large graphs; the scaled
    /// graphs here need a few trials to tame fault-placement variance.
    pub trials: usize,
}

fare_rt::json_struct!(ExperimentParams { epochs, seed, trials });

impl Default for ExperimentParams {
    fn default() -> Self {
        Self {
            epochs: 30,
            seed: 42,
            trials: 3,
        }
    }
}

impl ExperimentParams {
    /// Seed of trial `t`.
    fn trial_seed(&self, t: usize) -> u64 {
        self.seed.wrapping_add(1000 * t as u64)
    }
}

fn base_config(model: ModelKind, epochs: usize) -> TrainConfig {
    TrainConfig {
        model,
        epochs,
        ..TrainConfig::default()
    }
}

// ---------------------------------------------------------------------
// Fig. 3 — SA0 vs SA1 severity, weights vs adjacency (SAGE + Amazon2M).
// ---------------------------------------------------------------------

/// Which computation phase faults were injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Crossbars storing GNN weights (combination).
    Weights,
    /// Crossbars storing the adjacency matrix (aggregation).
    Adjacency,
}

fare_rt::json_enum!(FaultPhase { Weights, Adjacency });

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPhase::Weights => write!(f, "weights"),
            FaultPhase::Adjacency => write!(f, "adjacency"),
        }
    }
}

/// One bar of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Case {
    /// Phase the 5 % faults were injected into.
    pub phase: FaultPhase,
    /// Fault polarity (SA0-only or SA1-only).
    pub polarity: StuckPolarity,
    /// Final test accuracy of fault-unaware training.
    pub accuracy: f64,
}

fare_rt::json_struct!(Fig3Case { phase, polarity, accuracy });

/// Fig. 3 result: four fault bars plus the fault-free reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// Fault-free test accuracy.
    pub fault_free: f64,
    /// The four (phase × polarity) bars.
    pub cases: Vec<Fig3Case>,
}

fare_rt::json_struct!(Fig3Result { fault_free, cases });

impl Fig3Result {
    /// Accuracy of a specific bar.
    ///
    /// # Panics
    ///
    /// Panics if the case is missing.
    pub fn accuracy_of(&self, phase: FaultPhase, polarity: StuckPolarity) -> f64 {
        self.cases
            .iter()
            .find(|c| c.phase == phase && c.polarity == polarity)
            .map(|c| c.accuracy)
            .expect("missing fig3 case")
    }
}

/// Runs the Fig. 3 experiment: 5 % SA0-only / SA1-only pre-deployment
/// faults on the weight and adjacency crossbars *separately*, with
/// fault-unaware training (SAGE + Amazon2M).
pub fn fig3(params: &ExperimentParams) -> Fig3Result {
    let dataset = Dataset::generate(DatasetKind::Amazon2M, params.seed);
    let model = ModelKind::Sage;
    let density = 0.05;

    let trials: Vec<u64> = (0..params.trials.max(1)).map(|t| params.trial_seed(t)).collect();
    let fault_free = trials
        .iter()
        .map(|&s| {
            run_fault_free(&base_config(model, params.epochs), s, &dataset).final_test_accuracy
        })
        .sum::<f64>()
        / trials.len() as f64;

    let cases: Vec<Fig3Case> = [
        (FaultPhase::Weights, StuckPolarity::StuckAtZero),
        (FaultPhase::Weights, StuckPolarity::StuckAtOne),
        (FaultPhase::Adjacency, StuckPolarity::StuckAtZero),
        (FaultPhase::Adjacency, StuckPolarity::StuckAtOne),
    ]
    .into_par_iter()
    .map(|(phase, polarity)| {
        let spec = match polarity {
            StuckPolarity::StuckAtZero => FaultSpec::density(density).sa0_only(),
            StuckPolarity::StuckAtOne => FaultSpec::density(density).sa1_only(),
        };
        let config = TrainConfig {
            fault_spec: spec,
            strategy: FaultStrategy::FaultUnaware,
            weight_faults: phase == FaultPhase::Weights,
            adjacency_faults: phase == FaultPhase::Adjacency,
            ..base_config(model, params.epochs)
        };
        let accuracy = trials
            .par_iter()
            .map(|&s| Trainer::new(config, s).run(&dataset).final_test_accuracy)
            .sum::<f64>()
            / trials.len() as f64;
        Fig3Case {
            phase,
            polarity,
            accuracy,
        }
    })
    .collect();

    Fig3Result { fault_free, cases }
}

// ---------------------------------------------------------------------
// Fig. 4 — training curves, fault-unaware vs FARe (GCN + Reddit).
// ---------------------------------------------------------------------

/// Fig. 4 result: per-epoch training-accuracy curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// Fault densities swept (paper: 1–5 %).
    pub densities: Vec<f64>,
    /// Fault-free training-accuracy curve.
    pub fault_free: Vec<f64>,
    /// Fault-unaware curves, one per density (panel a).
    pub unaware: Vec<Vec<f64>>,
    /// FARe curves, one per density (panel b).
    pub fare: Vec<Vec<f64>>,
}

fare_rt::json_struct!(Fig4Result { densities, fault_free, unaware, fare });

/// Runs Fig. 4: training accuracy vs epoch for fault-unaware vs FARe at
/// each density (GCN + Reddit, SA0:SA1 = 9:1).
pub fn fig4(params: &ExperimentParams, densities: &[f64]) -> Fig4Result {
    let dataset = Dataset::generate(DatasetKind::Reddit, params.seed);
    let model = ModelKind::Gcn;
    let curve = |out: &TrainOutcome| -> Vec<f64> {
        out.history.iter().map(|e| e.train_accuracy).collect()
    };

    let trials: Vec<u64> = (0..params.trials.max(1)).map(|t| params.trial_seed(t)).collect();
    let mean_curves = |curves: Vec<Vec<f64>>| -> Vec<f64> {
        let len = curves.iter().map(Vec::len).min().unwrap_or(0);
        (0..len)
            .map(|i| curves.iter().map(|c| c[i]).sum::<f64>() / curves.len() as f64)
            .collect()
    };
    let fault_free = mean_curves(
        trials
            .iter()
            .map(|&s| curve(&run_fault_free(&base_config(model, params.epochs), s, &dataset)))
            .collect(),
    );

    let run = |strategy: FaultStrategy, density: f64| -> Vec<f64> {
        let config = TrainConfig {
            fault_spec: FaultSpec::density(density),
            strategy,
            ..base_config(model, params.epochs)
        };
        mean_curves(
            trials
                .par_iter()
                .map(|&s| curve(&Trainer::new(config, s).run(&dataset)))
                .collect(),
        )
    };
    let unaware: Vec<Vec<f64>> = densities
        .par_iter()
        .map(|&d| run(FaultStrategy::FaultUnaware, d))
        .collect();
    let fare: Vec<Vec<f64>> = densities
        .par_iter()
        .map(|&d| run(FaultStrategy::FaRe, d))
        .collect();
    Fig4Result {
        densities: densities.to_vec(),
        fault_free,
        unaware,
        fare,
    }
}

// ---------------------------------------------------------------------
// Fig. 5 / Fig. 6 — test-accuracy comparison across workloads.
// ---------------------------------------------------------------------

/// One bar of Fig. 5 / Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyCell {
    /// Workload (dataset + model).
    pub workload: Workload,
    /// Mitigation strategy.
    pub strategy: FaultStrategy,
    /// Pre-deployment fault density.
    pub density: f64,
    /// Final test accuracy.
    pub accuracy: f64,
}

fare_rt::json_struct!(AccuracyCell { workload, strategy, density, accuracy });

/// Fig. 5 / Fig. 6 result: all bars plus per-workload fault-free
/// references.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyComparison {
    /// SA1 fraction used (0.1 for 9:1, 0.5 for 1:1).
    pub sa1_fraction: f64,
    /// Total post-deployment density added over the run (Fig. 6; 0 for
    /// Fig. 5).
    pub post_deployment_density: f64,
    /// Fault-free reference accuracy per workload.
    pub fault_free: Vec<(Workload, f64)>,
    /// All (workload × strategy × density) bars.
    pub cells: Vec<AccuracyCell>,
}

fare_rt::json_struct!(AccuracyComparison { sa1_fraction, post_deployment_density, fault_free, cells });

impl AccuracyComparison {
    /// Accuracy of a specific bar.
    ///
    /// # Panics
    ///
    /// Panics if the cell is missing.
    pub fn accuracy_of(&self, workload: Workload, strategy: FaultStrategy, density: f64) -> f64 {
        self.cells
            .iter()
            .find(|c| {
                c.workload == workload
                    && c.strategy == strategy
                    && (c.density - density).abs() < 1e-12
            })
            .map(|c| c.accuracy)
            .expect("missing accuracy cell")
    }

    /// Fault-free reference of a workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload is missing.
    pub fn fault_free_of(&self, workload: Workload) -> f64 {
        self.fault_free
            .iter()
            .find(|(w, _)| *w == workload)
            .map(|(_, a)| *a)
            .expect("missing fault-free reference")
    }

    /// Mean accuracy of one strategy over all bars.
    pub fn mean_accuracy(&self, strategy: FaultStrategy) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.strategy == strategy)
            .map(|c| c.accuracy)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Runs the Fig. 5 protocol: every workload × strategy × density at the
/// given SA1 fraction, pre-deployment faults only.
///
/// Pass `workloads = table2_workloads()` for the full figure or a subset
/// for quick runs.
pub fn fig5(
    params: &ExperimentParams,
    workloads: &[Workload],
    sa1_fraction: f64,
    densities: &[f64],
) -> AccuracyComparison {
    comparison(params, workloads, sa1_fraction, densities, 0.0)
}

/// Runs the Fig. 6 protocol: pre-deployment densities plus
/// `post_deployment_density` extra faults spread uniformly over the
/// epochs (paper: 1 %).
pub fn fig6(
    params: &ExperimentParams,
    workloads: &[Workload],
    sa1_fraction: f64,
    pre_densities: &[f64],
    post_deployment_density: f64,
) -> AccuracyComparison {
    comparison(
        params,
        workloads,
        sa1_fraction,
        pre_densities,
        post_deployment_density,
    )
}

fn comparison(
    params: &ExperimentParams,
    workloads: &[Workload],
    sa1_fraction: f64,
    densities: &[f64],
    post: f64,
) -> AccuracyComparison {
    let datasets: Vec<(Workload, Dataset)> = workloads
        .iter()
        .map(|&w| (w, Dataset::generate(w.dataset, params.seed)))
        .collect();

    let trials: Vec<u64> = (0..params.trials.max(1)).map(|t| params.trial_seed(t)).collect();
    let fault_free: Vec<(Workload, f64)> = datasets
        .par_iter()
        .map(|(w, ds)| {
            let acc = trials
                .iter()
                .map(|&s| {
                    run_fault_free(&base_config(w.model, params.epochs), s, ds)
                        .final_test_accuracy
                })
                .sum::<f64>()
                / trials.len() as f64;
            (*w, acc)
        })
        .collect();

    let mut jobs = Vec::new();
    for (wi, (w, _)) in datasets.iter().enumerate() {
        for &strategy in &FaultStrategy::all() {
            for &density in densities {
                jobs.push((wi, *w, strategy, density));
            }
        }
    }
    fare_obs::counters::CORE_EXPERIMENT_CELLS.add(jobs.len() as u64);
    let cells: Vec<AccuracyCell> = jobs
        .par_iter()
        .map(|&(wi, workload, strategy, density)| {
            let config = TrainConfig {
                fault_spec: FaultSpec::with_sa1_fraction(density, sa1_fraction),
                post_deployment_density: post,
                strategy,
                ..base_config(workload.model, params.epochs)
            };
            let accuracy = trials
                .par_iter()
                .map(|&s| {
                    Trainer::new(config, s)
                        .run(&datasets[wi].1)
                        .final_test_accuracy
                })
                .sum::<f64>()
                / trials.len() as f64;
            AccuracyCell {
                workload,
                strategy,
                density,
                accuracy,
            }
        })
        .collect();

    AccuracyComparison {
        sa1_fraction,
        post_deployment_density: post,
        fault_free,
        cells,
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — normalised execution time per dataset.
// ---------------------------------------------------------------------

/// Fig. 7 result: normalised execution times per dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// `(dataset, times)` rows using the paper-scale pipeline geometry
    /// (N = partitions / batch from Table II, S = 5, 100 epochs).
    pub rows: Vec<(DatasetKind, NormalizedTimes)>,
}

fare_rt::json_struct!(Fig7Result { rows });

/// Runs the Fig. 7 timing model with each dataset's paper-scale pipeline
/// geometry.
pub fn fig7() -> Fig7Result {
    let rows = DatasetKind::all()
        .iter()
        .map(|&kind| {
            let spec = kind.spec();
            let num_batches = (spec.paper_partitions / spec.paper_batch).max(1);
            let timing = TimingModel::new(PipelineSpec::new(num_batches, 5, 1e-3, 100));
            (kind, timing.normalized())
        })
        .collect();
    Fig7Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_workloads() {
        let w = table2_workloads();
        assert_eq!(w.len(), 6);
        assert!(w.contains(&Workload {
            dataset: DatasetKind::Ppi,
            model: ModelKind::Gat
        }));
        assert!(w.contains(&Workload {
            dataset: DatasetKind::Ogbl,
            model: ModelKind::Sage
        }));
    }

    #[test]
    fn fig7_fare_low_overhead_nr_high() {
        let result = fig7();
        assert_eq!(result.rows.len(), 4);
        for (kind, times) in &result.rows {
            assert!(times.fare < 1.05, "{kind}: FARe {}", times.fare);
            assert!(
                times.neuron_reordering > 2.0,
                "{kind}: NR {}",
                times.neuron_reordering
            );
            assert!(times.clipping < times.fare);
            // Paper: "up to 4× speedup" over NR.
            assert!(times.fare_speedup_over_nr() > 2.5);
        }
    }

    #[test]
    fn fig7_speedup_grows_with_batch_count() {
        let result = fig7();
        // Amazon2M (N=500) has more batches than PPI (N=50): larger NR
        // penalty.
        let ppi = result.rows.iter().find(|(k, _)| *k == DatasetKind::Ppi).unwrap();
        let amz = result
            .rows
            .iter()
            .find(|(k, _)| *k == DatasetKind::Amazon2M)
            .unwrap();
        assert!(amz.1.neuron_reordering > ppi.1.neuron_reordering);
    }

    #[test]
    fn accuracy_comparison_lookup_helpers() {
        // Tiny run to exercise the bookkeeping, not the science.
        let params = ExperimentParams { epochs: 1, seed: 1, trials: 1 };
        let w = vec![Workload {
            dataset: DatasetKind::Ppi,
            model: ModelKind::Gcn,
        }];
        let cmp = fig5(&params, &w, 0.1, &[0.01]);
        assert_eq!(cmp.cells.len(), 4); // 1 workload × 4 strategies × 1 density
        let _ = cmp.accuracy_of(w[0], FaultStrategy::FaRe, 0.01);
        let _ = cmp.fault_free_of(w[0]);
        assert!(cmp.mean_accuracy(FaultStrategy::FaRe) >= 0.0);
    }
}
