//! Table I: the capability matrix of existing fault-tolerant techniques.
//!
//! Encoded as data so the `table1` bench binary can regenerate the
//! paper's comparison table, and so tests can assert that FARe is the
//! only row with every capability at low overhead.


/// Qualitative performance overhead of a technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overhead {
    /// Negligible to small overhead.
    Low,
    /// Significant overhead (stalls, redundant hardware, …).
    High,
}

fare_rt::json_enum!(Overhead { Low, High });

impl std::fmt::Display for Overhead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Overhead::Low => write!(f, "LOW"),
            Overhead::High => write!(f, "HIGH"),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Technique {
    /// Citation tag as printed in the paper.
    pub reference: &'static str,
    /// Short description.
    pub name: &'static str,
    /// Supports training (not just inference)?
    pub training: bool,
    /// Performance overhead class.
    pub overhead: Overhead,
    /// Protects the combination (weight) phase?
    pub combination: bool,
    /// Protects the aggregation (adjacency) phase?
    pub aggregation: bool,
    /// Mitigates post-deployment faults?
    pub post_deployment: bool,
}

fare_rt::json_struct_to!(Technique { reference, name, training, overhead, combination, aggregation, post_deployment });

/// The rows of Table I, in paper order, with FARe appended.
pub fn table1() -> Vec<Technique> {
    vec![
        Technique {
            reference: "[8]",
            name: "redundant columns",
            training: true,
            overhead: Overhead::High,
            combination: true,
            aggregation: true,
            post_deployment: true,
        },
        Technique {
            reference: "[10]",
            name: "unstructured pruning",
            training: false,
            overhead: Overhead::Low,
            combination: true,
            aggregation: false,
            post_deployment: false,
        },
        Technique {
            reference: "[11]",
            name: "stochastic retraining",
            training: false,
            overhead: Overhead::Low,
            combination: true,
            aggregation: true,
            post_deployment: false,
        },
        Technique {
            reference: "[9]",
            name: "fault-map compensation",
            training: false,
            overhead: Overhead::High,
            combination: true,
            aggregation: false,
            post_deployment: false,
        },
        Technique {
            reference: "[12]",
            name: "weight clipping",
            training: true,
            overhead: Overhead::Low,
            combination: true,
            aggregation: false,
            post_deployment: true,
        },
        Technique {
            reference: "[7]",
            name: "neuron reordering",
            training: true,
            overhead: Overhead::High,
            combination: true,
            aggregation: true,
            post_deployment: true,
        },
        Technique {
            reference: "FARe",
            name: "fault-aware mapping + clipping",
            training: true,
            overhead: Overhead::Low,
            combination: true,
            aggregation: true,
            post_deployment: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_fare_has_all_capabilities_at_low_overhead() {
        let rows = table1();
        let full: Vec<&Technique> = rows
            .iter()
            .filter(|t| {
                t.training
                    && t.combination
                    && t.aggregation
                    && t.post_deployment
                    && t.overhead == Overhead::Low
            })
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].reference, "FARe");
    }

    #[test]
    fn paper_rows_present() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        for r in ["[8]", "[10]", "[11]", "[9]", "[12]", "[7]", "FARe"] {
            assert!(rows.iter().any(|t| t.reference == r), "missing row {r}");
        }
    }

    #[test]
    fn clipping_row_matches_paper() {
        let rows = table1();
        let clip = rows.iter().find(|t| t.reference == "[12]").unwrap();
        assert!(clip.training);
        assert_eq!(clip.overhead, Overhead::Low);
        assert!(clip.combination);
        assert!(!clip.aggregation);
        assert!(clip.post_deployment);
    }
}
