//! Ablation studies of FARe's design choices (DESIGN.md §4).
//!
//! Four knobs the paper fixes are swept here so their contribution is
//! measurable:
//!
//! 1. the assignment solver inside Algorithm 1 (exact Hungarian vs the
//!    paper's b-Suitor ½-approximation vs greedy),
//! 2. the SA1-non-overlap pruning heuristic (lines 8–17) on vs off,
//! 3. the crossbar over-provisioning slack the mapper gets to play with,
//! 4. the weight-clip threshold θ,
//! 5. post-deployment handling: row-permutation refresh on vs off.

use std::time::Instant;

use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare_matching::Matcher;
use fare_reram::{CrossbarArray, FaultSpec};
use fare_tensor::Matrix;
use fare_rt::rand::Rng;

use crate::experiments::ExperimentParams;
use crate::mapping::{map_adjacency, MappingConfig};
use crate::{FaultStrategy, TrainConfig, Trainer};

/// Standard mapping instance used by the structural ablations: a random
/// symmetric adjacency plus a faulty crossbar pool.
fn mapping_instance(
    nodes: usize,
    n: usize,
    slack: f64,
    density: f64,
    seed: u64,
) -> (Matrix, CrossbarArray) {
    let mut rng = fare_rt::rng(seed);
    let mut adj = Matrix::zeros(nodes, nodes);
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if rng.gen_bool(0.08) {
                adj[(i, j)] = 1.0;
                adj[(j, i)] = 1.0;
            }
        }
    }
    let blocks = nodes.div_ceil(n).pow(2);
    let pool = ((blocks as f64 * slack).ceil() as usize).max(blocks);
    let mut array = CrossbarArray::new(pool, n);
    array.inject(&FaultSpec::with_ratio(density, 1.0, 1.0), &mut rng);
    (adj, array)
}

/// One row of the matcher ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatcherAblation {
    /// Solver used for both matchings.
    pub matcher: Matcher,
    /// Total mismatch cost of the resulting mapping.
    pub mapping_cost: usize,
    /// Wall time of one mapping run, milliseconds.
    pub wall_time_ms: f64,
}

fare_rt::json_struct!(MatcherAblation { matcher, mapping_cost, wall_time_ms });

/// Sweeps the assignment solver on a standard instance.
pub fn matcher_ablation(seed: u64, density: f64) -> Vec<MatcherAblation> {
    let (adj, array) = mapping_instance(96, 16, 1.5, density, seed);
    [
        Matcher::Hungarian,
        Matcher::BSuitor,
        Matcher::Auction,
        Matcher::Greedy,
    ]
        .into_iter()
        .map(|matcher| {
            let cfg = MappingConfig {
                matcher,
                prune: true,
                ..MappingConfig::default()
            };
            let t0 = Instant::now();
            let mapping = map_adjacency(&adj, &array, &cfg);
            MatcherAblation {
                matcher,
                mapping_cost: mapping.total_cost(),
                wall_time_ms: t0.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// One row of the pruning ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneAblation {
    /// Pruning heuristic enabled?
    pub prune: bool,
    /// Total mismatch cost.
    pub mapping_cost: usize,
    /// SA1-only cost (fabricated edges) — what the heuristic targets.
    pub sa1_cost: usize,
}

fare_rt::json_struct!(PruneAblation { prune, mapping_cost, sa1_cost });

/// Sweeps the pruning heuristic on a sparse instance (where the paper's
/// 0.001-density blocks make it bite).
pub fn prune_ablation(seed: u64, density: f64) -> Vec<PruneAblation> {
    let (adj, array) = mapping_instance(96, 16, 1.5, density, seed);
    [false, true]
        .into_iter()
        .map(|prune| {
            let cfg = MappingConfig {
                matcher: Matcher::BSuitor,
                prune,
                ..MappingConfig::default()
            };
            let mapping = map_adjacency(&adj, &array, &cfg);
            PruneAblation {
                prune,
                mapping_cost: mapping.total_cost(),
                sa1_cost: mapping.total_sa1_cost(),
            }
        })
        .collect()
}

/// One row of the slack ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackAblation {
    /// Over-provisioning factor.
    pub slack: f64,
    /// Crossbars in the pool.
    pub crossbars: usize,
    /// Total mismatch cost of the mapping.
    pub mapping_cost: usize,
}

fare_rt::json_struct!(SlackAblation { slack, crossbars, mapping_cost });

/// Sweeps the crossbar over-provisioning slack: more spare crossbars give
/// Algorithm 1 more placement freedom at area cost.
pub fn slack_ablation(seed: u64, density: f64, slacks: &[f64]) -> Vec<SlackAblation> {
    slacks
        .iter()
        .map(|&slack| {
            let (adj, array) = mapping_instance(96, 16, slack, density, seed);
            let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
            SlackAblation {
                slack,
                crossbars: array.len(),
                mapping_cost: mapping.total_cost(),
            }
        })
        .collect()
}

/// One row of the clip-threshold ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipAblation {
    /// Threshold θ.
    pub threshold: f32,
    /// Final FARe test accuracy at that threshold.
    pub accuracy: f64,
}

fare_rt::json_struct!(ClipAblation { threshold, accuracy });

/// Sweeps the clip threshold θ under 5 % faults (1:1 ratio, the regime
/// where clipping matters most).
pub fn clip_threshold_ablation(params: &ExperimentParams, thresholds: &[f32]) -> Vec<ClipAblation> {
    let dataset = Dataset::generate(DatasetKind::Reddit, params.seed);
    thresholds
        .iter()
        .map(|&threshold| {
            let config = TrainConfig {
                model: ModelKind::Gcn,
                epochs: params.epochs,
                clip_threshold: threshold,
                fault_spec: FaultSpec::with_ratio(0.05, 1.0, 1.0),
                strategy: FaultStrategy::FaRe,
                ..TrainConfig::default()
            };
            let acc: f64 = (0..params.trials.max(1))
                .map(|t| {
                    Trainer::new(config, params.seed.wrapping_add(1000 * t as u64))
                        .run(&dataset)
                        .final_test_accuracy
                })
                .sum::<f64>()
                / params.trials.max(1) as f64;
            ClipAblation {
                threshold,
                accuracy: acc,
            }
        })
        .collect()
}

/// One row of the post-deployment refresh ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshAblation {
    /// Row-permutation refresh after per-epoch BIST enabled?
    pub refresh: bool,
    /// Final FARe test accuracy.
    pub accuracy: f64,
}

fare_rt::json_struct!(RefreshAblation { refresh, accuracy });

/// FARe with vs without the per-epoch row-permutation refresh, under
/// growing post-deployment faults.
pub fn refresh_ablation(params: &ExperimentParams) -> Vec<RefreshAblation> {
    let dataset = Dataset::generate(DatasetKind::Amazon2M, params.seed);
    [true, false]
        .into_iter()
        .map(|refresh| {
            let config = TrainConfig {
                model: ModelKind::Sage,
                epochs: params.epochs,
                fault_spec: FaultSpec::with_ratio(0.02, 1.0, 1.0),
                post_deployment_density: 0.02,
                strategy: FaultStrategy::FaRe,
                post_refresh: refresh,
                ..TrainConfig::default()
            };
            let acc: f64 = (0..params.trials.max(1))
                .map(|t| {
                    Trainer::new(config, params.seed.wrapping_add(1000 * t as u64))
                        .run(&dataset)
                        .final_test_accuracy
                })
                .sum::<f64>()
                / params.trials.max(1) as f64;
            RefreshAblation {
                refresh,
                accuracy: acc,
            }
        })
        .collect()
}

/// One row of the tile-locality ablation (extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityAblation {
    /// Penalty weight λ.
    pub weight: f64,
    /// Mean extra tiles per block-row (communication proxy).
    pub tile_spread: f64,
    /// Total mismatch cost paid for the locality.
    pub mapping_cost: usize,
}

fare_rt::json_struct!(LocalityAblation { weight, tile_spread, mapping_cost });

/// Sweeps the tile-locality weight λ: communication (tile spread) falls
/// as λ rises, at the price of extra mismatches.
pub fn locality_ablation(seed: u64, density: f64, weights: &[f64]) -> Vec<LocalityAblation> {
    use crate::mapping::LocalityConfig;
    let (adj, array) = mapping_instance(96, 16, 1.5, density, seed);
    let crossbars_per_tile = 8;
    weights
        .iter()
        .map(|&weight| {
            let cfg = MappingConfig {
                locality: Some(LocalityConfig::new(crossbars_per_tile, weight)),
                ..MappingConfig::default()
            };
            let mapping = map_adjacency(&adj, &array, &cfg);
            LocalityAblation {
                weight,
                tile_spread: mapping.tile_spread(crossbars_per_tile),
                mapping_cost: mapping.total_cost(),
            }
        })
        .collect()
}

/// One row of the model-depth ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthAblation {
    /// GNN layers.
    pub depth: usize,
    /// Final FARe test accuracy.
    pub accuracy: f64,
    /// Normalised execution time (deeper models add pipeline stages).
    pub normalized_time: f64,
}

fare_rt::json_struct!(DepthAblation { depth, accuracy, normalized_time });

/// Sweeps model depth under FARe with 3 % faults — deeper models add
/// pipeline stages (timing) and more fault-exposed parameters
/// (accuracy).
pub fn depth_ablation(params: &ExperimentParams, depths: &[usize]) -> Vec<DepthAblation> {
    let dataset = Dataset::generate(DatasetKind::Ppi, params.seed);
    depths
        .iter()
        .map(|&depth| {
            let config = TrainConfig {
                model: ModelKind::Gcn,
                depth,
                epochs: params.epochs,
                fault_spec: FaultSpec::with_ratio(0.03, 9.0, 1.0),
                strategy: FaultStrategy::FaRe,
                ..TrainConfig::default()
            };
            let outcomes: Vec<_> = (0..params.trials.max(1))
                .map(|t| {
                    Trainer::new(config, params.seed.wrapping_add(1000 * t as u64)).run(&dataset)
                })
                .collect();
            DepthAblation {
                depth,
                accuracy: outcomes.iter().map(|o| o.final_test_accuracy).sum::<f64>()
                    / outcomes.len() as f64,
                normalized_time: outcomes[0].normalized_time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_ablation_exact_is_best_or_tied() {
        let rows = matcher_ablation(3, 0.05);
        assert_eq!(rows.len(), 4);
        let cost = |m: Matcher| {
            rows.iter()
                .find(|r| r.matcher == m)
                .map(|r| r.mapping_cost)
                .unwrap()
        };
        assert!(cost(Matcher::Hungarian) <= cost(Matcher::BSuitor));
        assert!(cost(Matcher::Hungarian) <= cost(Matcher::Greedy));
        // Auction is exact on integer mismatch costs.
        assert_eq!(cost(Matcher::Auction), cost(Matcher::Hungarian));
        assert!(rows.iter().all(|r| r.wall_time_ms > 0.0));
    }

    #[test]
    fn prune_ablation_does_not_hurt_sa1() {
        // The heuristic targets SA1 exposure; it should never increase it
        // dramatically on a pool with slack.
        let rows = prune_ablation(5, 0.05);
        let on = rows.iter().find(|r| r.prune).unwrap();
        let off = rows.iter().find(|r| !r.prune).unwrap();
        assert!(on.sa1_cost <= off.sa1_cost + 3, "on {} off {}", on.sa1_cost, off.sa1_cost);
    }

    #[test]
    fn slack_monotonically_helps() {
        let rows = slack_ablation(7, 0.05, &[1.0, 1.5, 2.5]);
        assert_eq!(rows.len(), 3);
        // More crossbars never hurt (same seed → same faults on the
        // shared prefix of the pool).
        assert!(rows[2].mapping_cost <= rows[0].mapping_cost);
        assert!(rows[0].crossbars < rows[2].crossbars);
    }

    #[test]
    fn locality_sweep_trades_spread_for_cost() {
        let rows = locality_ablation(21, 0.05, &[0.0, 1.0, 50.0]);
        assert_eq!(rows.len(), 3);
        // Heavy locality weight must not increase tile spread.
        assert!(rows[2].tile_spread <= rows[0].tile_spread);
        // And mismatch cost is monotonically non-decreasing in λ (it is
        // the objective being traded away).
        assert!(rows[2].mapping_cost >= rows[0].mapping_cost);
    }

    #[test]
    fn depth_ablation_reports_all_depths() {
        let params = ExperimentParams {
            epochs: 4,
            seed: 13,
            trials: 1,
        };
        let rows = depth_ablation(&params, &[2, 3]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.accuracy > 0.0 && r.accuracy <= 1.0));
        // Deeper model => more pipeline stages => same or slightly lower
        // relative FARe overhead is possible; just check sanity bounds.
        assert!(rows.iter().all(|r| r.normalized_time > 1.0 && r.normalized_time < 2.0));
    }

    #[test]
    fn clip_ablation_extreme_thresholds_are_worse() {
        let params = ExperimentParams {
            epochs: 8,
            seed: 11,
            trials: 1,
        };
        let rows = clip_threshold_ablation(&params, &[0.01, 1.0, 64.0]);
        let acc = |t: f32| rows.iter().find(|r| r.threshold == t).unwrap().accuracy;
        // θ too small clips real weights; θ too large stops bounding
        // explosions. The paper's θ = 1 should beat both extremes.
        assert!(acc(1.0) >= acc(0.01) - 0.02, "tiny θ unexpectedly fine");
        assert!(acc(1.0) >= acc(64.0) - 0.02, "huge θ unexpectedly fine");
    }
}
