//! Faulty-hardware plumbing: the weight reader backed by crossbar
//! fabrics, and adjacency corruption under a given mapping.

use std::collections::BTreeMap;

use fare_gnn::{Gnn, WeightReader};
use fare_reram::variation::{VariationField, VariationSpec};
use fare_reram::weights::WeightFabric;
use fare_reram::{CrossbarArray, FaultSpec};
use fare_tensor::{FixedFormat, Matrix};
use fare_rt::rand::Rng;

use fare_matching::{CostMatrix, Matcher};

use crate::mapping::Mapping;

/// A [`WeightReader`] that routes every parameter through its own
/// [`WeightFabric`] — 16-bit quantisation plus stuck-cell corruption.
///
/// Optionally holds a per-parameter **row placement** (logical →
/// physical), which is how the neuron-reordering baseline steers weight
/// rows around damaging faults.
///
/// # Example
///
/// ```
/// use fare_core::FaultyWeightReader;
/// use fare_gnn::{Gnn, GnnDims, WeightReader};
/// use fare_graph::datasets::ModelKind;
/// use fare_reram::FaultSpec;
/// use fare_rt::rand::SeedableRng;
///
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(0);
/// let model = Gnn::new(ModelKind::Gcn, GnnDims { input: 8, hidden: 8, output: 4 }, &mut rng);
/// let mut reader = FaultyWeightReader::for_model(&model, 16);
/// reader.inject(&FaultSpec::density(0.05), &mut rng);
/// let read = reader.read(0, 0, model.param(0, 0));
/// assert_eq!(read.shape(), model.param(0, 0).shape());
/// ```
#[derive(Debug, Clone)]
pub struct FaultyWeightReader {
    fabrics: BTreeMap<(usize, usize), WeightFabric>,
    placements: BTreeMap<(usize, usize), Vec<usize>>,
    variations: BTreeMap<(usize, usize), VariationField>,
    clip: Option<f32>,
}

impl FaultyWeightReader {
    /// Allocates one fabric per model parameter on `n × n` crossbars with
    /// the default 16-bit fixed-point format.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of 8 (cells per weight).
    pub fn for_model(model: &Gnn, n: usize) -> Self {
        let fmt = FixedFormat::default();
        let fabrics = model
            .param_shapes()
            .into_iter()
            .map(|ps| {
                (
                    (ps.layer, ps.param),
                    WeightFabric::for_shape(ps.rows, ps.cols, n, fmt),
                )
            })
            .collect();
        Self {
            fabrics,
            placements: BTreeMap::new(),
            variations: BTreeMap::new(),
            clip: None,
        }
    }

    /// Draws a static programming-variation field for every parameter
    /// (extension beyond the paper's SAF model; see
    /// [`fare_reram::variation`]).
    pub fn inject_variation(&mut self, spec: &VariationSpec, rng: &mut impl Rng) {
        for (&key, fabric) in &self.fabrics {
            let (rows, cols) = fabric.shape();
            self.variations
                .insert(key, VariationField::generate(rows, cols, spec, rng));
        }
    }

    /// Compounds per-epoch retention drift onto every parameter's
    /// variation field (no-op for parameters without one; call
    /// [`FaultyWeightReader::inject_variation`] first, possibly with
    /// σ = 0, to create the fields).
    pub fn apply_drift(&mut self, sigma: f64, rng: &mut impl Rng) {
        for field in self.variations.values_mut() {
            field.drift(sigma, rng);
        }
    }

    /// Enables the hardware clipping comparator: every read value is
    /// clamped into `[-threshold, threshold]` *after* fault corruption.
    ///
    /// This is the paper's combination-phase defence (Section IV-B): the
    /// 16-bit comparator + 2:1 mux on each tile bounds exploded weights
    /// before they enter the MVM.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative.
    pub fn set_clip(&mut self, threshold: Option<f32>) {
        if let Some(t) = threshold {
            assert!(t >= 0.0, "clip threshold must be non-negative");
        }
        self.clip = threshold;
    }

    /// The currently configured clip threshold, if any.
    pub fn clip(&self) -> Option<f32> {
        self.clip
    }

    /// Injects faults into every fabric (additive, deterministic order).
    pub fn inject(&mut self, spec: &FaultSpec, rng: &mut impl Rng) {
        for fabric in self.fabrics.values_mut() {
            fabric.inject(spec, rng);
        }
    }

    /// Borrows the fabric of parameter `(layer, param)`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is unknown.
    pub fn fabric(&self, layer: usize, param: usize) -> &WeightFabric {
        self.fabrics
            .get(&(layer, param))
            .unwrap_or_else(|| panic!("no fabric for parameter ({layer},{param})"))
    }

    /// Mutably borrows the fabric of parameter `(layer, param)`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is unknown.
    pub fn fabric_mut(&mut self, layer: usize, param: usize) -> &mut WeightFabric {
        self.fabrics
            .get_mut(&(layer, param))
            .unwrap_or_else(|| panic!("no fabric for parameter ({layer},{param})"))
    }

    /// Total fault count across all fabrics.
    pub fn fault_count(&self) -> usize {
        self.fabrics.values().map(|f| f.array().fault_count()).sum()
    }

    /// Drops all row placements (back to identity).
    pub fn clear_placements(&mut self) {
        self.placements.clear();
    }

    /// Recomputes every parameter's row placement to minimise corruption
    /// of the *current* weights — the neuron-reordering move, re-run
    /// after every batch because the weights keep changing.
    ///
    /// The paper notes NR's weakness: its reorder unit spans all eight
    /// cells of each weight (it can only permute whole rows), so overlap
    /// with fault patterns is coarse. That is exactly what this
    /// implements — row-level assignment, no polarity awareness.
    pub fn optimize_placements(&mut self, model: &Gnn, matcher: Matcher) {
        for (&(layer, param), fabric) in &self.fabrics {
            let weights = model.param(layer, param);
            let rows = weights.rows();
            let physical = fabric.physical_rows();
            let cost = CostMatrix::from_fn(rows, physical, |r, p| {
                fabric.row_placement_cost(weights, r, p)
            });
            let sol = matcher.solve(&cost);
            self.placements.insert((layer, param), sol.to_permutation());
        }
    }
}

impl WeightReader for FaultyWeightReader {
    fn read(&self, layer: usize, param: usize, value: &Matrix) -> Matrix {
        let fabric = self.fabric(layer, param);
        let placement = self.placements.get(&(layer, param)).map(Vec::as_slice);
        let mut out = fabric.corrupt_permuted(value, placement);
        if let Some(field) = self.variations.get(&(layer, param)) {
            out = field.apply(&out);
        }
        if let Some(t) = self.clip {
            out.clip_inplace(t);
        }
        out
    }
}

/// Corrupts a binary adjacency matrix as stored under `mapping`.
///
/// Each placed block is read back through its crossbar with its row
/// permutation; the reassembled matrix is what the aggregation phase
/// actually computes with.
///
/// # Panics
///
/// Panics if `mapping` does not match `adj`'s geometry or refers to
/// missing crossbars.
pub fn corrupt_adjacency_mapped(
    adj: &Matrix,
    array: &CrossbarArray,
    mapping: &Mapping,
) -> Matrix {
    let n = array.n();
    assert_eq!(mapping.n(), n, "mapping/array crossbar size mismatch");
    assert_eq!(
        mapping.grid(),
        adj.rows().div_ceil(n),
        "mapping grid does not match adjacency"
    );
    let mut out = adj.clone();
    for p in mapping.placements() {
        let r0 = p.block_row * n;
        let c0 = p.block_col * n;
        let block = adj.block(r0, c0, n, n);
        let read = array
            .crossbar(p.crossbar)
            .read_binary(&block, Some(&p.row_perm));
        for r in 0..n {
            for c in 0..n {
                if r0 + r < adj.rows() && c0 + c < adj.cols() {
                    out[(r0 + r, c0 + c)] = read[(r, c)];
                }
            }
        }
    }
    out
}

/// Corrupts a binary adjacency stored with the naive sequential layout
/// (block `k` → crossbar `k`, identity rows): the fault-unaware baseline.
///
/// # Panics
///
/// Panics if there are fewer crossbars than blocks.
pub fn corrupt_adjacency_unaware(adj: &Matrix, array: &CrossbarArray) -> Matrix {
    let mapping = crate::mapping::sequential_mapping(adj, array);
    corrupt_adjacency_mapped(adj, array, &mapping)
}

#[cfg(test)]
mod tests {
    use fare_gnn::GnnDims;
    use fare_graph::datasets::ModelKind;
    use fare_reram::StuckPolarity;
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::mapping::{map_adjacency, MappingConfig};

    fn model() -> Gnn {
        let mut rng = StdRng::seed_from_u64(1);
        Gnn::new(
            ModelKind::Sage,
            GnnDims {
                input: 8,
                hidden: 8,
                output: 4,
            },
            &mut rng,
        )
    }

    #[test]
    fn reader_covers_every_param() {
        let m = model();
        let reader = FaultyWeightReader::for_model(&m, 16);
        for ps in m.param_shapes() {
            let fabric = reader.fabric(ps.layer, ps.param);
            assert_eq!(fabric.shape(), (ps.rows, ps.cols));
        }
    }

    #[test]
    fn fault_free_reader_quantises_only() {
        let m = model();
        let reader = FaultyWeightReader::for_model(&m, 16);
        let w = m.param(0, 0);
        let read = reader.read(0, 0, w);
        let res = reader.fabric(0, 0).format().resolution();
        for (a, b) in w.iter().zip(read.iter()) {
            assert!((a - b).abs() <= res);
        }
    }

    #[test]
    fn injection_corrupts_some_weights() {
        let m = model();
        let mut reader = FaultyWeightReader::for_model(&m, 16);
        let mut rng = StdRng::seed_from_u64(2);
        reader.inject(&FaultSpec::density(0.05).sa1_only(), &mut rng);
        assert!(reader.fault_count() > 0);
        let mut any_changed = false;
        for ps in m.param_shapes() {
            let w = m.param(ps.layer, ps.param);
            let read = reader.read(ps.layer, ps.param, w);
            let res = reader.fabric(ps.layer, ps.param).format().resolution();
            if w.iter().zip(read.iter()).any(|(a, b)| (a - b).abs() > 2.0 * res) {
                any_changed = true;
            }
        }
        assert!(any_changed, "5% SA1 faults corrupted nothing");
    }

    #[test]
    fn optimized_placement_no_worse_than_identity() {
        let m = model();
        let mut reader = FaultyWeightReader::for_model(&m, 16);
        let mut rng = StdRng::seed_from_u64(3);
        reader.inject(&FaultSpec::density(0.05), &mut rng);
        let identity_cost: f64 = m
            .param_shapes()
            .iter()
            .map(|ps| {
                reader
                    .fabric(ps.layer, ps.param)
                    .placement_cost(m.param(ps.layer, ps.param), None)
            })
            .sum();
        reader.optimize_placements(&m, Matcher::Hungarian);
        let optimized_cost: f64 = m
            .param_shapes()
            .iter()
            .map(|ps| {
                let placement = reader.placements.get(&(ps.layer, ps.param)).unwrap();
                reader
                    .fabric(ps.layer, ps.param)
                    .placement_cost(m.param(ps.layer, ps.param), Some(placement))
            })
            .sum();
        assert!(
            optimized_cost <= identity_cost + 1e-9,
            "NR placement {optimized_cost} worse than identity {identity_cost}"
        );
        reader.clear_placements();
        assert!(reader.placements.is_empty());
    }

    #[test]
    fn mapped_corruption_beats_unaware() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut adj = Matrix::zeros(16, 16);
        for i in 0..16 {
            for j in (i + 1)..16 {
                if fare_rt::rand::Rng::gen_bool(&mut rng, 0.2) {
                    adj[(i, j)] = 1.0;
                    adj[(j, i)] = 1.0;
                }
            }
        }
        let mut array = CrossbarArray::new(8, 8);
        array.inject(&FaultSpec::density(0.06), &mut rng);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        let mapped = corrupt_adjacency_mapped(&adj, &array, &mapping);
        let unaware = corrupt_adjacency_unaware(&adj, &array);
        let err = |m: &Matrix| {
            adj.iter()
                .zip(m.iter())
                .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
                .count()
        };
        assert!(err(&mapped) <= err(&unaware));
        assert_eq!(err(&mapped), mapping.total_cost());
    }

    #[test]
    fn corruption_preserves_shape_and_binarity() {
        let mut rng = StdRng::seed_from_u64(5);
        let adj = Matrix::from_fn(10, 10, |i, j| if (i + j) % 3 == 0 && i != j { 1.0 } else { 0.0 });
        let mut array = CrossbarArray::new(9, 4);
        array.inject(&FaultSpec::density(0.1), &mut rng);
        let out = corrupt_adjacency_unaware(&adj, &array);
        assert_eq!(out.shape(), adj.shape());
        assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn targeted_sa1_fabricates_edge_in_unaware_layout() {
        let adj = Matrix::zeros(4, 4);
        let mut array = CrossbarArray::new(1, 4);
        array.crossbar_mut(0).inject_fault(2, 3, StuckPolarity::StuckAtOne);
        let out = corrupt_adjacency_unaware(&adj, &array);
        assert_eq!(out[(2, 3)], 1.0);
    }

    #[test]
    fn read_clip_bounds_exploded_weights() {
        let m = model();
        let mut reader = FaultyWeightReader::for_model(&m, 16);
        // Force an MSB SA1 on parameter (0,0), weight (0,0): explosion.
        reader
            .fabric_mut(0, 0)
            .array_mut()
            .crossbar_mut(0)
            .inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let unclipped = reader.read(0, 0, m.param(0, 0));
        assert!(unclipped[(0, 0)].abs() > 10.0, "expected explosion");
        reader.set_clip(Some(1.0));
        assert_eq!(reader.clip(), Some(1.0));
        let clipped = reader.read(0, 0, m.param(0, 0));
        assert!(clipped.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "no fabric")]
    fn unknown_param_panics() {
        let m = model();
        let reader = FaultyWeightReader::for_model(&m, 16);
        reader.fabric(9, 9);
    }
}
