//! Weight-clipping support (paper Section IV-B).
//!
//! Clipping is a *read-side* hardware mechanism: the 16-bit comparator +
//! 2:1 mux on each tile clamps every weight the MVM consumes into
//! `[-θ, θ]`, so a stuck-at-1 cell near the MSB can inflate a weight by
//! at most `θ` instead of by the full fixed-point range. The threshold is
//! a hyper-parameter fixed for the whole run. This module provides the
//! default and a data-driven selector; the clamp itself lives in
//! [`crate::FaultyWeightReader::set_clip`] (hardware read path) and
//! [`fare_gnn::Gnn::clip_weights`] (master-copy regularisation after each
//! update).

use fare_gnn::Gnn;

/// Default clip threshold used by the experiments.
///
/// Healthy GNN weights under Xavier initialisation stay well inside
/// `[-1, 1]`, so θ = 1 never clips a legitimate weight yet caps
/// explosions at ~1 % of the fixed-point range.
pub const DEFAULT_THRESHOLD: f32 = 1.0;

/// Picks a clip threshold from the model's current weight distribution:
/// `margin ×` the largest weight magnitude.
///
/// Useful when resuming training of a pre-trained model whose weights
/// exceed the default threshold.
///
/// # Panics
///
/// Panics if `margin` is not positive.
///
/// # Example
///
/// ```
/// use fare_core::clipping::threshold_for;
/// use fare_gnn::{Gnn, GnnDims};
/// use fare_graph::datasets::ModelKind;
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(0);
/// let model = Gnn::new(ModelKind::Gcn, GnnDims { input: 8, hidden: 8, output: 4 }, &mut rng);
/// let theta = threshold_for(&model, 2.0);
/// assert!(theta >= model.max_weight_magnitude());
/// ```
pub fn threshold_for(model: &Gnn, margin: f32) -> f32 {
    assert!(margin > 0.0, "margin must be positive");
    let max = model.max_weight_magnitude();
    if max == 0.0 {
        DEFAULT_THRESHOLD
    } else {
        margin * max
    }
}

#[cfg(test)]
mod tests {
    use fare_gnn::GnnDims;
    use fare_graph::datasets::ModelKind;
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    fn model() -> Gnn {
        let mut rng = StdRng::seed_from_u64(0);
        Gnn::new(
            ModelKind::Gcn,
            GnnDims {
                input: 8,
                hidden: 8,
                output: 4,
            },
            &mut rng,
        )
    }

    #[test]
    fn default_threshold_covers_fresh_weights() {
        // Xavier-initialised weights must never be clipped by the default.
        let m = model();
        assert!(m.max_weight_magnitude() < DEFAULT_THRESHOLD);
    }

    #[test]
    fn threshold_scales_with_margin() {
        let m = model();
        let t1 = threshold_for(&m, 1.0);
        let t2 = threshold_for(&m, 2.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-6);
    }

    #[test]
    fn zero_weights_fall_back_to_default() {
        let mut m = model();
        for ps in m.param_shapes() {
            m.param_mut(ps.layer, ps.param).map_inplace(|_| 0.0);
        }
        assert_eq!(threshold_for(&m, 2.0), DEFAULT_THRESHOLD);
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn rejects_nonpositive_margin() {
        threshold_for(&model(), 0.0);
    }
}
