//! Algorithm 1: fault-aware mapping of an adjacency matrix onto ReRAM
//! crossbars.
//!
//! The batch adjacency `A` (binary, `N × N`) is decomposed into `n × n`
//! blocks (`n` = crossbar size). Two nested bipartite matchings place it:
//!
//! - **`G₁` (row permutation)** — for every (block, crossbar) pair, match
//!   block rows to crossbar rows minimising stored-value/fault
//!   mismatches. The matching's total weight is the pair's `cost(i, j)`.
//! - **`G₂` (block placement)** — assign blocks to crossbars minimising
//!   total `cost(i, j)`.
//!
//! Between the two, the paper's pruning heuristic (Algorithm 1 lines
//! 8–17) exploits SA1 criticality: if even the best block for a crossbar
//! leaves more SA1 faults exposed than the sparsest block has ones, the
//! crossbar is removed from the pool (when crossbars are plentiful) or
//! the sparsest block is deferred (when they are not), giving the
//! optimiser more freedom.

use fare_matching::{CostMatrix, Matcher};
use fare_reram::{Crossbar, CrossbarArray};
use fare_tensor::Matrix;
use fare_rt::par::prelude::*;

/// Configuration of the mapping algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingConfig {
    /// Assignment solver for both matchings (paper default: b-Suitor).
    pub matcher: Matcher,
    /// Enables the SA1-non-overlap pruning heuristic (lines 8–17).
    pub prune: bool,
    /// Optional tile-locality term (extension beyond the paper).
    pub locality: Option<LocalityConfig>,
}

fare_rt::json_struct!(MappingConfig { matcher, prune, locality });

impl Default for MappingConfig {
    fn default() -> Self {
        Self {
            matcher: Matcher::BSuitor,
            prune: true,
            locality: None,
        }
    }
}

/// Tile-locality extension: blocks in the same block-row produce partial
/// sums that must be accumulated together, so scattering them across
/// tiles costs inter-tile communication. This term biases the `G₂`
/// assignment toward keeping each block-row inside its *target tile*
/// (`block_row` spread evenly over the pool's tiles) at the price of a
/// few extra mismatches — the trade-off the `ablation` binary sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// Crossbars per tile (Table III: 96).
    pub crossbars_per_tile: usize,
    /// Weight λ of the tile-distance penalty, in mismatch units per tile
    /// hop.
    pub weight: f64,
}

fare_rt::json_struct!(LocalityConfig { crossbars_per_tile, weight });

impl LocalityConfig {
    /// Creates a locality term.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars_per_tile == 0` or `weight` is negative.
    pub fn new(crossbars_per_tile: usize, weight: f64) -> Self {
        assert!(crossbars_per_tile > 0, "crossbars_per_tile must be positive");
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight {weight}");
        Self {
            crossbars_per_tile,
            weight,
        }
    }
}

/// Final placement of one adjacency block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlacement {
    /// Block row in the block grid.
    pub block_row: usize,
    /// Block column in the block grid.
    pub block_col: usize,
    /// Index of the crossbar the block is stored on.
    pub crossbar: usize,
    /// Logical row → physical row permutation within the crossbar.
    pub row_perm: Vec<usize>,
    /// Total mismatches under this placement.
    pub mismatch_cost: usize,
    /// SA1-only mismatches (fabricated edges) under this placement.
    pub sa1_cost: usize,
}

fare_rt::json_struct!(BlockPlacement { block_row, block_col, crossbar, row_perm, mismatch_cost, sa1_cost });

/// A complete fault-aware mapping `Π` of one adjacency matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    n: usize,
    grid: usize,
    placements: Vec<BlockPlacement>,
}

fare_rt::json_struct!(Mapping { n, grid, placements });

impl Mapping {
    /// Crossbar dimension the mapping targets.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Blocks per side of the block grid.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// All block placements (every block of the matrix is placed).
    pub fn placements(&self) -> &[BlockPlacement] {
        &self.placements
    }

    /// Total mismatch cost of the mapping.
    pub fn total_cost(&self) -> usize {
        self.placements.iter().map(|p| p.mismatch_cost).sum()
    }

    /// Total SA1-only cost (fabricated edges surviving the mapping).
    pub fn total_sa1_cost(&self) -> usize {
        self.placements.iter().map(|p| p.sa1_cost).sum()
    }

    /// Mean inter-tile spread per block-row: the average number of
    /// *extra* tiles (beyond one) each block-row's partial sums must be
    /// gathered from. 0 means every block-row lives inside a single tile.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars_per_tile == 0`.
    pub fn tile_spread(&self, crossbars_per_tile: usize) -> f64 {
        assert!(crossbars_per_tile > 0, "crossbars_per_tile must be positive");
        if self.grid == 0 {
            return 0.0;
        }
        let mut total_extra = 0usize;
        for br in 0..self.grid {
            let tiles: std::collections::HashSet<usize> = self
                .placements
                .iter()
                .filter(|p| p.block_row == br)
                .map(|p| p.crossbar / crossbars_per_tile)
                .collect();
            total_extra += tiles.len().saturating_sub(1);
        }
        total_extra as f64 / self.grid as f64
    }

    /// Placement of block `(block_row, block_col)`, if present.
    pub fn placement_for(&self, block_row: usize, block_col: usize) -> Option<&BlockPlacement> {
        self.placements
            .iter()
            .find(|p| p.block_row == block_row && p.block_col == block_col)
    }
}

/// Solves the `G₁` row-permutation matching of one block onto one
/// crossbar. Returns `(perm, mismatch_cost, sa1_cost)`.
fn solve_row_permutation(
    block: &Matrix,
    xbar: &Crossbar,
    matcher: Matcher,
) -> (Vec<usize>, usize, usize) {
    let n = block.rows();
    // Fault-free crossbars need no search: identity is optimal (cost 0).
    if xbar.fault_count() == 0 {
        return ((0..n).collect(), 0, 0);
    }
    let cost = CostMatrix::from_fn(n, xbar.n(), |p, q| xbar.row_mismatch(block.row(p), q) as f64);
    let sol = matcher.solve(&cost);
    let perm = sol.to_permutation();
    let mismatch: usize = perm
        .iter()
        .enumerate()
        .map(|(p, &q)| xbar.row_mismatch(block.row(p), q))
        .sum();
    let sa1: usize = perm
        .iter()
        .enumerate()
        .map(|(p, &q)| xbar.row_sa1_mismatch(block.row(p), q))
        .sum();
    (perm, mismatch, sa1)
}

/// Decomposes `adj` into the zero-padded `n × n` block grid.
fn decompose(adj: &Matrix, n: usize) -> (usize, Vec<(usize, usize, Matrix)>) {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    assert!(adj.rows() > 0, "adjacency must be non-empty");
    let grid = adj.rows().div_ceil(n);
    let mut blocks = Vec::with_capacity(grid * grid);
    for br in 0..grid {
        for bc in 0..grid {
            blocks.push((br, bc, adj.block(br * n, bc * n, n, n)));
        }
    }
    (grid, blocks)
}

/// Number of ones in a block (edge density × n²).
fn ones_count(block: &Matrix) -> usize {
    block.count_where(|v| v > 0.5)
}

/// Runs Algorithm 1: the fault-aware mapping of `adj` onto `array`.
///
/// Every block ends up placed (blocks the pruning step defers are
/// greedily placed on leftover crossbars afterwards — the hardware must
/// store the whole matrix either way).
///
/// # Panics
///
/// Panics if `adj` is not square/empty, or there are fewer crossbars than
/// blocks.
///
/// # Example
///
/// ```
/// use fare_core::{map_adjacency, MappingConfig};
/// use fare_reram::CrossbarArray;
/// use fare_tensor::Matrix;
///
/// let adj = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let array = CrossbarArray::new(2, 4); // fault-free
/// let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
/// assert_eq!(mapping.total_cost(), 0);
/// ```
pub fn map_adjacency(adj: &Matrix, array: &CrossbarArray, cfg: &MappingConfig) -> Mapping {
    let n = array.n();
    let (grid, blocks) = decompose(adj, n);
    let b = blocks.len();
    let m = array.len();
    assert!(
        b <= m,
        "not enough crossbars: {b} blocks > {m} crossbars"
    );

    // cost[i][j] for every (block, crossbar) pair, in parallel.
    let pair_solutions: Vec<Vec<(Vec<usize>, usize, usize)>> = blocks
        .par_iter()
        .map(|(_, _, block)| {
            (0..m)
                .map(|j| solve_row_permutation(block, array.crossbar(j), cfg.matcher))
                .collect()
        })
        .collect();

    // Pruning heuristic (lines 8-17).
    let mut live_blocks: Vec<usize> = (0..b).collect();
    let mut live_xbars: Vec<usize> = (0..m).collect();
    let mut deferred_blocks: Vec<usize> = Vec::new();
    if cfg.prune {
        let ones: Vec<usize> = blocks.iter().map(|(_, _, bl)| ones_count(bl)).collect();
        let mut j_idx = 0;
        while j_idx < live_xbars.len() {
            let j = live_xbars[j_idx];
            let min_sa1 = live_blocks
                .iter()
                .map(|&i| pair_solutions[i][j].2)
                .min()
                .unwrap_or(0);
            // The sparsest still-live block.
            let sparsest = live_blocks
                .iter()
                .copied()
                .min_by_key(|&i| ones[i]);
            let Some(sparsest) = sparsest else { break };
            if min_sa1 > ones[sparsest] {
                if live_xbars.len() > live_blocks.len() {
                    // Plenty of crossbars: drop this hopeless one.
                    live_xbars.remove(j_idx);
                    continue; // same j_idx now points at the next crossbar
                } else {
                    // b == m: defer the sparsest block instead for freedom.
                    live_blocks.retain(|&i| i != sparsest);
                    deferred_blocks.push(sparsest);
                }
            }
            j_idx += 1;
        }
    }

    // Final G₂ assignment over the live sets, optionally with the
    // tile-locality penalty.
    let locality_penalty = |block_row: usize, xbar: usize| -> f64 {
        match &cfg.locality {
            None => 0.0,
            Some(loc) => {
                let num_tiles = m.div_ceil(loc.crossbars_per_tile).max(1);
                let target_tile = block_row * num_tiles / grid.max(1);
                let tile = xbar / loc.crossbars_per_tile;
                loc.weight * target_tile.abs_diff(tile) as f64
            }
        }
    };
    let mut placements: Vec<BlockPlacement> = Vec::with_capacity(b);
    let mut used_xbars = vec![false; m];
    if !live_blocks.is_empty() {
        let g2 = CostMatrix::from_fn(live_blocks.len(), live_xbars.len(), |bi, xj| {
            let i = live_blocks[bi];
            let j = live_xbars[xj];
            pair_solutions[i][j].1 as f64 + locality_penalty(blocks[i].0, j)
        });
        let sol = cfg.matcher.solve(&g2);
        for (bi, assigned) in sol.assignment.iter().enumerate() {
            let i = live_blocks[bi];
            let j = live_xbars[assigned.expect("G2 assigns every block")];
            used_xbars[j] = true;
            let (perm, cost, sa1) = pair_solutions[i][j].clone();
            let (br, bc, _) = blocks[i];
            placements.push(BlockPlacement {
                block_row: br,
                block_col: bc,
                crossbar: j,
                row_perm: perm,
                mismatch_cost: cost,
                sa1_cost: sa1,
            });
        }
    }

    // Deferred blocks: greedy best-remaining-crossbar placement.
    for &i in &deferred_blocks {
        let (br, bc, _) = blocks[i];
        let best = (0..m)
            .filter(|&j| !used_xbars[j])
            .min_by_key(|&j| pair_solutions[i][j].1)
            .expect("b <= m guarantees a free crossbar for deferred blocks");
        used_xbars[best] = true;
        let (perm, cost, sa1) = pair_solutions[i][best].clone();
        placements.push(BlockPlacement {
            block_row: br,
            block_col: bc,
            crossbar: best,
            row_perm: perm,
            mismatch_cost: cost,
            sa1_cost: sa1,
        });
    }

    placements.sort_by_key(|p| (p.block_row, p.block_col));
    Mapping {
        n,
        grid,
        placements,
    }
}

/// The cheap fault-unaware mapping: block `k` (row-major) goes to
/// crossbar `k` with the identity row permutation.
///
/// This is both the "fault-unaware" baseline's layout and the starting
/// point neuron reordering permutes within.
///
/// # Panics
///
/// Panics if there are fewer crossbars than blocks.
pub fn sequential_mapping(adj: &Matrix, array: &CrossbarArray) -> Mapping {
    let n = array.n();
    let (grid, blocks) = decompose(adj, n);
    assert!(
        blocks.len() <= array.len(),
        "not enough crossbars: {} blocks > {} crossbars",
        blocks.len(),
        array.len()
    );
    let placements = blocks
        .into_iter()
        .enumerate()
        .map(|(k, (br, bc, block))| {
            let xbar = array.crossbar(k);
            let perm: Vec<usize> = (0..n).collect();
            let mismatch = xbar.mismatch_count(&block, None);
            let sa1: usize = (0..n).map(|p| xbar.row_sa1_mismatch(block.row(p), p)).sum();
            BlockPlacement {
                block_row: br,
                block_col: bc,
                crossbar: k,
                row_perm: perm,
                mismatch_cost: mismatch,
                sa1_cost: sa1,
            }
        })
        .collect();
    Mapping {
        n,
        grid,
        placements,
    }
}

/// Neuron-reordering-style mapping: keeps the sequential block→crossbar
/// assignment but optimises the row permutation within each crossbar.
///
/// This is the aggregation-phase half of the NR baseline — permutation
/// without fault-polarity-aware block placement.
///
/// # Panics
///
/// Panics if there are fewer crossbars than blocks.
pub fn reordered_sequential_mapping(
    adj: &Matrix,
    array: &CrossbarArray,
    matcher: Matcher,
) -> Mapping {
    let n = array.n();
    let (grid, blocks) = decompose(adj, n);
    assert!(
        blocks.len() <= array.len(),
        "not enough crossbars: {} blocks > {} crossbars",
        blocks.len(),
        array.len()
    );
    let placements = blocks
        .into_par_iter()
        .enumerate()
        .map(|(k, (br, bc, block))| {
            let (perm, cost, sa1) = solve_row_permutation(&block, array.crossbar(k), matcher);
            BlockPlacement {
                block_row: br,
                block_col: bc,
                crossbar: k,
                row_perm: perm,
                mismatch_cost: cost,
                sa1_cost: sa1,
            }
        })
        .collect();
    Mapping {
        n,
        grid,
        placements,
    }
}

/// Post-deployment refresh (Section IV-A): keeps the block→crossbar
/// assignment `Π` but recomputes each block's row permutation against the
/// crossbar's *current* fault state.
///
/// This is the linear-cost maintenance step FARe runs after each
/// per-epoch BIST scan instead of re-running the full Algorithm 1.
///
/// # Panics
///
/// Panics if `mapping` refers to crossbars `array` does not have, or its
/// geometry disagrees with `adj`.
pub fn refresh_row_permutations(
    adj: &Matrix,
    array: &CrossbarArray,
    mapping: &Mapping,
    matcher: Matcher,
) -> Mapping {
    let n = array.n();
    assert_eq!(mapping.n, n, "mapping crossbar size mismatch");
    assert_eq!(
        mapping.grid,
        adj.rows().div_ceil(n),
        "mapping grid does not match adjacency"
    );
    let placements = mapping
        .placements
        .par_iter()
        .map(|p| {
            let block = adj.block(p.block_row * n, p.block_col * n, n, n);
            let (perm, cost, sa1) =
                solve_row_permutation(&block, array.crossbar(p.crossbar), matcher);
            BlockPlacement {
                row_perm: perm,
                mismatch_cost: cost,
                sa1_cost: sa1,
                ..p.clone()
            }
        })
        .collect();
    Mapping {
        n,
        grid: mapping.grid,
        placements,
    }
}

#[cfg(test)]
mod tests {
    use fare_reram::{FaultSpec, StuckPolarity};
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::{Rng, SeedableRng};

    use super::*;

    fn random_adj(n: usize, p: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    adj[(i, j)] = 1.0;
                    adj[(j, i)] = 1.0;
                }
            }
        }
        adj
    }

    fn faulty_array(count: usize, n: usize, density: f64, seed: u64) -> CrossbarArray {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut array = CrossbarArray::new(count, n);
        array.inject(&FaultSpec::density(density), &mut rng);
        array
    }

    #[test]
    fn fault_free_mapping_has_zero_cost() {
        let adj = random_adj(16, 0.2, 1);
        let array = CrossbarArray::new(4, 8);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert_eq!(mapping.total_cost(), 0);
        assert_eq!(mapping.placements().len(), 4);
    }

    #[test]
    fn every_block_is_placed_on_distinct_crossbar() {
        let adj = random_adj(24, 0.15, 2);
        let array = faulty_array(12, 8, 0.05, 3);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert_eq!(mapping.placements().len(), 9); // ceil(24/8)² = 9
        let mut used = std::collections::HashSet::new();
        for p in mapping.placements() {
            assert!(used.insert(p.crossbar), "crossbar {} reused", p.crossbar);
            assert!(p.crossbar < array.len());
        }
    }

    #[test]
    fn row_perms_are_valid_permutations() {
        let adj = random_adj(16, 0.2, 4);
        let array = faulty_array(6, 8, 0.05, 5);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        for p in mapping.placements() {
            let mut sorted = p.row_perm.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.row_perm.len(), "duplicate physical rows");
            assert!(p.row_perm.iter().all(|&q| q < array.n()));
        }
    }

    #[test]
    fn fare_cost_no_worse_than_unaware() {
        for seed in 0..5 {
            let adj = random_adj(32, 0.1, seed);
            let array = faulty_array(20, 16, 0.05, seed + 100);
            let fare = map_adjacency(&adj, &array, &MappingConfig::default());
            let unaware = sequential_mapping(&adj, &array);
            assert!(
                fare.total_cost() <= unaware.total_cost(),
                "seed {seed}: fare {} > unaware {}",
                fare.total_cost(),
                unaware.total_cost()
            );
        }
    }

    #[test]
    fn hungarian_no_worse_than_bsuitor() {
        let adj = random_adj(32, 0.1, 9);
        let array = faulty_array(8, 16, 0.05, 10);
        let exact = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                matcher: Matcher::Hungarian,
                prune: false,
                ..MappingConfig::default()
            },
        );
        let approx = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                matcher: Matcher::BSuitor,
                prune: false,
                ..MappingConfig::default()
            },
        );
        assert!(exact.total_cost() <= approx.total_cost());
    }

    #[test]
    fn mapping_dodges_a_targeted_fault() {
        // Crossbar 0 has an SA0 right where the only 1 of the matrix sits;
        // crossbar 1 is clean. FARe must avoid corruption entirely.
        let mut adj = Matrix::zeros(4, 4);
        adj[(0, 1)] = 1.0;
        adj[(1, 0)] = 1.0;
        let mut array = CrossbarArray::new(2, 4);
        array.crossbar_mut(0).inject_fault(0, 1, StuckPolarity::StuckAtZero);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert_eq!(mapping.total_cost(), 0);
    }

    #[test]
    fn reordered_sequential_keeps_block_order() {
        let adj = random_adj(16, 0.2, 11);
        let array = faulty_array(4, 8, 0.05, 12);
        let nr = reordered_sequential_mapping(&adj, &array, Matcher::BSuitor);
        for (k, p) in nr.placements().iter().enumerate() {
            assert_eq!(p.crossbar, k);
        }
        let unaware = sequential_mapping(&adj, &array);
        assert!(nr.total_cost() <= unaware.total_cost());
    }

    #[test]
    fn refresh_keeps_assignment_reoptimises_perms() {
        let adj = random_adj(16, 0.2, 13);
        let mut array = faulty_array(8, 8, 0.02, 14);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        // New post-deployment faults appear.
        let mut rng = StdRng::seed_from_u64(15);
        array.inject(&FaultSpec::density(0.02), &mut rng);
        let refreshed = refresh_row_permutations(&adj, &array, &mapping, Matcher::BSuitor);
        for (a, b) in mapping.placements().iter().zip(refreshed.placements()) {
            assert_eq!(a.crossbar, b.crossbar, "assignment must be preserved");
            assert_eq!((a.block_row, a.block_col), (b.block_row, b.block_col));
        }
        // Refreshed cost reflects the *current* fault state; stale cost
        // fields do not.
        let stale_actual: usize = mapping
            .placements()
            .iter()
            .map(|p| {
                let block = adj.block(p.block_row * 8, p.block_col * 8, 8, 8);
                array
                    .crossbar(p.crossbar)
                    .mismatch_count(&block, Some(&p.row_perm))
            })
            .sum();
        assert!(refreshed.total_cost() <= stale_actual);
    }

    #[test]
    fn pruning_never_loses_blocks() {
        let adj = random_adj(32, 0.02, 16); // sparse: pruning likely active
        let array = faulty_array(16, 8, 0.05, 17);
        let pruned = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                matcher: Matcher::BSuitor,
                prune: true,
                ..MappingConfig::default()
            },
        );
        assert_eq!(pruned.placements().len(), 16);
        let mut seen = std::collections::HashSet::new();
        for p in pruned.placements() {
            assert!(seen.insert((p.block_row, p.block_col)));
        }
    }

    #[test]
    fn placement_lookup() {
        let adj = random_adj(16, 0.2, 18);
        let array = faulty_array(4, 8, 0.03, 19);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert!(mapping.placement_for(0, 0).is_some());
        assert!(mapping.placement_for(1, 1).is_some());
        assert!(mapping.placement_for(2, 0).is_none());
        assert_eq!(mapping.grid(), 2);
        assert_eq!(mapping.n(), 8);
    }

    #[test]
    fn locality_term_reduces_tile_spread() {
        use crate::mapping::LocalityConfig;
        let adj = random_adj(32, 0.15, 30);
        let array = faulty_array(16, 8, 0.04, 31);
        let plain = map_adjacency(&adj, &array, &MappingConfig::default());
        let local = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                locality: Some(LocalityConfig::new(4, 10.0)),
                ..MappingConfig::default()
            },
        );
        assert!(
            local.tile_spread(4) <= plain.tile_spread(4),
            "locality {} vs plain {}",
            local.tile_spread(4),
            plain.tile_spread(4)
        );
        // All blocks still placed on distinct crossbars.
        assert_eq!(local.placements().len(), plain.placements().len());
    }

    #[test]
    fn zero_weight_locality_is_noop() {
        use crate::mapping::LocalityConfig;
        let adj = random_adj(16, 0.2, 32);
        let array = faulty_array(8, 8, 0.05, 33);
        let plain = map_adjacency(&adj, &array, &MappingConfig::default());
        let zero = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                locality: Some(LocalityConfig::new(4, 0.0)),
                ..MappingConfig::default()
            },
        );
        assert_eq!(zero.total_cost(), plain.total_cost());
    }

    #[test]
    fn tile_spread_metric_bounds() {
        let adj = random_adj(16, 0.2, 34);
        let array = faulty_array(8, 8, 0.03, 35);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        // grid = 2, so each block-row has 2 blocks: spread in [0, 1].
        let s = mapping.tile_spread(4);
        assert!((0.0..=1.0).contains(&s), "spread {s}");
        // One-crossbar-per-tile: spread is maximal (both blocks of a row
        // are always on different "tiles").
        assert_eq!(mapping.tile_spread(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "not enough crossbars")]
    fn too_few_crossbars_panics() {
        let adj = random_adj(32, 0.1, 20);
        let array = CrossbarArray::new(2, 8);
        map_adjacency(&adj, &array, &MappingConfig::default());
    }
}
