//! Algorithm 1: fault-aware mapping of an adjacency matrix onto ReRAM
//! crossbars.
//!
//! The batch adjacency `A` (binary, `N × N`) is decomposed into `n × n`
//! blocks (`n` = crossbar size). Two nested bipartite matchings place it:
//!
//! - **`G₁` (row permutation)** — for every (block, crossbar) pair, match
//!   block rows to crossbar rows minimising stored-value/fault
//!   mismatches. The matching's total weight is the pair's `cost(i, j)`.
//! - **`G₂` (block placement)** — assign blocks to crossbars minimising
//!   total `cost(i, j)`.
//!
//! Between the two, the paper's pruning heuristic (Algorithm 1 lines
//! 8–17) exploits SA1 criticality: if even the best block for a crossbar
//! leaves more SA1 faults exposed than the sparsest block has ones, the
//! crossbar is removed from the pool (when crossbars are plentiful) or
//! the sparsest block is deferred (when they are not), giving the
//! optimiser more freedom.
//!
//! # Fast path
//!
//! The `G₁` instance only mentions *faulty* physical rows: a fault-free
//! physical row stores every value exactly, so pairing it with any
//! logical row costs 0. The canonical solver therefore builds an `f × n`
//! cost matrix (`f` = number of faulty rows) instead of `n × n`, assigns
//! each faulty physical row a logical block row, and completes the
//! permutation by zipping the remaining logical rows (ascending) with the
//! fault-free physical rows (ascending) at cost 0. The cost table itself
//! is built by sparse deltas instead of per-entry popcounts: each entry
//! decomposes as `cost(k, l) = sa1cnt(k) + |sa0(k) ∩ row(l)| −
//! |sa1(k) ∩ row(l)|`, a per-physical-row constant plus ±1 per (fault
//! cell, set block bit) incidence, walked through a transposed column
//! index of the packed block ([`fare_reram::PackedRows`]). For the
//! paper's default b-Suitor matcher the instance is then solved by a
//! level-greedy matching over the same base/deviant split — exactly the
//! b-Suitor assignment, because with all preferences derived from the
//! common edge order `(cost, row, col)` the suitor fixed point *is* the
//! greedy matching by that order (see `G1Scratch::greedy_assign`).
//!
//! On top of the reduced kernel, [`map_adjacency`] deduplicates work by
//! *content classes*: blocks with identical bit patterns and crossbars
//! with identical fault planes share a single `G₁` solution, and the
//! unique (block-class, fault-class) pairs are solved on the worker pool
//! with per-worker solver scratch. [`RemapCache`] extends the same idea
//! across BIST epochs: a (block, crossbar) pair whose fault state is
//! unchanged (checked via [`Crossbar::fault_version`]) reuses its stored
//! permutation instead of re-solving.
//!
//! The [`reference`] module keeps a naive serial implementation of the
//! same semantics (the oracle the property tests pin the fast path
//! against) plus the original full `n × n` pipeline used as the benchmark
//! baseline.

use std::cell::RefCell;
use std::collections::HashMap;

use fare_matching::{CostMatrix, Matcher};
use fare_reram::{Crossbar, CrossbarArray, PackedRows, StuckPolarity};
use fare_rt::json::{field, FromJson, Json, JsonError, ToJson};
use fare_rt::par::prelude::*;
use fare_rt::par::{scoped_map, scoped_map_init};
use fare_tensor::Matrix;

/// Configuration of the mapping algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingConfig {
    /// Assignment solver for both matchings (paper default: b-Suitor).
    pub matcher: Matcher,
    /// Enables the SA1-non-overlap pruning heuristic (lines 8–17).
    pub prune: bool,
    /// Optional tile-locality term (extension beyond the paper).
    pub locality: Option<LocalityConfig>,
}

fare_rt::json_struct!(MappingConfig { matcher, prune, locality });

impl Default for MappingConfig {
    fn default() -> Self {
        Self {
            matcher: Matcher::BSuitor,
            prune: true,
            locality: None,
        }
    }
}

/// Tile-locality extension: blocks in the same block-row produce partial
/// sums that must be accumulated together, so scattering them across
/// tiles costs inter-tile communication. This term biases the `G₂`
/// assignment toward keeping each block-row inside its *target tile*
/// (`block_row` spread evenly over the pool's tiles) at the price of a
/// few extra mismatches — the trade-off the `ablation` binary sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// Crossbars per tile (Table III: 96).
    pub crossbars_per_tile: usize,
    /// Weight λ of the tile-distance penalty, in mismatch units per tile
    /// hop.
    pub weight: f64,
}

fare_rt::json_struct!(LocalityConfig { crossbars_per_tile, weight });

impl LocalityConfig {
    /// Creates a locality term.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars_per_tile == 0` or `weight` is negative.
    pub fn new(crossbars_per_tile: usize, weight: f64) -> Self {
        assert!(crossbars_per_tile > 0, "crossbars_per_tile must be positive");
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight {weight}");
        Self {
            crossbars_per_tile,
            weight,
        }
    }
}

/// Final placement of one adjacency block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlacement {
    /// Block row in the block grid.
    pub block_row: usize,
    /// Block column in the block grid.
    pub block_col: usize,
    /// Index of the crossbar the block is stored on.
    pub crossbar: usize,
    /// Logical row → physical row permutation within the crossbar.
    pub row_perm: Vec<usize>,
    /// Total mismatches under this placement.
    pub mismatch_cost: usize,
    /// SA1-only mismatches (fabricated edges) under this placement.
    pub sa1_cost: usize,
}

fare_rt::json_struct!(BlockPlacement { block_row, block_col, crossbar, row_perm, mismatch_cost, sa1_cost });

/// A complete fault-aware mapping `Π` of one adjacency matrix.
#[derive(Debug, Clone)]
pub struct Mapping {
    n: usize,
    grid: usize,
    placements: Vec<BlockPlacement>,
    /// `grid × grid` row-major lookup: placement index of block
    /// `(br, bc)`, or `u32::MAX` when absent. Derived; rebuilt on load.
    index: Vec<u32>,
}

impl PartialEq for Mapping {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.grid == other.grid && self.placements == other.placements
    }
}

impl ToJson for Mapping {
    fn to_json(&self) -> Json {
        // Serialise only the semantic fields; the lookup index is
        // rebuilt on load.
        Json::Obj(vec![
            ("n".to_string(), self.n.to_json()),
            ("grid".to_string(), self.grid.to_json()),
            ("placements".to_string(), self.placements.to_json()),
        ])
    }
}

impl FromJson for Mapping {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let n: usize = field(v, "n")?;
        let grid: usize = field(v, "grid")?;
        let placements: Vec<BlockPlacement> = field(v, "placements")?;
        Ok(Mapping::new(n, grid, placements))
    }
}

impl Mapping {
    /// Builds a mapping, sorting placements into canonical
    /// `(block_row, block_col)` order and indexing them for O(1) lookup.
    fn new(n: usize, grid: usize, mut placements: Vec<BlockPlacement>) -> Self {
        placements.sort_by_key(|p| (p.block_row, p.block_col));
        let mut index = vec![u32::MAX; grid * grid];
        for (k, p) in placements.iter().enumerate() {
            if p.block_row < grid && p.block_col < grid {
                index[p.block_row * grid + p.block_col] = k as u32;
            }
        }
        Self {
            n,
            grid,
            placements,
            index,
        }
    }

    /// Crossbar dimension the mapping targets.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Blocks per side of the block grid.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// All block placements (every block of the matrix is placed).
    pub fn placements(&self) -> &[BlockPlacement] {
        &self.placements
    }

    /// Total mismatch cost of the mapping.
    pub fn total_cost(&self) -> usize {
        self.placements.iter().map(|p| p.mismatch_cost).sum()
    }

    /// Total SA1-only cost (fabricated edges surviving the mapping).
    pub fn total_sa1_cost(&self) -> usize {
        self.placements.iter().map(|p| p.sa1_cost).sum()
    }

    /// Mean inter-tile spread per block-row: the average number of
    /// *extra* tiles (beyond one) each block-row's partial sums must be
    /// gathered from. 0 means every block-row lives inside a single tile.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars_per_tile == 0`.
    pub fn tile_spread(&self, crossbars_per_tile: usize) -> f64 {
        assert!(crossbars_per_tile > 0, "crossbars_per_tile must be positive");
        if self.grid == 0 {
            return 0.0;
        }
        // Single pass: per block-row, count distinct tiles as they appear
        // (block-rows hold at most `grid` tiles, so a linear scan of the
        // per-row tile list beats hashing).
        let mut tiles: Vec<Vec<usize>> = vec![Vec::new(); self.grid];
        let mut total_extra = 0usize;
        for p in &self.placements {
            if p.block_row >= self.grid {
                continue;
            }
            let tile = p.crossbar / crossbars_per_tile;
            let seen = &mut tiles[p.block_row];
            if !seen.contains(&tile) {
                if !seen.is_empty() {
                    total_extra += 1;
                }
                seen.push(tile);
            }
        }
        total_extra as f64 / self.grid as f64
    }

    /// Placement of block `(block_row, block_col)`, if present. O(1).
    pub fn placement_for(&self, block_row: usize, block_col: usize) -> Option<&BlockPlacement> {
        if block_row >= self.grid || block_col >= self.grid {
            return None;
        }
        let k = self.index[block_row * self.grid + block_col];
        if k == u32::MAX {
            None
        } else {
            Some(&self.placements[k as usize])
        }
    }
}

/// `(row_perm, mismatch_cost, sa1_cost)` of one solved `G₁` instance.
type PairSolution = (Vec<usize>, usize, usize);

/// Reusable per-worker scratch for the `G₁` pair solves: the integer
/// cost table, the per-row deviant index, the level set, and the
/// matching state survive across pair solves so the hot loop allocates
/// nothing (cost-only solves) or only the output permutation.
#[derive(Default)]
struct G1Scratch {
    /// `f × n` cost table, row-major.
    costs: Vec<u32>,
    /// CSR offsets into `dev_cols`: instance row `k`'s deviant columns
    /// (entries whose cost differs from — or was touched away from and
    /// back to — row `k`'s base) live at `dev_cols[dev_start[k]..dev_start[k + 1]]`.
    dev_start: Vec<u32>,
    /// Deviant column ids, ascending within each row, deduplicated.
    dev_cols: Vec<u32>,
    /// Per-row collection buffer for deviants before sort/dedup.
    dev_tmp: Vec<u32>,
    /// Bit `v` set iff some entry (base or deviant) has cost `v < 64`.
    level_mask: u64,
    /// Cost levels `≥ 64` (rare: a row with 64+ SA1 cells).
    level_spill: Vec<u32>,
    /// Row → column assignment of the greedy matching.
    assign: Vec<u32>,
    /// Column-taken flags.
    used: Vec<bool>,
    is_faulty: Vec<bool>,
}

/// Transposed one-bit index of a packed block: for each column, the
/// ascending list of block rows with that bit set. Built once per block
/// (or block class) and reused against every crossbar, it turns the
/// `f × n` cost build into sparse deltas — each fault cell `(c, pol)`
/// touches only the rows listed under column `c`.
struct BlockColIdx {
    starts: Vec<u32>,
    rows: Vec<u32>,
}

impl BlockColIdx {
    fn build(packed: &PackedRows) -> Self {
        let n = packed.rows();
        let cols = packed.cols();
        let mut starts = vec![0u32; cols + 2];
        for l in 0..n {
            for (w, &word) in packed.row(l).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let c = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    starts[c + 2] += 1;
                }
            }
        }
        for i in 2..starts.len() {
            starts[i] += starts[i - 1];
        }
        // `starts[c + 1]` is now column c's write cursor; after the fill
        // it has advanced to the final `starts[c + 1]` boundary.
        let mut rows = vec![0u32; starts[cols + 1] as usize];
        for l in 0..n {
            for (w, &word) in packed.row(l).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let c = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let cursor = &mut starts[c + 1];
                    rows[*cursor as usize] = l as u32;
                    *cursor += 1;
                }
            }
        }
        starts.pop();
        Self { starts, rows }
    }

    /// Block rows (ascending) whose bit in column `c` is set.
    fn col(&self, c: usize) -> &[u32] {
        &self.rows[self.starts[c] as usize..self.starts[c + 1] as usize]
    }
}

/// Per-crossbar (or per-fault-class) context for [`solve_reduced_g1`]:
/// the faulty physical rows and each one's SA1 count — the *base cost* a
/// block row with no bits under that row's fault cells pays.
struct XbarG1Ctx {
    faulty: Vec<usize>,
    base: Vec<u32>,
}

impl XbarG1Ctx {
    fn build(xbar: &Crossbar) -> Self {
        let faulty = xbar.faulty_rows();
        let base = faulty
            .iter()
            .map(|&phys| xbar.sa1_row_bits(phys).iter().map(|w| w.count_ones()).sum())
            .collect();
        Self { faulty, base }
    }
}

impl G1Scratch {
    /// Builds the `f × n` cost table by sparse deltas rather than
    /// per-entry popcounts: `cost(k, l) = sa1cnt(k) + |sa0(k) ∩ row(l)|
    /// − |sa1(k) ∩ row(l)|`, i.e. a per-physical-row constant (`ctx.base`)
    /// plus ±1 per (fault cell, set block bit) incidence — walked via
    /// `col_idx`. Intermediate values never dip below zero: deltas for
    /// one entry subtract at most its SA1 base. Alongside the table it
    /// records each row's touched ("deviant") columns as a CSR index and
    /// the set of distinct cost levels present.
    fn build_costs(&mut self, xbar: &Crossbar, col_idx: &BlockColIdx, ctx: &XbarG1Ctx) {
        let n = xbar.n();
        let f = ctx.faulty.len();
        self.costs.clear();
        self.costs.resize(f * n, 0);
        self.dev_start.clear();
        self.dev_start.push(0);
        self.dev_cols.clear();
        self.level_mask = 0;
        self.level_spill.clear();
        for (k, &base) in ctx.base.iter().enumerate() {
            self.costs[k * n..(k + 1) * n].fill(base);
            if base < 64 {
                self.level_mask |= 1 << base;
            } else {
                self.level_spill.push(base);
            }
            self.dev_tmp.clear();
            for &(c, pol) in xbar.row_faults(ctx.faulty[k]) {
                // SA0 mismatches stored ones; SA1 is already counted in
                // the base and mismatches stored zeros — a set bit
                // cancels it.
                let delta: i32 = match pol {
                    StuckPolarity::StuckAtZero => 1,
                    StuckPolarity::StuckAtOne => -1,
                };
                for &l in col_idx.col(c) {
                    let slot = &mut self.costs[k * n + l as usize];
                    *slot = slot.wrapping_add_signed(delta);
                    self.dev_tmp.push(l);
                }
            }
            // Several fault cells can touch the same block row; dedup so
            // each deviant column appears once, ascending.
            self.dev_tmp.sort_unstable();
            self.dev_tmp.dedup();
            for &l in &self.dev_tmp {
                let v = self.costs[k * n + l as usize];
                if v < 64 {
                    self.level_mask |= 1 << v;
                } else {
                    self.level_spill.push(v);
                }
            }
            self.dev_cols.extend_from_slice(&self.dev_tmp);
            self.dev_start.push(self.dev_cols.len() as u32);
        }
        self.level_spill.sort_unstable();
        self.level_spill.dedup();
    }

    /// Greedy matching over the edges of the cost table in ascending
    /// `(cost, row, col)` order, written into `self.assign`.
    ///
    /// This produces *exactly* the b-Suitor assignment: every vertex
    /// ranks its edges by the common total order `(cost, row id, col
    /// id)`, and with preferences derived from one global edge ranking
    /// the suitor fixed point is the unique stable matching — the greedy
    /// matching by that ranking. (Pinned structurally by the matching
    /// crate's `bsuitor_equals_greedy_by_edge_order` property test and
    /// end-to-end by the mapping oracles.) Walking levels through the
    /// base/deviant split costs `O(f·n)` per populated level instead of
    /// materialising and replaying `2·f·n` proposal orders.
    fn greedy_assign(&mut self, f: usize, n: usize, base: &[u32]) {
        self.assign.clear();
        self.assign.resize(f, u32::MAX);
        self.used.clear();
        self.used.resize(n, false);
        let mut matched = 0usize;
        let level = |scratch: &mut Self, v: u32, matched: &mut usize| {
            for k in 0..f {
                if scratch.assign[k] != u32::MAX {
                    continue;
                }
                let devs = &scratch.dev_cols
                    [scratch.dev_start[k] as usize..scratch.dev_start[k + 1] as usize];
                let row = &scratch.costs[k * n..(k + 1) * n];
                let hit = if base[k] == v {
                    // Every non-deviant column sits at the base level;
                    // deviants count only if their net cost is back at
                    // `v`. First free column in ascending order wins.
                    let mut di = 0;
                    let mut found = None;
                    for (l, &taken) in scratch.used.iter().enumerate() {
                        let deviant = devs.get(di) == Some(&(l as u32));
                        if deviant {
                            di += 1;
                        }
                        if !taken && (!deviant || row[l] == v) {
                            found = Some(l);
                            break;
                        }
                    }
                    found
                } else {
                    devs.iter()
                        .map(|&l| l as usize)
                        .find(|&l| !scratch.used[l] && row[l] == v)
                };
                if let Some(l) = hit {
                    scratch.assign[k] = l as u32;
                    scratch.used[l] = true;
                    *matched += 1;
                }
            }
        };
        let mut mask = self.level_mask;
        while mask != 0 && matched < f {
            let v = mask.trailing_zeros();
            mask &= mask - 1;
            level(self, v, &mut matched);
        }
        let spill = std::mem::take(&mut self.level_spill);
        for &v in &spill {
            if matched == f {
                break;
            }
            level(self, v, &mut matched);
        }
        self.level_spill = spill;
        debug_assert_eq!(matched, f, "complete bipartite instance matches every row");
    }
}

/// Fills `scratch.costs` and `scratch.assign` (instance row `k` →
/// logical row) for one reduced `G₁` pair. Requires `f > 0`.
fn g1_assign(
    col_idx: &BlockColIdx,
    xbar: &Crossbar,
    ctx: &XbarG1Ctx,
    matcher: Matcher,
    scratch: &mut G1Scratch,
) {
    let n = xbar.n();
    let f = ctx.faulty.len();
    scratch.build_costs(xbar, col_idx, ctx);
    match matcher {
        // The paper's default: greedy by (cost, row, col) ≡ b-Suitor
        // (see `greedy_assign`).
        Matcher::BSuitor => scratch.greedy_assign(f, n, &ctx.base),
        _ => {
            let costs = &scratch.costs;
            let cost = CostMatrix::from_row_fn(f, n, |k, row| {
                for (l, slot) in row.iter_mut().enumerate() {
                    *slot = costs[k * n + l] as f64;
                }
            });
            let sol = matcher.solve(&cost);
            scratch.assign.clear();
            scratch.assign.extend(sol.assignment.iter().map(|assigned| {
                assigned.expect("reduced G1 assigns every faulty row") as u32
            }));
        }
    }
}

/// `(mismatch, sa1)` of one reduced `G₁` pair, without materialising the
/// permutation — the form the `B × X` pair table needs (`G₂` and pruning
/// consume costs only; full solutions are recomputed for the ~`B` chosen
/// pairs).
fn solve_reduced_g1_costs(
    packed: &PackedRows,
    col_idx: &BlockColIdx,
    xbar: &Crossbar,
    ctx: &XbarG1Ctx,
    matcher: Matcher,
    scratch: &mut G1Scratch,
) -> (usize, usize) {
    let n = packed.rows();
    debug_assert_eq!(n, xbar.n(), "block does not fit the crossbar");
    if ctx.faulty.is_empty() {
        return (0, 0);
    }
    g1_assign(col_idx, xbar, ctx, matcher, scratch);
    let mut mismatch = 0usize;
    let mut sa1 = 0usize;
    for (k, &l) in scratch.assign.iter().enumerate() {
        let l = l as usize;
        mismatch += scratch.costs[k * n + l] as usize;
        sa1 += xbar.row_sa1_mismatch_packed(packed.row(l), ctx.faulty[k]);
    }
    (mismatch, sa1)
}

/// Solves the reduced `f × n` row-permutation matching of one packed
/// block onto one crossbar (`f` = number of faulty physical rows, in
/// ascending order inside `ctx`). Returns a full `n`-element permutation:
/// logical rows not matched to a faulty physical row take the fault-free
/// physical rows in ascending order at cost 0.
fn solve_reduced_g1(
    packed: &PackedRows,
    col_idx: &BlockColIdx,
    xbar: &Crossbar,
    ctx: &XbarG1Ctx,
    matcher: Matcher,
    scratch: &mut G1Scratch,
) -> PairSolution {
    let n = packed.rows();
    debug_assert_eq!(n, xbar.n(), "block does not fit the crossbar");
    let faulty = &ctx.faulty;
    let f = faulty.len();
    // Fault-free crossbars need no search: identity is optimal (cost 0).
    if f == 0 {
        return ((0..n).collect(), 0, 0);
    }
    g1_assign(col_idx, xbar, ctx, matcher, scratch);

    let mut perm = vec![usize::MAX; n];
    let mut mismatch = 0usize;
    let mut sa1 = 0usize;
    for (k, &l) in scratch.assign.iter().enumerate() {
        let l = l as usize;
        perm[l] = faulty[k];
        mismatch += scratch.costs[k * n + l] as usize;
        sa1 += xbar.row_sa1_mismatch_packed(packed.row(l), faulty[k]);
    }
    // Cost-0 completion: remaining logical rows (ascending) onto
    // fault-free physical rows (ascending).
    scratch.is_faulty.clear();
    scratch.is_faulty.resize(n, false);
    for &phys in faulty {
        scratch.is_faulty[phys] = true;
    }
    let is_faulty = &scratch.is_faulty;
    let mut free = (0..n).filter(move |&q| !is_faulty[q]);
    for slot in perm.iter_mut() {
        if *slot == usize::MAX {
            *slot = free.next().expect("as many fault-free rows as unmatched logical rows");
        }
    }
    (perm, mismatch, sa1)
}

/// Decomposes `adj` into the zero-padded `n × n` block grid.
fn decompose(adj: &Matrix, n: usize) -> (usize, Vec<(usize, usize, Matrix)>) {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    assert!(adj.rows() > 0, "adjacency must be non-empty");
    let grid = adj.rows().div_ceil(n);
    let mut blocks = Vec::with_capacity(grid * grid);
    for br in 0..grid {
        for bc in 0..grid {
            blocks.push((br, bc, adj.block(br * n, bc * n, n, n)));
        }
    }
    (grid, blocks)
}

/// Number of ones in a block (edge density × n²).
fn ones_count(block: &Matrix) -> usize {
    block.count_where(|v| v > 0.5)
}

/// Shared back half of Algorithm 1: pruning (lines 8–17), the `G₂`
/// placement over the live sets, and greedy placement of deferred
/// blocks. Parameterised over how pair costs/solutions are produced so
/// the fast path (deduplicated class table) and the reference oracle
/// (naive per-pair table) provably run the identical selection logic.
///
/// `cost_at(i, j)` returns `(mismatch, sa1)` for block `i` on crossbar
/// `j`; `take_at(i, j)` materialises the full solution for the chosen
/// pairs only.
fn assemble_mapping<C, T>(
    n: usize,
    grid: usize,
    block_meta: &[(usize, usize)],
    ones: &[usize],
    m: usize,
    cfg: &MappingConfig,
    cost_at: C,
    take_at: T,
    parallel_g2: bool,
) -> Mapping
where
    C: Fn(usize, usize) -> (usize, usize) + Sync,
    T: Fn(usize, usize) -> PairSolution,
{
    let b = block_meta.len();

    // Pruning heuristic (lines 8-17).
    let mut live_blocks: Vec<usize> = (0..b).collect();
    let mut live_xbars: Vec<usize> = (0..m).collect();
    let mut deferred_blocks: Vec<usize> = Vec::new();
    if cfg.prune {
        let mut j_idx = 0;
        while j_idx < live_xbars.len() {
            let j = live_xbars[j_idx];
            let min_sa1 = live_blocks
                .iter()
                .map(|&i| cost_at(i, j).1)
                .min()
                .unwrap_or(0);
            // The sparsest still-live block.
            let sparsest = live_blocks
                .iter()
                .copied()
                .min_by_key(|&i| ones[i]);
            let Some(sparsest) = sparsest else { break };
            if min_sa1 > ones[sparsest] {
                if live_xbars.len() > live_blocks.len() {
                    // Plenty of crossbars: drop this hopeless one.
                    live_xbars.remove(j_idx);
                    continue; // same j_idx now points at the next crossbar
                } else {
                    // b == m: defer the sparsest block instead for freedom.
                    live_blocks.retain(|&i| i != sparsest);
                    deferred_blocks.push(sparsest);
                }
            }
            j_idx += 1;
        }
    }

    // Final G₂ assignment over the live sets, optionally with the
    // tile-locality penalty.
    let locality_penalty = |block_row: usize, xbar: usize| -> f64 {
        match &cfg.locality {
            None => 0.0,
            Some(loc) => {
                let num_tiles = m.div_ceil(loc.crossbars_per_tile).max(1);
                let target_tile = block_row * num_tiles / grid.max(1);
                let tile = xbar / loc.crossbars_per_tile;
                loc.weight * target_tile.abs_diff(tile) as f64
            }
        }
    };
    let mut placements: Vec<BlockPlacement> = Vec::with_capacity(b);
    let mut used_xbars = vec![false; m];
    if !live_blocks.is_empty() {
        let g2_entry = |i: usize, j: usize| -> f64 {
            cost_at(i, j).0 as f64 + locality_penalty(block_meta[i].0, j)
        };
        let g2 = if parallel_g2 {
            // Row-parallel assembly; entries are computed by the exact
            // expression the serial branch uses, so both are bit-equal.
            let xbars = &live_xbars;
            let rows: Vec<Vec<f64>> = scoped_map(live_blocks.clone(), |i| {
                xbars.iter().map(|&j| g2_entry(i, j)).collect()
            });
            CostMatrix::from_vec(
                live_blocks.len(),
                live_xbars.len(),
                rows.concat(),
            )
        } else {
            CostMatrix::from_fn(live_blocks.len(), live_xbars.len(), |bi, xj| {
                g2_entry(live_blocks[bi], live_xbars[xj])
            })
        };
        let sol = cfg.matcher.solve(&g2);
        for (bi, assigned) in sol.assignment.iter().enumerate() {
            let i = live_blocks[bi];
            let j = live_xbars[assigned.expect("G2 assigns every block")];
            used_xbars[j] = true;
            let (perm, cost, sa1) = take_at(i, j);
            let (br, bc) = block_meta[i];
            placements.push(BlockPlacement {
                block_row: br,
                block_col: bc,
                crossbar: j,
                row_perm: perm,
                mismatch_cost: cost,
                sa1_cost: sa1,
            });
        }
    }

    // Deferred blocks: greedy best-remaining-crossbar placement.
    for &i in &deferred_blocks {
        let (br, bc) = block_meta[i];
        let best = (0..m)
            .filter(|&j| !used_xbars[j])
            .min_by_key(|&j| cost_at(i, j).0)
            .expect("b <= m guarantees a free crossbar for deferred blocks");
        used_xbars[best] = true;
        let (perm, cost, sa1) = take_at(i, best);
        placements.push(BlockPlacement {
            block_row: br,
            block_col: bc,
            crossbar: best,
            row_perm: perm,
            mismatch_cost: cost,
            sa1_cost: sa1,
        });
    }

    Mapping::new(n, grid, placements)
}

/// Cross-epoch memo of solved `G₁` instances, keyed by block position.
///
/// [`map_adjacency_cached`] fills it with the chosen placements;
/// [`refresh_row_permutations_cached`] re-solves only the pairs whose
/// crossbar mutated since (detected via [`Crossbar::fault_version`]) and
/// reuses the stored permutation for the rest — the common case after a
/// BIST scan that found few new faults.
///
/// The cache assumes the adjacency block at a given `(block_row,
/// block_col)` key is the same across calls (true per batch in the
/// trainer, which owns one cache per batch state). A full
/// [`map_adjacency_cached`] clears it first, so re-mapping a different
/// adjacency through the same cache is safe.
#[derive(Debug, Clone, Default)]
pub struct RemapCache {
    entries: HashMap<(usize, usize), CacheEntry>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    crossbar: usize,
    version: u64,
    solution: PairSolution,
}

impl RemapCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoised block placements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all memoised solutions.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn store(&mut self, array: &CrossbarArray, placements: &[BlockPlacement]) {
        for p in placements {
            self.entries.insert(
                (p.block_row, p.block_col),
                CacheEntry {
                    crossbar: p.crossbar,
                    version: array.crossbar(p.crossbar).fault_version(),
                    solution: (p.row_perm.clone(), p.mismatch_cost, p.sa1_cost),
                },
            );
        }
    }
}

/// Runs Algorithm 1: the fault-aware mapping of `adj` onto `array`.
///
/// Every block ends up placed (blocks the pruning step defers are
/// greedily placed on leftover crossbars afterwards — the hardware must
/// store the whole matrix either way).
///
/// # Panics
///
/// Panics if `adj` is not square/empty, or there are fewer crossbars than
/// blocks.
///
/// # Example
///
/// ```
/// use fare_core::{map_adjacency, MappingConfig};
/// use fare_reram::CrossbarArray;
/// use fare_tensor::Matrix;
///
/// let adj = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let array = CrossbarArray::new(2, 4); // fault-free
/// let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
/// assert_eq!(mapping.total_cost(), 0);
/// ```
pub fn map_adjacency(adj: &Matrix, array: &CrossbarArray, cfg: &MappingConfig) -> Mapping {
    let mut cache = RemapCache::new();
    map_adjacency_cached(adj, array, cfg, &mut cache)
}

/// [`map_adjacency`] that additionally warms `cache` with the chosen
/// placements so later [`refresh_row_permutations_cached`] calls skip
/// crossbars whose fault state did not change.
pub fn map_adjacency_cached(
    adj: &Matrix,
    array: &CrossbarArray,
    cfg: &MappingConfig,
    cache: &mut RemapCache,
) -> Mapping {
    let _span = fare_obs::trace::span("core.mapping.map_adjacency");
    fare_obs::timers::CORE_MAPPING_MAP.time(|| map_adjacency_cached_inner(adj, array, cfg, cache))
}

fn map_adjacency_cached_inner(
    adj: &Matrix,
    array: &CrossbarArray,
    cfg: &MappingConfig,
    cache: &mut RemapCache,
) -> Mapping {
    fare_obs::counters::CORE_MAPPINGS_BUILT.incr();
    let n = array.n();
    let (grid, blocks) = decompose(adj, n);
    let b = blocks.len();
    let m = array.len();
    assert!(b <= m, "not enough crossbars: {b} blocks > {m} crossbars");

    let packed: Vec<PackedRows> = blocks
        .iter()
        .map(|(_, _, block)| PackedRows::from_matrix(block))
        .collect();
    let block_meta: Vec<(usize, usize)> = blocks.iter().map(|(br, bc, _)| (*br, *bc)).collect();
    let ones: Vec<usize> = packed
        .iter()
        .map(|p| (0..p.rows()).map(|r| p.ones(r)).sum())
        .collect();

    // Content classes: identical blocks share one class; crossbars with
    // identical fault planes share one class. G₁ solutions are pure
    // functions of (block bits, fault planes, matcher), so solving one
    // representative per class pair is bit-exact.
    let mut block_class: Vec<u32> = vec![0; b];
    let mut block_reps: Vec<usize> = Vec::new();
    {
        let mut seen: HashMap<&[u64], u32> = HashMap::new();
        for (i, p) in packed.iter().enumerate() {
            let next = block_reps.len() as u32;
            let class = *seen.entry(p.bits()).or_insert_with(|| {
                block_reps.push(i);
                next
            });
            block_class[i] = class;
        }
    }
    let mut xbar_class: Vec<u32> = vec![0; m];
    let mut xbar_reps: Vec<usize> = Vec::new();
    {
        let mut seen: HashMap<(&[u64], &[u64]), u32> = HashMap::new();
        for j in 0..m {
            let planes = array.crossbar(j).fault_bits();
            let next = xbar_reps.len() as u32;
            let class = *seen.entry(planes).or_insert_with(|| {
                xbar_reps.push(j);
                next
            });
            xbar_class[j] = class;
        }
    }
    // Per-class precomputation, amortised across every pair the class
    // participates in: each block class gets its transposed column index
    // (reused against all fault classes), each fault class its base
    // costs/histogram (reused against all block classes).
    let col_idx: Vec<BlockColIdx> = block_reps
        .iter()
        .map(|&i| BlockColIdx::build(&packed[i]))
        .collect();
    let xbar_ctx: Vec<XbarG1Ctx> = xbar_reps
        .iter()
        .map(|&j| XbarG1Ctx::build(array.crossbar(j)))
        .collect();

    // Solve each unique (block-class, fault-class) pair exactly once, on
    // the worker pool, with per-worker solver scratch.
    let bc_count = block_reps.len();
    let xc_count = xbar_reps.len();
    let pairs: Vec<(usize, usize)> = (0..bc_count)
        .flat_map(|ci| (0..xc_count).map(move |cj| (ci, cj)))
        .collect();
    fare_obs::counters::CORE_MAPPING_PAIRS_SOLVED.add(pairs.len() as u64);
    // The pair table needs only `(mismatch, sa1)` — `G₂` and the pruning
    // heuristic consume costs, never permutations — so the fan-out solve
    // skips permutation assembly (and its per-pair allocation) entirely.
    // Full solutions are recomputed below for the ~`B` chosen pairs.
    let unique: Vec<(usize, usize)> = {
        let packed = &packed;
        let block_reps = &block_reps;
        let xbar_reps = &xbar_reps;
        let col_idx = &col_idx;
        let xbar_ctx = &xbar_ctx;
        scoped_map_init(pairs, G1Scratch::default, |scratch, (ci, cj)| {
            solve_reduced_g1_costs(
                &packed[block_reps[ci]],
                &col_idx[ci],
                array.crossbar(xbar_reps[cj]),
                &xbar_ctx[cj],
                cfg.matcher,
                scratch,
            )
        })
    };
    let cost_at =
        |i: usize, j: usize| unique[block_class[i] as usize * xc_count + xbar_class[j] as usize];
    let take_scratch = RefCell::new(G1Scratch::default());

    let mapping = assemble_mapping(
        n,
        grid,
        &block_meta,
        &ones,
        m,
        cfg,
        cost_at,
        |i, j| {
            // Deterministic re-solve of a chosen pair: same inputs as the
            // cost-only pass, so the permutation realises exactly the
            // `(mismatch, sa1)` the table promised. Crossbar `j` shares
            // its fault planes with its class representative, so the
            // class context applies verbatim.
            solve_reduced_g1(
                &packed[i],
                &col_idx[block_class[i] as usize],
                array.crossbar(j),
                &xbar_ctx[xbar_class[j] as usize],
                cfg.matcher,
                &mut take_scratch.borrow_mut(),
            )
        },
        true,
    );

    cache.clear();
    cache.store(array, mapping.placements());
    mapping
}

/// The cheap fault-unaware mapping: block `k` (row-major) goes to
/// crossbar `k` with the identity row permutation.
///
/// This is both the "fault-unaware" baseline's layout and the starting
/// point neuron reordering permutes within.
///
/// # Panics
///
/// Panics if there are fewer crossbars than blocks.
pub fn sequential_mapping(adj: &Matrix, array: &CrossbarArray) -> Mapping {
    let n = array.n();
    let (grid, blocks) = decompose(adj, n);
    assert!(
        blocks.len() <= array.len(),
        "not enough crossbars: {} blocks > {} crossbars",
        blocks.len(),
        array.len()
    );
    let placements = blocks
        .into_iter()
        .enumerate()
        .map(|(k, (br, bc, block))| {
            let xbar = array.crossbar(k);
            let perm: Vec<usize> = (0..n).collect();
            let mismatch = xbar.mismatch_count(&block, None);
            let sa1: usize = (0..n).map(|p| xbar.row_sa1_mismatch(block.row(p), p)).sum();
            BlockPlacement {
                block_row: br,
                block_col: bc,
                crossbar: k,
                row_perm: perm,
                mismatch_cost: mismatch,
                sa1_cost: sa1,
            }
        })
        .collect();
    Mapping::new(n, grid, placements)
}

/// Neuron-reordering-style mapping: keeps the sequential block→crossbar
/// assignment but optimises the row permutation within each crossbar.
///
/// This is the aggregation-phase half of the NR baseline — permutation
/// without fault-polarity-aware block placement.
///
/// # Panics
///
/// Panics if there are fewer crossbars than blocks.
pub fn reordered_sequential_mapping(
    adj: &Matrix,
    array: &CrossbarArray,
    matcher: Matcher,
) -> Mapping {
    let n = array.n();
    let (grid, blocks) = decompose(adj, n);
    assert!(
        blocks.len() <= array.len(),
        "not enough crossbars: {} blocks > {} crossbars",
        blocks.len(),
        array.len()
    );
    let items: Vec<(usize, (usize, usize, Matrix))> = blocks.into_iter().enumerate().collect();
    let placements = scoped_map_init(items, G1Scratch::default, |scratch, (k, (br, bc, block))| {
        let xbar = array.crossbar(k);
        let packed = PackedRows::from_matrix(&block);
        let col_idx = BlockColIdx::build(&packed);
        let ctx = XbarG1Ctx::build(xbar);
        let (perm, cost, sa1) = solve_reduced_g1(&packed, &col_idx, xbar, &ctx, matcher, scratch);
        BlockPlacement {
            block_row: br,
            block_col: bc,
            crossbar: k,
            row_perm: perm,
            mismatch_cost: cost,
            sa1_cost: sa1,
        }
    });
    Mapping::new(n, grid, placements)
}

/// Post-deployment refresh (Section IV-A): keeps the block→crossbar
/// assignment `Π` but recomputes each block's row permutation against the
/// crossbar's *current* fault state.
///
/// This is the linear-cost maintenance step FARe runs after each
/// per-epoch BIST scan instead of re-running the full Algorithm 1.
///
/// # Panics
///
/// Panics if `mapping` refers to crossbars `array` does not have, or its
/// geometry disagrees with `adj`.
pub fn refresh_row_permutations(
    adj: &Matrix,
    array: &CrossbarArray,
    mapping: &Mapping,
    matcher: Matcher,
) -> Mapping {
    let mut cache = RemapCache::new();
    refresh_row_permutations_cached(adj, array, mapping, matcher, &mut cache)
}

/// [`refresh_row_permutations`] with cross-epoch memoisation: pairs whose
/// crossbar's [`Crossbar::fault_version`] matches the cached entry reuse
/// the stored permutation; only mutated crossbars are re-solved (in
/// parallel). With an empty cache this degenerates to a full (parallel)
/// recompute, so results are identical either way.
///
/// # Panics
///
/// Panics if `mapping` refers to crossbars `array` does not have, or its
/// geometry disagrees with `adj`.
pub fn refresh_row_permutations_cached(
    adj: &Matrix,
    array: &CrossbarArray,
    mapping: &Mapping,
    matcher: Matcher,
    cache: &mut RemapCache,
) -> Mapping {
    let _span = fare_obs::trace::span("core.mapping.refresh");
    fare_obs::timers::CORE_MAPPING_REFRESH
        .time(|| refresh_row_permutations_cached_inner(adj, array, mapping, matcher, cache))
}

fn refresh_row_permutations_cached_inner(
    adj: &Matrix,
    array: &CrossbarArray,
    mapping: &Mapping,
    matcher: Matcher,
    cache: &mut RemapCache,
) -> Mapping {
    let n = array.n();
    assert_eq!(mapping.n, n, "mapping crossbar size mismatch");
    assert_eq!(
        mapping.grid,
        adj.rows().div_ceil(n),
        "mapping grid does not match adjacency"
    );

    let mut solutions: Vec<Option<PairSolution>> = vec![None; mapping.placements.len()];
    let mut misses: Vec<(usize, usize, usize, usize)> = Vec::new();
    for (idx, p) in mapping.placements.iter().enumerate() {
        let hit = cache.entries.get(&(p.block_row, p.block_col)).filter(|e| {
            e.crossbar == p.crossbar
                && e.version == array.crossbar(p.crossbar).fault_version()
        });
        match hit {
            Some(e) => solutions[idx] = Some(e.solution.clone()),
            None => misses.push((idx, p.block_row, p.block_col, p.crossbar)),
        }
    }
    fare_obs::counters::CORE_REMAP_CACHE_HITS
        .add((mapping.placements.len() - misses.len()) as u64);
    fare_obs::counters::CORE_REMAP_CACHE_MISSES.add(misses.len() as u64);

    let solved = scoped_map_init(misses, G1Scratch::default, |scratch, (idx, br, bc, xi)| {
        let block = adj.block(br * n, bc * n, n, n);
        let packed = PackedRows::from_matrix(&block);
        let col_idx = BlockColIdx::build(&packed);
        let xbar = array.crossbar(xi);
        let ctx = XbarG1Ctx::build(xbar);
        (
            idx,
            solve_reduced_g1(&packed, &col_idx, xbar, &ctx, matcher, scratch),
        )
    });
    for (idx, sol) in solved {
        solutions[idx] = Some(sol);
    }

    let placements: Vec<BlockPlacement> = mapping
        .placements
        .iter()
        .zip(solutions)
        .map(|(p, sol)| {
            let (perm, cost, sa1) = sol.expect("every placement solved or cached");
            BlockPlacement {
                row_perm: perm,
                mismatch_cost: cost,
                sa1_cost: sa1,
                ..p.clone()
            }
        })
        .collect();
    let refreshed = Mapping::new(n, mapping.grid, placements);
    cache.store(array, refreshed.placements());
    refreshed
}

/// Naive serial oracles for the fast path, plus the pre-fast-path full
/// `n × n` pipeline kept as the benchmark baseline.
///
/// The functions here intentionally avoid the packed kernels, the class
/// deduplication, the dense integer b-Suitor, and the worker pool: they
/// are the smallest honest implementation of the mapping semantics. The
/// property tests assert the production path is bit-identical to them.
pub mod reference {
    use super::*;

    /// Serial, slice-kernel version of the reduced `G₁` solve. Same
    /// semantics as the fast path: an `f × n` instance over the faulty
    /// physical rows, completed with fault-free rows at cost 0.
    pub fn solve_row_permutation(
        block: &Matrix,
        xbar: &Crossbar,
        matcher: Matcher,
    ) -> (Vec<usize>, usize, usize) {
        let n = block.rows();
        let faulty = xbar.faulty_rows();
        if faulty.is_empty() {
            return ((0..n).collect(), 0, 0);
        }
        let cost = CostMatrix::from_fn(faulty.len(), n, |k, l| {
            xbar.row_mismatch(block.row(l), faulty[k]) as f64
        });
        let sol = matcher.solve(&cost);
        let mut perm = vec![usize::MAX; n];
        let mut mismatch = 0usize;
        let mut sa1 = 0usize;
        for (k, assigned) in sol.assignment.iter().enumerate() {
            let l = assigned.expect("reduced G1 assigns every faulty row");
            perm[l] = faulty[k];
            mismatch += xbar.row_mismatch(block.row(l), faulty[k]);
            sa1 += xbar.row_sa1_mismatch(block.row(l), faulty[k]);
        }
        let mut free = (0..xbar.n()).filter(|q| !faulty.contains(q));
        for slot in perm.iter_mut() {
            if *slot == usize::MAX {
                *slot = free
                    .next()
                    .expect("as many fault-free rows as unmatched logical rows");
            }
        }
        (perm, mismatch, sa1)
    }

    /// Serial oracle for [`super::map_adjacency`]: solves every
    /// (block, crossbar) pair naively, then runs the identical pruning
    /// and `G₂` selection.
    pub fn map_adjacency(adj: &Matrix, array: &CrossbarArray, cfg: &MappingConfig) -> Mapping {
        let n = array.n();
        let (grid, blocks) = decompose(adj, n);
        let b = blocks.len();
        let m = array.len();
        assert!(b <= m, "not enough crossbars: {b} blocks > {m} crossbars");
        let pair: Vec<Vec<PairSolution>> = blocks
            .iter()
            .map(|(_, _, block)| {
                (0..m)
                    .map(|j| solve_row_permutation(block, array.crossbar(j), cfg.matcher))
                    .collect()
            })
            .collect();
        let block_meta: Vec<(usize, usize)> = blocks.iter().map(|(br, bc, _)| (*br, *bc)).collect();
        let ones: Vec<usize> = blocks.iter().map(|(_, _, bl)| ones_count(bl)).collect();
        assemble_mapping(
            n,
            grid,
            &block_meta,
            &ones,
            m,
            cfg,
            |i, j| (pair[i][j].1, pair[i][j].2),
            |i, j| pair[i][j].clone(),
            false,
        )
    }

    /// Serial oracle for [`super::refresh_row_permutations`].
    pub fn refresh_row_permutations(
        adj: &Matrix,
        array: &CrossbarArray,
        mapping: &Mapping,
        matcher: Matcher,
    ) -> Mapping {
        let n = array.n();
        assert_eq!(mapping.n(), n, "mapping crossbar size mismatch");
        assert_eq!(
            mapping.grid(),
            adj.rows().div_ceil(n),
            "mapping grid does not match adjacency"
        );
        let placements = mapping
            .placements()
            .iter()
            .map(|p| {
                let block = adj.block(p.block_row * n, p.block_col * n, n, n);
                let (perm, cost, sa1) =
                    solve_row_permutation(&block, array.crossbar(p.crossbar), matcher);
                BlockPlacement {
                    row_perm: perm,
                    mismatch_cost: cost,
                    sa1_cost: sa1,
                    ..p.clone()
                }
            })
            .collect();
        Mapping::new(n, mapping.grid(), placements)
    }

    /// The original full `n × n` `G₁` solve: every physical row is a
    /// column of the instance, fault-free ones included. Kept as the
    /// benchmark baseline the fast path's speedup is measured against.
    pub fn solve_row_permutation_full(
        block: &Matrix,
        xbar: &Crossbar,
        matcher: Matcher,
    ) -> (Vec<usize>, usize, usize) {
        let n = block.rows();
        if xbar.fault_count() == 0 {
            return ((0..n).collect(), 0, 0);
        }
        let cost =
            CostMatrix::from_fn(n, xbar.n(), |p, q| xbar.row_mismatch(block.row(p), q) as f64);
        let sol = matcher.solve(&cost);
        let perm = sol.to_permutation();
        let mismatch: usize = perm
            .iter()
            .enumerate()
            .map(|(p, &q)| xbar.row_mismatch(block.row(p), q))
            .sum();
        let sa1: usize = perm
            .iter()
            .enumerate()
            .map(|(p, &q)| xbar.row_sa1_mismatch(block.row(p), q))
            .sum();
        (perm, mismatch, sa1)
    }

    /// The pre-fast-path pipeline: full `n × n` pair solves (parallel
    /// over blocks, as before), no deduplication, no packed kernels.
    /// This is the benchmark baseline; [`super::map_adjacency`] replaces
    /// it in production.
    pub fn map_adjacency_full(adj: &Matrix, array: &CrossbarArray, cfg: &MappingConfig) -> Mapping {
        let n = array.n();
        let (grid, blocks) = decompose(adj, n);
        let b = blocks.len();
        let m = array.len();
        assert!(b <= m, "not enough crossbars: {b} blocks > {m} crossbars");
        let pair: Vec<Vec<PairSolution>> = blocks
            .par_iter()
            .map(|(_, _, block)| {
                (0..m)
                    .map(|j| solve_row_permutation_full(block, array.crossbar(j), cfg.matcher))
                    .collect()
            })
            .collect();
        let block_meta: Vec<(usize, usize)> = blocks.iter().map(|(br, bc, _)| (*br, *bc)).collect();
        let ones: Vec<usize> = blocks.iter().map(|(_, _, bl)| ones_count(bl)).collect();
        assemble_mapping(
            n,
            grid,
            &block_meta,
            &ones,
            m,
            cfg,
            |i, j| (pair[i][j].1, pair[i][j].2),
            |i, j| pair[i][j].clone(),
            false,
        )
    }

    /// Full-matrix refresh (the pre-fast-path maintenance step): re-solve
    /// the full `n × n` instance for every placement. Benchmark baseline
    /// for [`super::refresh_row_permutations_cached`].
    pub fn refresh_row_permutations_full(
        adj: &Matrix,
        array: &CrossbarArray,
        mapping: &Mapping,
        matcher: Matcher,
    ) -> Mapping {
        let n = array.n();
        assert_eq!(mapping.n(), n, "mapping crossbar size mismatch");
        let placements = mapping
            .placements()
            .iter()
            .map(|p| {
                let block = adj.block(p.block_row * n, p.block_col * n, n, n);
                let (perm, cost, sa1) =
                    solve_row_permutation_full(&block, array.crossbar(p.crossbar), matcher);
                BlockPlacement {
                    row_perm: perm,
                    mismatch_cost: cost,
                    sa1_cost: sa1,
                    ..p.clone()
                }
            })
            .collect();
        Mapping::new(n, mapping.grid(), placements)
    }
}

#[cfg(test)]
mod tests {
    use fare_reram::{FaultSpec, StuckPolarity};
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::{Rng, SeedableRng};

    use super::*;

    fn random_adj(n: usize, p: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    adj[(i, j)] = 1.0;
                    adj[(j, i)] = 1.0;
                }
            }
        }
        adj
    }

    fn faulty_array(count: usize, n: usize, density: f64, seed: u64) -> CrossbarArray {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut array = CrossbarArray::new(count, n);
        array.inject(&FaultSpec::density(density), &mut rng);
        array
    }

    #[test]
    fn fault_free_mapping_has_zero_cost() {
        let adj = random_adj(16, 0.2, 1);
        let array = CrossbarArray::new(4, 8);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert_eq!(mapping.total_cost(), 0);
        assert_eq!(mapping.placements().len(), 4);
    }

    #[test]
    fn every_block_is_placed_on_distinct_crossbar() {
        let adj = random_adj(24, 0.15, 2);
        let array = faulty_array(12, 8, 0.05, 3);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert_eq!(mapping.placements().len(), 9); // ceil(24/8)² = 9
        let mut used = std::collections::HashSet::new();
        for p in mapping.placements() {
            assert!(used.insert(p.crossbar), "crossbar {} reused", p.crossbar);
            assert!(p.crossbar < array.len());
        }
    }

    #[test]
    fn row_perms_are_valid_permutations() {
        let adj = random_adj(16, 0.2, 4);
        let array = faulty_array(6, 8, 0.05, 5);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        for p in mapping.placements() {
            let mut sorted = p.row_perm.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.row_perm.len(), "duplicate physical rows");
            assert!(p.row_perm.iter().all(|&q| q < array.n()));
        }
    }

    #[test]
    fn fare_cost_no_worse_than_unaware() {
        for seed in 0..5 {
            let adj = random_adj(32, 0.1, seed);
            let array = faulty_array(20, 16, 0.05, seed + 100);
            let fare = map_adjacency(&adj, &array, &MappingConfig::default());
            let unaware = sequential_mapping(&adj, &array);
            assert!(
                fare.total_cost() <= unaware.total_cost(),
                "seed {seed}: fare {} > unaware {}",
                fare.total_cost(),
                unaware.total_cost()
            );
        }
    }

    #[test]
    fn hungarian_no_worse_than_bsuitor() {
        let adj = random_adj(32, 0.1, 9);
        let array = faulty_array(8, 16, 0.05, 10);
        let exact = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                matcher: Matcher::Hungarian,
                prune: false,
                ..MappingConfig::default()
            },
        );
        let approx = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                matcher: Matcher::BSuitor,
                prune: false,
                ..MappingConfig::default()
            },
        );
        assert!(exact.total_cost() <= approx.total_cost());
    }

    #[test]
    fn mapping_dodges_a_targeted_fault() {
        // Crossbar 0 has an SA0 right where the only 1 of the matrix sits;
        // crossbar 1 is clean. FARe must avoid corruption entirely.
        let mut adj = Matrix::zeros(4, 4);
        adj[(0, 1)] = 1.0;
        adj[(1, 0)] = 1.0;
        let mut array = CrossbarArray::new(2, 4);
        array.crossbar_mut(0).inject_fault(0, 1, StuckPolarity::StuckAtZero);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert_eq!(mapping.total_cost(), 0);
    }

    #[test]
    fn reordered_sequential_keeps_block_order() {
        let adj = random_adj(16, 0.2, 11);
        let array = faulty_array(4, 8, 0.05, 12);
        let nr = reordered_sequential_mapping(&adj, &array, Matcher::BSuitor);
        for (k, p) in nr.placements().iter().enumerate() {
            assert_eq!(p.crossbar, k);
        }
        let unaware = sequential_mapping(&adj, &array);
        assert!(nr.total_cost() <= unaware.total_cost());
    }

    #[test]
    fn refresh_keeps_assignment_reoptimises_perms() {
        let adj = random_adj(16, 0.2, 13);
        let mut array = faulty_array(8, 8, 0.02, 14);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        // New post-deployment faults appear.
        let mut rng = StdRng::seed_from_u64(15);
        array.inject(&FaultSpec::density(0.02), &mut rng);
        let refreshed = refresh_row_permutations(&adj, &array, &mapping, Matcher::BSuitor);
        for (a, b) in mapping.placements().iter().zip(refreshed.placements()) {
            assert_eq!(a.crossbar, b.crossbar, "assignment must be preserved");
            assert_eq!((a.block_row, a.block_col), (b.block_row, b.block_col));
        }
        // Refreshed cost reflects the *current* fault state; stale cost
        // fields do not.
        let stale_actual: usize = mapping
            .placements()
            .iter()
            .map(|p| {
                let block = adj.block(p.block_row * 8, p.block_col * 8, 8, 8);
                array
                    .crossbar(p.crossbar)
                    .mismatch_count(&block, Some(&p.row_perm))
            })
            .sum();
        assert!(refreshed.total_cost() <= stale_actual);
    }

    #[test]
    fn pruning_never_loses_blocks() {
        let adj = random_adj(32, 0.02, 16); // sparse: pruning likely active
        let array = faulty_array(16, 8, 0.05, 17);
        let pruned = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                matcher: Matcher::BSuitor,
                prune: true,
                ..MappingConfig::default()
            },
        );
        assert_eq!(pruned.placements().len(), 16);
        let mut seen = std::collections::HashSet::new();
        for p in pruned.placements() {
            assert!(seen.insert((p.block_row, p.block_col)));
        }
    }

    #[test]
    fn placement_lookup() {
        let adj = random_adj(16, 0.2, 18);
        let array = faulty_array(4, 8, 0.03, 19);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        assert!(mapping.placement_for(0, 0).is_some());
        assert!(mapping.placement_for(1, 1).is_some());
        assert!(mapping.placement_for(2, 0).is_none());
        assert_eq!(mapping.grid(), 2);
        assert_eq!(mapping.n(), 8);
    }

    #[test]
    fn placement_lookup_agrees_with_linear_scan() {
        let adj = random_adj(24, 0.15, 40);
        let array = faulty_array(12, 8, 0.04, 41);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        for br in 0..4 {
            for bc in 0..4 {
                let scanned = mapping
                    .placements()
                    .iter()
                    .find(|p| p.block_row == br && p.block_col == bc);
                assert_eq!(mapping.placement_for(br, bc), scanned);
            }
        }
    }

    #[test]
    fn locality_term_reduces_tile_spread() {
        use crate::mapping::LocalityConfig;
        let adj = random_adj(32, 0.15, 30);
        let array = faulty_array(16, 8, 0.04, 31);
        let plain = map_adjacency(&adj, &array, &MappingConfig::default());
        let local = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                locality: Some(LocalityConfig::new(4, 10.0)),
                ..MappingConfig::default()
            },
        );
        assert!(
            local.tile_spread(4) <= plain.tile_spread(4),
            "locality {} vs plain {}",
            local.tile_spread(4),
            plain.tile_spread(4)
        );
        // All blocks still placed on distinct crossbars.
        assert_eq!(local.placements().len(), plain.placements().len());
    }

    #[test]
    fn zero_weight_locality_is_noop() {
        use crate::mapping::LocalityConfig;
        let adj = random_adj(16, 0.2, 32);
        let array = faulty_array(8, 8, 0.05, 33);
        let plain = map_adjacency(&adj, &array, &MappingConfig::default());
        let zero = map_adjacency(
            &adj,
            &array,
            &MappingConfig {
                locality: Some(LocalityConfig::new(4, 0.0)),
                ..MappingConfig::default()
            },
        );
        assert_eq!(zero.total_cost(), plain.total_cost());
    }

    #[test]
    fn tile_spread_metric_bounds() {
        let adj = random_adj(16, 0.2, 34);
        let array = faulty_array(8, 8, 0.03, 35);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        // grid = 2, so each block-row has 2 blocks: spread in [0, 1].
        let s = mapping.tile_spread(4);
        assert!((0.0..=1.0).contains(&s), "spread {s}");
        // One-crossbar-per-tile: spread is maximal (both blocks of a row
        // are always on different "tiles").
        assert_eq!(mapping.tile_spread(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "not enough crossbars")]
    fn too_few_crossbars_panics() {
        let adj = random_adj(32, 0.1, 20);
        let array = CrossbarArray::new(2, 8);
        map_adjacency(&adj, &array, &MappingConfig::default());
    }

    /// 8×8 adjacency over 4×4 crossbars with block (0,0) all-zero and the
    /// other three blocks at distinct densities.
    fn defer_fixture() -> Matrix {
        let mut adj = Matrix::zeros(8, 8);
        // Block (0,1): rows 0..4, cols 4..8 — 5 ones.
        for &(r, c) in &[(0, 4), (0, 5), (1, 6), (2, 7), (3, 4)] {
            adj[(r, c)] = 1.0;
        }
        // Block (1,0): rows 4..8, cols 0..4 — 3 ones.
        for &(r, c) in &[(4, 0), (5, 1), (6, 2)] {
            adj[(r, c)] = 1.0;
        }
        // Block (1,1): rows 4..8, cols 4..8 — 6 ones.
        for &(r, c) in &[(4, 5), (5, 4), (5, 6), (6, 5), (6, 7), (7, 6)] {
            adj[(r, c)] = 1.0;
        }
        adj
    }

    fn drench_sa1(xbar: &mut Crossbar) {
        for r in 0..xbar.n() {
            for c in 0..xbar.n() {
                xbar.inject_fault(r, c, StuckPolarity::StuckAtOne);
            }
        }
    }

    #[test]
    fn prune_defers_sparsest_block_when_b_equals_m() {
        // b == m == 4 and crossbar 0 is all-SA1: even the densest block
        // leaves min_sa1 = 16 - 6 = 10 > 0 = ones of the empty block, so
        // Algorithm 1's line-15 branch defers the sparsest block rather
        // than dropping the crossbar.
        let adj = defer_fixture();
        let mut array = CrossbarArray::new(4, 4);
        drench_sa1(array.crossbar_mut(0));
        let cfg = MappingConfig::default();
        let mapping = map_adjacency(&adj, &array, &cfg);
        assert_eq!(mapping.placements().len(), 4, "deferred block must still be placed");
        let mut used = std::collections::HashSet::new();
        for p in mapping.placements() {
            assert!(used.insert(p.crossbar));
        }
        // G₂ gives the three live blocks the clean crossbars at cost 0;
        // the deferred empty block greedily takes the only remaining
        // (drenched) crossbar.
        let empty = mapping.placement_for(0, 0).unwrap();
        assert_eq!(empty.crossbar, 0);
        assert_eq!(empty.mismatch_cost, 16);
        assert_eq!(mapping.total_cost(), 16);
        assert_eq!(mapping, reference::map_adjacency(&adj, &array, &cfg));
    }

    #[test]
    fn prune_drops_hopeless_crossbar_when_plentiful() {
        // Same drenched crossbar but m > b: the line-13 branch removes it
        // from the pool instead, and no block lands on it.
        let adj = defer_fixture();
        let mut array = CrossbarArray::new(6, 4);
        drench_sa1(array.crossbar_mut(0));
        let cfg = MappingConfig::default();
        let mapping = map_adjacency(&adj, &array, &cfg);
        assert_eq!(mapping.placements().len(), 4);
        assert!(
            mapping.placements().iter().all(|p| p.crossbar != 0),
            "pruned crossbar must stay empty"
        );
        assert_eq!(mapping.total_cost(), 0);
        assert_eq!(mapping, reference::map_adjacency(&adj, &array, &cfg));
    }

    #[test]
    fn fast_path_matches_reference_oracle() {
        for (seed, matcher) in [
            (50, Matcher::BSuitor),
            (51, Matcher::Hungarian),
            (52, Matcher::BSuitor),
        ] {
            let adj = random_adj(24, 0.12, seed);
            let array = faulty_array(12, 8, 0.06, seed + 100);
            let cfg = MappingConfig {
                matcher,
                ..MappingConfig::default()
            };
            let fast = map_adjacency(&adj, &array, &cfg);
            let oracle = reference::map_adjacency(&adj, &array, &cfg);
            assert_eq!(fast, oracle, "seed {seed} {matcher}");
        }
    }

    #[test]
    fn hungarian_reduced_matches_full_total() {
        // The reduced f×n instance and the full n×n instance have the
        // same optimum: fault-free rows cost 0 against any logical row.
        for seed in 60..63 {
            let adj = random_adj(24, 0.12, seed);
            let array = faulty_array(9, 8, 0.06, seed + 100);
            let cfg = MappingConfig {
                matcher: Matcher::Hungarian,
                prune: false,
                locality: None,
            };
            let reduced = map_adjacency(&adj, &array, &cfg);
            let full = reference::map_adjacency_full(&adj, &array, &cfg);
            assert_eq!(reduced.total_cost(), full.total_cost(), "seed {seed}");
        }
    }

    #[test]
    fn cached_refresh_matches_uncached_and_oracle() {
        let adj = random_adj(24, 0.15, 70);
        let mut array = faulty_array(9, 8, 0.03, 71);
        let mut cache = RemapCache::new();
        let mapping = map_adjacency_cached(&adj, &array, &MappingConfig::default(), &mut cache);
        assert_eq!(cache.len(), mapping.placements().len());

        // No mutation: the refresh must be pure cache hits and identical
        // to a cold full recompute.
        let warm =
            refresh_row_permutations_cached(&adj, &array, &mapping, Matcher::BSuitor, &mut cache);
        let cold = refresh_row_permutations(&adj, &array, &mapping, Matcher::BSuitor);
        assert_eq!(warm, cold);
        assert_eq!(
            warm,
            reference::refresh_row_permutations(&adj, &array, &mapping, Matcher::BSuitor)
        );

        // Mutate a subset of crossbars; the incremental refresh must
        // still equal the full recompute bit-for-bit.
        let mut rng = StdRng::seed_from_u64(72);
        for j in [0usize, 3, 5] {
            let xbar = array.crossbar_mut(j);
            let r = rng.gen_range(0..8);
            let c = rng.gen_range(0..8);
            xbar.inject_fault(r, c, StuckPolarity::StuckAtOne);
        }
        let warm =
            refresh_row_permutations_cached(&adj, &array, &warm, Matcher::BSuitor, &mut cache);
        let cold = refresh_row_permutations(&adj, &array, &mapping, Matcher::BSuitor);
        assert_eq!(warm, cold);
    }

    #[test]
    fn mapping_json_round_trip_rebuilds_lookup() {
        let adj = random_adj(16, 0.2, 80);
        let array = faulty_array(4, 8, 0.05, 81);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        let back = Mapping::from_json(&mapping.to_json()).unwrap();
        assert_eq!(back, mapping);
        assert_eq!(back.placement_for(1, 0), mapping.placement_for(1, 0));
    }
}
