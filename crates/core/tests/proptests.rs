//! Property-based tests for the FARe mapping algorithm.

use fare_core::mapping::{
    map_adjacency, map_adjacency_cached, reference, refresh_row_permutations,
    refresh_row_permutations_cached, reordered_sequential_mapping, sequential_mapping,
    MappingConfig, RemapCache,
};
use fare_core::{corrupt_adjacency_mapped, corrupt_adjacency_unaware};
use fare_matching::Matcher;
use fare_reram::{CrossbarArray, FaultSpec};
use fare_tensor::Matrix;
use fare_rt::prop::prelude::*;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

fn instance(nodes: usize, n: usize, seed: u64, density: f64) -> (Matrix, CrossbarArray) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = Matrix::zeros(nodes, nodes);
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if fare_rt::rand::Rng::gen_bool(&mut rng, 0.15) {
                adj[(i, j)] = 1.0;
                adj[(j, i)] = 1.0;
            }
        }
    }
    let blocks = nodes.div_ceil(n).pow(2);
    let mut array = CrossbarArray::new(blocks * 2, n);
    array.inject(&FaultSpec::with_sa1_fraction(density, 0.5), &mut rng);
    (adj, array)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mapping_covers_every_block_once(
        seed in 0u64..1000,
        density in 0.0f64..0.1,
    ) {
        let (adj, array) = instance(24, 8, seed, density);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        prop_assert_eq!(mapping.placements().len(), 9);
        let mut blocks = std::collections::HashSet::new();
        let mut xbars = std::collections::HashSet::new();
        for p in mapping.placements() {
            prop_assert!(blocks.insert((p.block_row, p.block_col)));
            prop_assert!(xbars.insert(p.crossbar));
        }
    }

    #[test]
    fn mapping_cost_is_exact_corruption_error(
        seed in 0u64..1000,
        density in 0.0f64..0.1,
    ) {
        let (adj, array) = instance(24, 8, seed, density);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        let corrupted = corrupt_adjacency_mapped(&adj, &array, &mapping);
        let errors = adj
            .iter()
            .zip(corrupted.iter())
            .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
            .count();
        prop_assert_eq!(errors, mapping.total_cost());
    }

    #[test]
    fn fare_never_worse_than_unaware_or_nr(
        seed in 0u64..1000,
        density in 0.0f64..0.1,
    ) {
        let (adj, array) = instance(24, 8, seed, density);
        let fare = map_adjacency(&adj, &array, &MappingConfig {
            matcher: Matcher::Hungarian,
            prune: false,
            ..MappingConfig::default()
        });
        let nr = reordered_sequential_mapping(&adj, &array, Matcher::Hungarian);
        let unaware = sequential_mapping(&adj, &array);
        prop_assert!(fare.total_cost() <= nr.total_cost());
        prop_assert!(nr.total_cost() <= unaware.total_cost());
    }

    #[test]
    fn refresh_preserves_assignment_and_improves_cost(
        seed in 0u64..1000,
        extra in 0.005f64..0.03,
    ) {
        let (adj, mut array) = instance(24, 8, seed, 0.03);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        array.inject(&FaultSpec::density(extra), &mut rng);
        let refreshed = refresh_row_permutations(&adj, &array, &mapping, Matcher::Hungarian);
        // Assignment preserved.
        for (a, b) in mapping.placements().iter().zip(refreshed.placements()) {
            prop_assert_eq!(a.crossbar, b.crossbar);
        }
        // Refreshed perms are no worse than keeping the stale ones.
        let stale_cost: usize = mapping
            .placements()
            .iter()
            .map(|p| {
                let block = adj.block(p.block_row * 8, p.block_col * 8, 8, 8);
                array.crossbar(p.crossbar).mismatch_count(&block, Some(&p.row_perm))
            })
            .sum();
        prop_assert!(refreshed.total_cost() <= stale_cost);
    }

    #[test]
    fn unaware_corruption_is_deterministic(
        seed in 0u64..1000,
    ) {
        let (adj, array) = instance(16, 8, seed, 0.05);
        let a = corrupt_adjacency_unaware(&adj, &array);
        let b = corrupt_adjacency_unaware(&adj, &array);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zero_density_mapping_is_free(seed in 0u64..1000) {
        let (adj, _) = instance(24, 8, seed, 0.0);
        let array = CrossbarArray::new(18, 8);
        let mapping = map_adjacency(&adj, &array, &MappingConfig::default());
        prop_assert_eq!(mapping.total_cost(), 0);
        prop_assert_eq!(mapping.total_sa1_cost(), 0);
    }

    // The fast path (packed kernels, class dedup, dense integer
    // b-Suitor, pair-level parallelism) is bit-identical to the naive
    // serial reference oracle for both the paper's b-Suitor and the
    // exact Hungarian solver: same placements, same permutations, same
    // mismatch and SA1 costs.
    #[test]
    fn fast_path_bit_identical_to_reference(
        seed in 0u64..1000,
        density in 0.0f64..0.12,
        exact in any::<bool>(),
        prune in any::<bool>(),
    ) {
        let (adj, array) = instance(24, 8, seed, density);
        let cfg = MappingConfig {
            matcher: if exact { Matcher::Hungarian } else { Matcher::BSuitor },
            prune,
            ..MappingConfig::default()
        };
        let fast = map_adjacency(&adj, &array, &cfg);
        let oracle = reference::map_adjacency(&adj, &array, &cfg);
        prop_assert_eq!(fast, oracle);
    }

    // Restricting the `G₁` instance to the faulty physical rows loses
    // nothing for an exact solver: fault-free rows cost 0 against any
    // logical row, so the reduced `f × n` optimum equals the full
    // `n × n` optimum, pair by pair and hence in total.
    #[test]
    fn hungarian_reduced_total_equals_full(
        seed in 0u64..1000,
        density in 0.0f64..0.12,
    ) {
        let (adj, array) = instance(24, 8, seed, density);
        let cfg = MappingConfig {
            matcher: Matcher::Hungarian,
            prune: false,
            locality: None,
        };
        let reduced = map_adjacency(&adj, &array, &cfg);
        let full = reference::map_adjacency_full(&adj, &array, &cfg);
        prop_assert_eq!(reduced.total_cost(), full.total_cost());
    }

    // The version-gated incremental refresh is bit-identical to a cold
    // full recompute and to the serial reference, after arbitrary
    // post-deployment injection, for both matchers.
    #[test]
    fn incremental_refresh_bit_identical_to_full(
        seed in 0u64..1000,
        extra in 0.0f64..0.04,
        exact in any::<bool>(),
    ) {
        let matcher = if exact { Matcher::Hungarian } else { Matcher::BSuitor };
        let (adj, mut array) = instance(24, 8, seed, 0.03);
        let mut cache = RemapCache::new();
        let cfg = MappingConfig { matcher, ..MappingConfig::default() };
        let mapping = map_adjacency_cached(&adj, &array, &cfg, &mut cache);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        array.inject(&FaultSpec::density(extra), &mut rng);
        let incremental =
            refresh_row_permutations_cached(&adj, &array, &mapping, matcher, &mut cache);
        let cold = refresh_row_permutations(&adj, &array, &mapping, matcher);
        let oracle = reference::refresh_row_permutations(&adj, &array, &mapping, matcher);
        prop_assert_eq!(&incremental, &cold);
        prop_assert_eq!(&incremental, &oracle);
    }
}

/// A crossbar row carrying 64+ SA1 faults pushes its base mismatch cost
/// past the 64-bit level mask, forcing the level-greedy solver through
/// its spill-list path. The result must still match the oracle exactly.
#[test]
fn large_base_cost_spill_path_bit_identical() {
    let (adj, mut array) = instance(192, 96, 7, 0.02);
    // 70 SA1 faults in one row (base cost 70 >= 64), plus a second row
    // mixing polarities, on a crossbar the mapping will consider.
    for c in 0..70 {
        array
            .crossbar_mut(0)
            .inject_fault(3, c, fare_reram::StuckPolarity::StuckAtOne);
    }
    for c in 0..10 {
        let pol = if c % 2 == 0 {
            fare_reram::StuckPolarity::StuckAtZero
        } else {
            fare_reram::StuckPolarity::StuckAtOne
        };
        array.crossbar_mut(0).inject_fault(5, c * 9, pol);
    }
    for exact in [false, true] {
        let cfg = MappingConfig {
            matcher: if exact { Matcher::Hungarian } else { Matcher::BSuitor },
            ..MappingConfig::default()
        };
        let fast = map_adjacency(&adj, &array, &cfg);
        let oracle = reference::map_adjacency(&adj, &array, &cfg);
        assert_eq!(fast, oracle, "exact={exact}");
    }
}
