//! Seeded synthetic graph generators.
//!
//! Stand-ins for the paper's public datasets (see DESIGN.md §1). The key
//! generator is the [`sbm`] stochastic block model: communities give the
//! partitioned adjacency matrix the block-density structure FARe's
//! mapping algorithm exploits, and community ids double as learnable node
//! labels. A [`power_law`] overlay adds the heavy-tailed degree
//! distribution of social/citation graphs such as Reddit and
//! Ogbl-citation2.

use fare_rt::rand::Rng;

use crate::CsrGraph;

/// Erdős–Rényi `G(n, p)` random graph.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Stochastic block model with `communities` equal-sized blocks.
///
/// A pair inside the same block is connected with probability `p_in`;
/// across blocks with `p_out`. Returns the graph and the per-node
/// community id (usable directly as a classification label).
///
/// # Panics
///
/// Panics if `communities == 0` or a probability is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use fare_graph::generate::sbm;
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(3);
/// let (g, labels) = sbm(60, 3, 0.3, 0.01, &mut rng);
/// assert_eq!(g.num_nodes(), 60);
/// assert_eq!(labels.iter().filter(|&&c| c == 0).count(), 20);
/// ```
pub fn sbm(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut impl Rng,
) -> (CsrGraph, Vec<usize>) {
    assert!(communities > 0, "need at least one community");
    assert!((0.0..=1.0).contains(&p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&p_out), "p_out out of range");
    let labels: Vec<usize> = (0..n).map(|i| i * communities / n.max(1)).collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

/// Barabási–Albert-style preferential-attachment graph.
///
/// Each new node attaches to `m` existing nodes chosen proportionally to
/// degree, producing a power-law degree distribution.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn power_law(n: usize, m: usize, rng: &mut impl Rng) -> CsrGraph {
    assert!(m > 0, "m must be positive");
    assert!(n > m, "need n > m, got n={n}, m={m}");
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Repeated-endpoint list: sampling uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::new();
    // Seed clique over the first m+1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m + 1)..n {
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick != u {
                chosen.insert(pick);
            }
            guard += 1;
        }
        for &v in &chosen {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// R-MAT (recursive matrix) generator — the standard graph-processing
/// benchmark generator (Graph500 uses it), producing skewed,
/// community-free graphs with heavy-tailed degrees.
///
/// Each of the `edges` samples recursively picks one of the four
/// quadrants of the adjacency matrix with probabilities
/// `(a, b, c, 1−a−b−c)` until a single cell remains. `scale` sets the
/// node count to `2^scale`. Duplicate edges and self loops are dropped,
/// so the realised edge count can be lower than requested.
///
/// # Panics
///
/// Panics if the probabilities are invalid (negative or summing above 1)
/// or `scale == 0`.
///
/// # Example
///
/// ```
/// use fare_graph::generate::rmat;
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(1);
/// let g = rmat(8, 1024, 0.57, 0.19, 0.19, &mut rng); // Graph500 params
/// assert_eq!(g.num_nodes(), 256);
/// assert!(g.num_edges() > 300);
/// ```
pub fn rmat(
    scale: u32,
    edges: usize,
    a: f64,
    b: f64,
    c: f64,
    rng: &mut impl Rng,
) -> CsrGraph {
    assert!(scale > 0, "scale must be positive");
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
        "invalid R-MAT probabilities a={a} b={b} c={c}"
    );
    let n = 1usize << scale;
    let mut list = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            let p: f64 = rng.gen();
            if p < a {
                r1 = rm;
                c1 = cm;
            } else if p < a + b {
                r1 = rm;
                c0 = cm;
            } else if p < a + b + c {
                r0 = rm;
                c1 = cm;
            } else {
                r0 = rm;
                c0 = cm;
            }
        }
        if r0 != c0 {
            list.push((r0, c0));
        }
    }
    CsrGraph::from_edges(n, &list)
}

/// SBM with a power-law overlay: community structure *and* heavy-tailed
/// degrees, mimicking social/citation graphs.
///
/// `hub_fraction` of extra preferential edges are added on top of the SBM
/// baseline.
///
/// # Panics
///
/// Panics on the same conditions as [`sbm`].
pub fn sbm_power_law(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    hub_fraction: f64,
    rng: &mut impl Rng,
) -> (CsrGraph, Vec<usize>) {
    let (base, labels) = sbm(n, communities, p_in, p_out, rng);
    let extra = ((n as f64) * hub_fraction) as usize;
    let mut edges: Vec<(usize, usize)> = base.edges().collect();
    if extra > 0 && n > 2 {
        // Degree-proportional endpoint pool from the SBM edges.
        let mut endpoints: Vec<usize> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in &edges {
            endpoints.push(u);
            endpoints.push(v);
        }
        if endpoints.is_empty() {
            endpoints.extend(0..n);
        }
        for _ in 0..extra {
            let hub = endpoints[rng.gen_range(0..endpoints.len())];
            let other = rng.gen_range(0..n);
            if hub != other {
                edges.push((hub.min(other), hub.max(other)));
                endpoints.push(hub);
                endpoints.push(other);
            }
        }
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(100, 0.1, &mut rng);
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        assert!((g.num_edges() as f64 - expected).abs() < expected * 0.3);
    }

    #[test]
    fn sbm_community_sizes_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let (_, labels) = sbm(90, 3, 0.2, 0.01, &mut rng);
        for c in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 30);
        }
    }

    #[test]
    fn sbm_intra_density_exceeds_inter() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, labels) = sbm(120, 4, 0.3, 0.02, &mut rng);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if labels[u] == labels[v] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // 0.3 vs 0.02 with 4 communities: intra edges should dominate
        // per-pair density by a wide margin.
        let intra_pairs = 4.0 * (30.0 * 29.0 / 2.0);
        let inter_pairs = (120.0 * 119.0 / 2.0) - intra_pairs;
        assert!(intra as f64 / intra_pairs > 4.0 * (inter as f64 / inter_pairs));
    }

    #[test]
    fn power_law_has_hubs() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = power_law(300, 2, &mut rng);
        // Preferential attachment should create at least one node with
        // degree far above the mean (~4).
        assert!(g.max_degree() as f64 > 3.0 * g.average_degree());
    }

    #[test]
    fn power_law_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = power_law(100, 3, &mut rng);
        let (_, count) = g.connected_components();
        assert_eq!(count, 1);
    }

    #[test]
    fn sbm_power_law_preserves_labels_and_adds_edges() {
        let mut rng1 = StdRng::seed_from_u64(6);
        let mut rng2 = StdRng::seed_from_u64(6);
        let (base, labels1) = sbm(80, 4, 0.2, 0.01, &mut rng1);
        let (overlay, labels2) = sbm_power_law(80, 4, 0.2, 0.01, 2.0, &mut rng2);
        assert_eq!(labels1, labels2);
        assert!(overlay.num_edges() >= base.num_edges());
    }

    #[test]
    fn rmat_shape_and_skew() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = rmat(8, 2048, 0.57, 0.19, 0.19, &mut rng);
        assert_eq!(g.num_nodes(), 256);
        assert!(g.num_edges() > 500, "too few edges: {}", g.num_edges());
        // Graph500 parameters concentrate edges in low-id quadrants:
        // heavy-tailed degrees.
        let stats = crate::stats::degree_stats(&g);
        assert!(
            stats.max as f64 > 4.0 * stats.mean,
            "no skew: max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn rmat_uniform_parameters_are_unskewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = rmat(8, 2048, 0.25, 0.25, 0.25, &mut rng);
        let stats = crate::stats::degree_stats(&g);
        // a=b=c=d=0.25 is Erdős–Rényi-like: modest max degree.
        assert!((stats.max as f64) < 4.0 * stats.mean + 6.0);
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT probabilities")]
    fn rmat_rejects_bad_probs() {
        rmat(4, 10, 0.6, 0.3, 0.3, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn generators_deterministic_from_seed() {
        let g1 = power_law(50, 2, &mut StdRng::seed_from_u64(7));
        let g2 = power_law(50, 2, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn erdos_renyi_rejects_bad_p() {
        erdos_renyi(5, 1.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "need n > m")]
    fn power_law_rejects_small_n() {
        power_law(3, 3, &mut StdRng::seed_from_u64(0));
    }
}
