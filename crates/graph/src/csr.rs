use std::collections::BTreeSet;

use fare_tensor::Matrix;

/// An undirected graph in compressed sparse row form.
///
/// Nodes are `0..num_nodes()`. Each undirected edge `{u, v}` is stored in
/// both adjacency lists; lists are sorted and deduplicated. Self loops are
/// not stored (the GNN normalisation adds them analytically).
///
/// # Example
///
/// ```
/// use fare_graph::CsrGraph;
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
}

fare_rt::json_struct!(CsrGraph { offsets, neighbors });

impl CsrGraph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Duplicate edges and self loops are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); num_nodes];
        for &(u, v) in edges {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u},{v}) out of range for {num_nodes} nodes"
            );
            if u == v {
                continue;
            }
            adj[u].insert(v);
            adj[v].insert(u);
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for set in adj {
            neighbors.extend(set);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// Graph with `num_nodes` nodes and no edges.
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            offsets: vec![0; num_nodes + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Neighbours of node `u`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u >= num_nodes()`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        assert!(u < self.num_nodes(), "node {u} out of range");
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= num_nodes()`.
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors(u).len()
    }

    /// `true` if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.num_nodes() && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Edge density: `2|E| / (n (n-1))`, 0 for graphs with < 2 nodes.
    pub fn density(&self) -> f64 {
        let n = self.num_nodes();
        if n < 2 {
            return 0.0;
        }
        (2 * self.num_edges()) as f64 / (n * (n - 1)) as f64
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum node degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes()).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Dense 0/1 adjacency matrix.
    ///
    /// Used when mapping small subgraph adjacency blocks onto crossbars.
    pub fn to_dense(&self) -> Matrix {
        let n = self.num_nodes();
        let mut m = Matrix::zeros(n, n);
        for (u, v) in self.edges() {
            m[(u, v)] = 1.0;
            m[(v, u)] = 1.0;
        }
        m
    }

    /// Subgraph induced by `nodes` (order defines the new node ids).
    ///
    /// Returns the induced graph; `nodes[i]` becomes node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> CsrGraph {
        let mut global_to_local = std::collections::HashMap::with_capacity(nodes.len());
        for (local, &global) in nodes.iter().enumerate() {
            assert!(global < self.num_nodes(), "node {global} out of range");
            let prev = global_to_local.insert(global, local);
            assert!(prev.is_none(), "duplicate node {global} in induced_subgraph");
        }
        let mut edges = Vec::new();
        for (local_u, &global_u) in nodes.iter().enumerate() {
            for &global_v in self.neighbors(global_u) {
                if let Some(&local_v) = global_to_local.get(&global_v) {
                    if local_u < local_v {
                        edges.push((local_u, local_v));
                    }
                }
            }
        }
        CsrGraph::from_edges(nodes.len(), &edges)
    }

    /// Sparse × dense product `A · X` where `A` is this graph's binary
    /// adjacency.
    ///
    /// Avoids materialising the dense adjacency — this is the sparse MVM
    /// kernel the paper's aggregation phase accelerates, usable for
    /// graphs far too large for `to_dense`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes()`.
    ///
    /// # Example
    ///
    /// ```
    /// use fare_graph::CsrGraph;
    /// use fare_tensor::Matrix;
    /// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
    /// let x = Matrix::identity(3);
    /// assert_eq!(g.spmm(&x), g.to_dense());
    /// ```
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.num_nodes(),
            "feature rows must equal node count"
        );
        let mut out = Matrix::zeros(self.num_nodes(), x.cols());
        let cols = x.cols();
        fare_rt::par::par_row_chunks(out.as_mut_slice(), cols, |u, row| {
            for &v in &self.neighbors[self.offsets[u]..self.offsets[u + 1]] {
                for (o, &f) in row.iter_mut().zip(x.row(v)) {
                    *o += f;
                }
            }
        });
        out
    }

    /// Sparse GCN aggregation `D^{-1/2}(A+I)D^{-1/2} · X` without
    /// materialising the dense adjacency.
    ///
    /// Matches [`fare_tensor::ops::gcn_normalise`] composed with a dense
    /// matmul *bit for bit* (each output row accumulates its nonzeros in
    /// ascending column order with the analytic self loop at its sorted
    /// diagonal position), at `O(|E| · d)` cost. Parallel over output
    /// rows; bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes()`.
    pub fn gcn_aggregate(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.num_nodes(), "feature rows must equal node count");
        let n = self.num_nodes();
        let inv_sqrt: Vec<f32> = (0..n)
            .map(|u| 1.0 / ((self.degree(u) + 1) as f32).sqrt())
            .collect();
        let mut out = Matrix::zeros(n, x.cols());
        let cols = x.cols();
        fare_rt::par::par_row_chunks(out.as_mut_slice(), cols, |u, row| {
            let du = inv_sqrt[u];
            let mut self_placed = false;
            for &v in &self.neighbors[self.offsets[u]..self.offsets[u + 1]] {
                if !self_placed && v > u {
                    let self_w = du * du;
                    for (o, &f) in row.iter_mut().zip(x.row(u)) {
                        *o += self_w * f;
                    }
                    self_placed = true;
                }
                let w = du * inv_sqrt[v];
                for (o, &f) in row.iter_mut().zip(x.row(v)) {
                    *o += w * f;
                }
            }
            if !self_placed {
                let self_w = du * du;
                for (o, &f) in row.iter_mut().zip(x.row(u)) {
                    *o += self_w * f;
                }
            }
        });
        out
    }

    /// Sparse mean aggregation `D^{-1}A · X` (GraphSAGE's neighbour
    /// average). Isolated nodes aggregate to zero.
    ///
    /// Matches [`fare_tensor::ops::row_normalise`] composed with a dense
    /// matmul bit for bit: each neighbour contribution is scaled by
    /// `1/deg` *before* accumulation (not summed then divided), which is
    /// what the dense path computes. Parallel over output rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes()`.
    pub fn mean_aggregate(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.num_nodes(), "feature rows must equal node count");
        let mut out = Matrix::zeros(self.num_nodes(), x.cols());
        let cols = x.cols();
        fare_rt::par::par_row_chunks(out.as_mut_slice(), cols, |u, row| {
            let d = self.offsets[u + 1] - self.offsets[u];
            if d == 0 {
                return;
            }
            let w = 1.0 / d as f32;
            for &v in &self.neighbors[self.offsets[u]..self.offsets[u + 1]] {
                for (o, &f) in row.iter_mut().zip(x.row(v)) {
                    *o += w * f;
                }
            }
        });
        out
    }

    /// Connected components; returns per-node component id and the count.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v] == usize::MAX {
                        comp[v] = count;
                        stack.push(v);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn from_edges_dedupes_and_drops_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = CsrGraph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(5, &edges);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_dense_symmetric() {
        let g = path(3);
        let d = g.to_dense();
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(0, 2)], 0.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = path(5);
        let sub = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // Only edge (1,2) survives, relabelled to (0,1).
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        path(3).induced_subgraph(&[0, 0]);
    }

    #[test]
    fn connected_components_counts() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let x = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let sparse = g.spmm(&x);
        let dense = g.to_dense().matmul(&x);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gcn_aggregate_matches_dense_normalisation() {
        use fare_tensor::ops;
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let x = Matrix::from_fn(5, 2, |r, c| ((r + c) as f32 * 0.7).sin());
        let sparse = g.gcn_aggregate(&x);
        let dense = ops::gcn_normalise(&g.to_dense()).matmul(&x);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn mean_aggregate_matches_dense_row_normalisation() {
        use fare_tensor::ops;
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (3, 4)]);
        let x = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let sparse = g.mean_aggregate(&x);
        let dense = ops::row_normalise(&g.to_dense()).matmul(&x);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn aggregates_handle_isolated_nodes() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let x = Matrix::filled(3, 2, 1.0);
        let mean = g.mean_aggregate(&x);
        assert_eq!(mean.row(2), &[0.0, 0.0]);
        // GCN aggregation keeps the self loop for isolated nodes.
        let gcn = g.gcn_aggregate(&x);
        assert!((gcn[(2, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "feature rows must equal node count")]
    fn spmm_rejects_wrong_rows() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        g.spmm(&Matrix::zeros(4, 2));
    }

    #[test]
    fn degree_and_max_degree() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }
}
