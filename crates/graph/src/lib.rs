//! Graph substrate for the FARe reproduction.
//!
//! The FARe paper trains GNNs with Cluster-GCN-style mini-batching: the
//! input graph is partitioned with METIS into many small clusters, and
//! each mini-batch is the subgraph induced by a union of clusters. This
//! crate rebuilds that pipeline from scratch:
//!
//! - [`CsrGraph`] — compressed sparse row storage for undirected graphs.
//! - [`generate`] — seeded synthetic generators (stochastic block model,
//!   power-law overlay, Erdős–Rényi) standing in for the paper's public
//!   datasets.
//! - [`partition`] — a multilevel heavy-edge-matching partitioner with
//!   greedy refinement, standing in for METIS.
//! - [`batch`] — mini-batch assembly (union of clusters → induced
//!   subgraph + dense normalised adjacency).
//! - [`datasets`] — scaled-down presets mirroring Table II (PPI, Reddit,
//!   Amazon2M, Ogbl-citation2) with learnable features/labels.
//! - [`stats`] — degree and block-density statistics (the profile
//!   Algorithm 1's pruning heuristic reasons about).
//! - [`CsrMatrix`] / [`GraphView`] — weighted sparse matrices and the
//!   once-per-graph cache of normalised propagation matrices the GNN
//!   layers aggregate with (the sparse-parallel compute core).
//!
//! # Example
//!
//! ```
//! use fare_graph::datasets::{Dataset, DatasetKind};
//!
//! let ds = Dataset::generate(DatasetKind::Ppi, 42);
//! assert!(ds.graph.num_nodes() > 100);
//! assert_eq!(ds.features.rows(), ds.graph.num_nodes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod csr;
pub mod datasets;
pub mod generate;
pub mod io;
pub mod partition;
mod sparse;
pub mod stats;
mod view;

pub use csr::CsrGraph;
pub use partition::Partitioning;
pub use sparse::CsrMatrix;
pub use view::GraphView;
