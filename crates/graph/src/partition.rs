//! Multilevel graph partitioning (METIS substitute).
//!
//! The paper partitions each dataset into hundreds/thousands of clusters
//! with METIS before mini-batch training. This module implements the same
//! multilevel scheme METIS popularised:
//!
//! 1. **Coarsen** — repeated heavy-edge matching contracts the graph
//!    until it is small.
//! 2. **Initial partition** — greedy region growing over the coarsest
//!    graph, balancing node weight.
//! 3. **Uncoarsen + refine** — project the partition back up, applying
//!    boundary Kernighan–Lin-style moves at every level.
//!
//! Quality matters only in so far as clusters must be denser inside than
//! across (which drives the block-density statistics of the batched
//! adjacency matrices), and that is exactly what edge-cut minimisation
//! produces.

use std::collections::BTreeMap;

use fare_rt::rand::seq::SliceRandom;
use fare_rt::rand::Rng;

use crate::CsrGraph;

/// Assignment of every node to one of `num_parts` clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<usize>,
    num_parts: usize,
}

fare_rt::json_struct!(Partitioning { assignment, num_parts });

impl Partitioning {
    /// Creates a partitioning from a raw assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if any part id is `>= num_parts`.
    pub fn new(assignment: Vec<usize>, num_parts: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| p < num_parts),
            "part id out of range"
        );
        Self {
            assignment,
            num_parts,
        }
    }

    /// Part id of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn part_of(&self, u: usize) -> usize {
        self.assignment[u]
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Per-node assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Nodes belonging to part `p`, ascending.
    pub fn part_nodes(&self, p: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &q)| q == p)
            .map(|(u, _)| u)
            .collect()
    }

    /// Sizes of all parts.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// Number of edges crossing between parts.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different node count.
    pub fn edge_cut(&self, graph: &CsrGraph) -> usize {
        assert_eq!(graph.num_nodes(), self.assignment.len());
        graph
            .edges()
            .filter(|&(u, v)| self.assignment[u] != self.assignment[v])
            .count()
    }

    /// Ratio of the largest part to the ideal size (1.0 = perfectly
    /// balanced).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignment.len() as f64 / self.num_parts.max(1) as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// Weighted graph used internally during coarsening.
#[derive(Debug, Clone)]
struct WeightedGraph {
    /// adjacency[u] -> (v, edge_weight)
    adj: Vec<BTreeMap<usize, f64>>,
    node_weight: Vec<f64>,
}

impl WeightedGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![BTreeMap::new(); n];
        for (u, v) in g.edges() {
            adj[u].insert(v, 1.0);
            adj[v].insert(u, 1.0);
        }
        Self {
            adj,
            node_weight: vec![1.0; n],
        }
    }

    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Heavy-edge matching coarsening. Returns the coarse graph and the
    /// fine→coarse node map.
    fn coarsen(&self, rng: &mut impl Rng) -> (WeightedGraph, Vec<usize>) {
        let n = self.num_nodes();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut matched = vec![usize::MAX; n];
        let mut coarse_count = 0usize;
        for &u in &order {
            if matched[u] != usize::MAX {
                continue;
            }
            // Match u with its heaviest unmatched neighbour.
            let mut best: Option<(usize, f64)> = None;
            for (&v, &w) in &self.adj[u] {
                if matched[v] == usize::MAX
                    && best.is_none_or(|(_, bw)| w > bw)
                {
                    best = Some((v, w));
                }
            }
            match best {
                Some((v, _)) => {
                    matched[u] = coarse_count;
                    matched[v] = coarse_count;
                }
                None => {
                    matched[u] = coarse_count;
                }
            }
            coarse_count += 1;
        }
        let mut coarse = WeightedGraph {
            adj: vec![BTreeMap::new(); coarse_count],
            node_weight: vec![0.0; coarse_count],
        };
        for u in 0..n {
            coarse.node_weight[matched[u]] += self.node_weight[u];
            for (&v, &w) in &self.adj[u] {
                let (cu, cv) = (matched[u], matched[v]);
                if cu != cv && u < v {
                    *coarse.adj[cu].entry(cv).or_insert(0.0) += w;
                    *coarse.adj[cv].entry(cu).or_insert(0.0) += w;
                }
            }
        }
        (coarse, matched)
    }

    /// Greedy region-growing initial partition into `k` parts balanced by
    /// node weight.
    fn initial_partition(&self, k: usize, rng: &mut impl Rng) -> Vec<usize> {
        let n = self.num_nodes();
        let total_weight: f64 = self.node_weight.iter().sum();
        let target = total_weight / k as f64;
        let mut part = vec![usize::MAX; n];
        let mut part_weight = vec![0.0f64; k];
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut order_iter = order.iter().copied();
        #[allow(clippy::needless_range_loop)] // `part_weight[p]` is mutated inside the BFS
        for p in 0..k {
            // Grow part p from an unassigned seed via BFS until it reaches
            // the target weight.
            let seed = loop {
                match order_iter.next() {
                    Some(s) if part[s] == usize::MAX => break Some(s),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let Some(seed) = seed else { break };
            let mut queue = std::collections::VecDeque::from([seed]);
            while let Some(u) = queue.pop_front() {
                if part[u] != usize::MAX {
                    continue;
                }
                if p + 1 < k && part_weight[p] >= target {
                    break;
                }
                part[u] = p;
                part_weight[p] += self.node_weight[u];
                for &v in self.adj[u].keys() {
                    if part[v] == usize::MAX {
                        queue.push_back(v);
                    }
                }
            }
        }
        // Any leftover nodes go to the lightest part.
        #[allow(clippy::needless_range_loop)] // `part` is indexed and mutated
        for u in 0..n {
            if part[u] == usize::MAX {
                let p = (0..k)
                    .min_by(|&a, &b| part_weight[a].partial_cmp(&part_weight[b]).unwrap())
                    .unwrap_or(0);
                part[u] = p;
                part_weight[p] += self.node_weight[u];
            }
        }
        part
    }

    /// The balance ceiling for one level: 10% headroom over the ideal
    /// part weight, plus the heaviest single node (which can never be
    /// split). Recomputed per level — contracted nodes at coarse levels
    /// are heavy, so a ceiling inherited from the coarsest level would be
    /// uselessly loose on the original graph.
    fn level_max_weight(&self, k: usize) -> f64 {
        let total: f64 = self.node_weight.iter().sum();
        let max_node = self.node_weight.iter().cloned().fold(0.0, f64::max);
        1.1 * total / k as f64 + max_node
    }

    /// Moves nodes out of oversized parts — and into empty ones — until
    /// every part is non-empty and none exceeds `max_weight`. Each move
    /// takes the donor node whose departure costs the least edge cut, so
    /// balance is restored as cheaply as possible.
    fn balance(&self, part: &mut [usize], k: usize, max_weight: f64) {
        let n = self.num_nodes();
        if n == 0 || k <= 1 {
            return;
        }
        let mut part_weight = vec![0.0f64; k];
        let mut part_count = vec![0usize; k];
        for u in 0..n {
            part_weight[part[u]] += self.node_weight[u];
            part_count[part[u]] += 1;
        }
        loop {
            // Destination: an empty part first; otherwise the lightest
            // part, but only while some part is overweight.
            let empty = (0..k).find(|&p| part_count[p] == 0);
            let overweight = (0..k).any(|p| part_weight[p] > max_weight && part_count[p] > 1);
            let dest = match empty {
                Some(p) => p,
                None if overweight => (0..k)
                    .min_by(|&a, &b| part_weight[a].partial_cmp(&part_weight[b]).unwrap())
                    .unwrap(),
                None => break,
            };
            let donor = (0..k)
                .filter(|&p| p != dest && part_count[p] > 1)
                .max_by(|&a, &b| part_weight[a].partial_cmp(&part_weight[b]).unwrap());
            let Some(donor) = donor else { break };
            if part_weight[donor] <= part_weight[dest] {
                break; // moving would only invert the imbalance
            }
            // Cheapest node to pull out: least internal connectivity,
            // crediting edges it already has toward the destination.
            let mut best: Option<(usize, f64)> = None;
            for u in 0..n {
                if part[u] != donor {
                    continue;
                }
                let mut cost = 0.0;
                for (&v, &w) in &self.adj[u] {
                    if part[v] == donor {
                        cost += w;
                    } else if part[v] == dest {
                        cost -= w;
                    }
                }
                if best.is_none_or(|(_, bc)| cost < bc) {
                    best = Some((u, cost));
                }
            }
            let Some((u, _)) = best else { break };
            part_weight[donor] -= self.node_weight[u];
            part_count[donor] -= 1;
            part[u] = dest;
            part_weight[dest] += self.node_weight[u];
            part_count[dest] += 1;
        }
    }

    /// One boundary-refinement sweep: move nodes to the neighbouring part
    /// with the highest cut gain if balance permits. Returns moves made.
    fn refine(&self, part: &mut [usize], k: usize, max_weight: f64) -> usize {
        let n = self.num_nodes();
        let mut part_weight = vec![0.0f64; k];
        for u in 0..n {
            part_weight[part[u]] += self.node_weight[u];
        }
        let mut moves = 0;
        for u in 0..n {
            // Connectivity of u to each part.
            let mut conn: BTreeMap<usize, f64> = BTreeMap::new();
            for (&v, &w) in &self.adj[u] {
                *conn.entry(part[v]).or_insert(0.0) += w;
            }
            let here = *conn.get(&part[u]).unwrap_or(&0.0);
            let mut best: Option<(usize, f64)> = None;
            for (&p, &w) in &conn {
                if p == part[u] {
                    continue;
                }
                let gain = w - here;
                if gain > 1e-12
                    && part_weight[p] + self.node_weight[u] <= max_weight
                    && best.is_none_or(|(_, bg)| gain > bg)
                {
                    best = Some((p, gain));
                }
            }
            if let Some((p, _)) = best {
                part_weight[part[u]] -= self.node_weight[u];
                part_weight[p] += self.node_weight[u];
                part[u] = p;
                moves += 1;
            }
        }
        moves
    }
}

/// Partitions `graph` into `k` balanced parts with the multilevel scheme.
///
/// Deterministic for a given `rng` state.
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_nodes()` (for non-empty graphs).
///
/// # Example
///
/// ```
/// use fare_graph::{partition::partition, CsrGraph};
/// use fare_rt::rand::SeedableRng;
/// let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(1);
/// let p = partition(&g, 2, &mut rng);
/// assert_eq!(p.num_parts(), 2);
/// assert_eq!(p.assignment().len(), 6);
/// ```
pub fn partition(graph: &CsrGraph, k: usize, rng: &mut impl Rng) -> Partitioning {
    assert!(k > 0, "k must be positive");
    let n = graph.num_nodes();
    if n == 0 {
        return Partitioning::new(Vec::new(), k);
    }
    assert!(k <= n, "cannot split {n} nodes into {k} parts");

    let mut levels: Vec<(WeightedGraph, Vec<usize>)> = Vec::new();
    let mut current = WeightedGraph::from_csr(graph);

    // Draw a plain region-growing candidate first (same rng state
    // `bfs_partition` would see): the multilevel result is only kept if
    // it cuts no more edges, so the fallback is a quality floor.
    let finest = current.clone();
    let mut bfs_part = finest.initial_partition(k, rng);

    // Coarsen until small or progress stalls.
    while current.num_nodes() > (8 * k).max(64) {
        let (coarse, map) = current.coarsen(rng);
        if coarse.num_nodes() as f64 > 0.95 * current.num_nodes() as f64 {
            break; // matching stalled (e.g. star graphs)
        }
        levels.push((std::mem::replace(&mut current, coarse), map));
    }

    let max_weight = current.level_max_weight(k);
    let mut part = current.initial_partition(k, rng);
    current.balance(&mut part, k, max_weight);
    for _ in 0..4 {
        if current.refine(&mut part, k, max_weight) == 0 {
            break;
        }
    }
    current.balance(&mut part, k, max_weight);

    // Uncoarsen with refinement (and re-balancing against the level's
    // own ceiling) at every level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_part = vec![0usize; fine.num_nodes()];
        for u in 0..fine.num_nodes() {
            fine_part[u] = part[map[u]];
        }
        part = fine_part;
        let max_weight = fine.level_max_weight(k);
        // Alternate refinement and re-balancing: balancing can free
        // headroom that unlocks further gain moves, and vice versa.
        for _ in 0..3 {
            let moves = fine.refine(&mut part, k, max_weight);
            fine.balance(&mut part, k, max_weight);
            if moves == 0 {
                break;
            }
        }
        current = fine;
    }
    let _ = current;

    let cut = |assignment: &[usize]| {
        graph
            .edges()
            .filter(|&(u, v)| assignment[u] != assignment[v])
            .count()
    };
    if cut(&bfs_part) < cut(&part) {
        // Keep the floor candidate, restoring its guarantees (non-empty
        // parts, weight ceiling) first.
        finest.balance(&mut bfs_part, k, finest.level_max_weight(k));
        if cut(&bfs_part) < cut(&part) {
            return Partitioning::new(bfs_part, k);
        }
    }
    Partitioning::new(part, k)
}

/// Plain BFS region-growing partitioner (no multilevel); used as a cheap
/// fallback and as an ablation baseline against [`partition`].
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_nodes()` (for non-empty graphs).
pub fn bfs_partition(graph: &CsrGraph, k: usize, rng: &mut impl Rng) -> Partitioning {
    assert!(k > 0, "k must be positive");
    let n = graph.num_nodes();
    if n == 0 {
        return Partitioning::new(Vec::new(), k);
    }
    assert!(k <= n, "cannot split {n} nodes into {k} parts");
    let wg = WeightedGraph::from_csr(graph);
    let part = wg.initial_partition(k, rng);
    Partitioning::new(part, k)
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::generate;

    #[test]
    fn partitioning_accessors() {
        let p = Partitioning::new(vec![0, 1, 0, 1], 2);
        assert_eq!(p.part_of(2), 0);
        assert_eq!(p.part_nodes(1), vec![1, 3]);
        assert_eq!(p.sizes(), vec![2, 2]);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn partitioning_rejects_bad_ids() {
        Partitioning::new(vec![0, 2], 2);
    }

    #[test]
    fn partition_covers_all_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate::erdos_renyi(200, 0.05, &mut rng);
        let p = partition(&g, 8, &mut rng);
        assert_eq!(p.assignment().len(), 200);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 200);
        // Every part non-empty.
        assert!(sizes.iter().all(|&s| s > 0), "sizes {sizes:?}");
    }

    #[test]
    fn partition_respects_community_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, labels) = generate::sbm(200, 4, 0.3, 0.005, &mut rng);
        let p = partition(&g, 4, &mut rng);
        // The partitioner should cut far fewer edges than a random
        // assignment would.
        let cut = p.edge_cut(&g);
        let random = Partitioning::new((0..200).map(|u| u % 4).collect(), 4);
        assert!(
            cut < random.edge_cut(&g) / 2,
            "cut {cut} vs random {}",
            random.edge_cut(&g)
        );
        let _ = labels;
    }

    #[test]
    fn partition_is_reasonably_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate::power_law(300, 2, &mut rng);
        let p = partition(&g, 6, &mut rng);
        assert!(p.imbalance() < 1.8, "imbalance {}", p.imbalance());
    }

    #[test]
    fn bfs_partition_covers_all_nodes() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generate::erdos_renyi(120, 0.08, &mut rng);
        let p = bfs_partition(&g, 5, &mut rng);
        assert_eq!(p.sizes().iter().sum::<usize>(), 120);
    }

    #[test]
    fn multilevel_no_worse_than_bfs_on_sbm() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = generate::sbm(240, 6, 0.25, 0.01, &mut rng);
        let ml = partition(&g, 6, &mut StdRng::seed_from_u64(10));
        let bfs = bfs_partition(&g, 6, &mut StdRng::seed_from_u64(10));
        assert!(ml.edge_cut(&g) <= bfs.edge_cut(&g));
    }

    #[test]
    fn single_part_has_zero_cut() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generate::erdos_renyi(50, 0.1, &mut rng);
        let p = partition(&g, 1, &mut rng);
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn empty_graph_partition() {
        let g = CsrGraph::empty(0);
        let mut rng = StdRng::seed_from_u64(7);
        let p = partition(&g, 3, &mut rng);
        assert!(p.assignment().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn partition_rejects_too_many_parts() {
        let g = CsrGraph::empty(2);
        partition(&g, 3, &mut StdRng::seed_from_u64(0));
    }
}
