//! Cached, pre-normalised views of a batch graph.
//!
//! The GNN layers used to re-derive their propagation matrices
//! (`gcn_normalise` / `row_normalise` over a dense n×n adjacency) on
//! *every forward pass*. A [`GraphView`] hoists that work to
//! once-per-graph: it is built when a mini-batch's adjacency is fixed
//! (at batch assembly, or whenever fault corruption changes it) and
//! lazily caches each normalisation the first time a layer asks for it.
//!
//! All propagation matrices are stored sparse ([`CsrMatrix`]), so
//! aggregation costs `O(nnz · d)`; only GAT's attention mask still
//! requires the dense adjacency ([`GraphView::dense`]).
//!
//! The sparse caches are constructed to be numerically interchangeable
//! with the dense reference path (`ops::gcn_normalise` /
//! `ops::row_normalise` followed by a dense matmul): values are computed
//! with the same expressions and accumulated in the same ascending
//! column order.

use std::sync::OnceLock;

use fare_tensor::{ops, Matrix};

use crate::sparse::CsrMatrix;
use crate::CsrGraph;

/// A graph plus lazily-cached normalised propagation matrices.
///
/// Construct one per (batch, adjacency) pair:
///
/// - [`GraphView::from_graph`] — from a clean [`CsrGraph`]; nothing
///   dense is ever materialised unless [`GraphView::dense`] is called.
/// - [`GraphView::from_dense`] — from an arbitrary (possibly
///   fault-corrupted, possibly asymmetric) binary adjacency matrix.
///
/// # Example
///
/// ```
/// use fare_graph::{CsrGraph, GraphView};
/// use fare_tensor::Matrix;
///
/// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// let view = GraphView::from_graph(&g);
/// let x = Matrix::identity(3);
/// // Â·I equals the dense normalised adjacency.
/// let ahat = view.gcn_norm().spmm(&x);
/// assert_eq!(ahat, fare_tensor::ops::gcn_normalise(&g.to_dense()));
/// ```
#[derive(Debug)]
pub struct GraphView {
    n: usize,
    graph: Option<CsrGraph>,
    dense: OnceLock<Matrix>,
    gcn: OnceLock<CsrMatrix>,
    mean: OnceLock<CsrMatrix>,
    mean_t: OnceLock<CsrMatrix>,
}

impl GraphView {
    /// Wraps a clean (fault-free) graph; the sparse caches are built
    /// straight from the CSR structure.
    pub fn from_graph(graph: &CsrGraph) -> Self {
        Self {
            n: graph.num_nodes(),
            graph: Some(graph.clone()),
            dense: OnceLock::new(),
            gcn: OnceLock::new(),
            mean: OnceLock::new(),
            mean_t: OnceLock::new(),
        }
    }

    /// Wraps an arbitrary square binary adjacency matrix — the form the
    /// fault-injection path produces (`corrupt_adjacency_*` may add or
    /// delete directed entries, so the matrix need not be symmetric and
    /// may carry diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if `adj` is not square.
    pub fn from_dense(adj: Matrix) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        let n = adj.rows();
        let dense = OnceLock::new();
        dense.set(adj).expect("fresh OnceLock");
        Self {
            n,
            graph: None,
            dense,
            gcn: OnceLock::new(),
            mean: OnceLock::new(),
            mean_t: OnceLock::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The dense binary adjacency (built on first use for graph-backed
    /// views). GAT's attention mask is the only hot-path consumer.
    pub fn dense(&self) -> &Matrix {
        self.dense.get_or_init(|| {
            self.graph
                .as_ref()
                .expect("GraphView has neither dense adjacency nor graph")
                .to_dense()
        })
    }

    /// The symmetric GCN propagation matrix `Â = D^{-1/2}(A+I)D^{-1/2}`
    /// as a sparse matrix, built once and cached.
    pub fn gcn_norm(&self) -> &CsrMatrix {
        self.gcn.get_or_init(|| match &self.graph {
            Some(g) => gcn_csr(g),
            None => CsrMatrix::from_dense(&ops::gcn_normalise(self.dense())),
        })
    }

    /// The mean-aggregation propagation matrix `Ā = D^{-1}A` as a
    /// sparse matrix, built once and cached.
    pub fn mean_norm(&self) -> &CsrMatrix {
        self.mean.get_or_init(|| match &self.graph {
            Some(g) => mean_csr(g),
            None => CsrMatrix::from_dense(&ops::row_normalise(self.dense())),
        })
    }

    /// `Āᵀ` (needed by the SAGE backward pass — `Ā` is not symmetric),
    /// built once from [`GraphView::mean_norm`] and cached.
    pub fn mean_norm_t(&self) -> &CsrMatrix {
        self.mean_t.get_or_init(|| self.mean_norm().transpose())
    }
}

/// `Â` for a self-loop-free undirected graph, entry for entry the
/// nonzeros of `ops::gcn_normalise(g.to_dense())`: the analytic self
/// loop sits at its sorted (diagonal) position and every value is
/// `deg_inv_sqrt[r] * deg_inv_sqrt[c]` (the binary entry is 1).
fn gcn_csr(g: &CsrGraph) -> CsrMatrix {
    let n = g.num_nodes();
    let inv_sqrt: Vec<f32> = (0..n)
        .map(|u| {
            // Row sum of A+I is exactly deg+1 (binary entries, < 2^24).
            1.0 / ((g.degree(u) + 1) as f32).sqrt()
        })
        .collect();
    let entries: Vec<Vec<(usize, f32)>> = (0..n)
        .map(|u| {
            let du = inv_sqrt[u];
            let mut row = Vec::with_capacity(g.degree(u) + 1);
            let mut self_placed = false;
            for &v in g.neighbors(u) {
                if !self_placed && v > u {
                    row.push((u, du * du));
                    self_placed = true;
                }
                row.push((v, du * inv_sqrt[v]));
            }
            if !self_placed {
                row.push((u, du * du));
            }
            row
        })
        .collect();
    CsrMatrix::from_row_entries(n, n, &entries)
}

/// `Ā = D^{-1}A` for an undirected graph: every stored entry of row `u`
/// is `1.0 / deg(u)` (matching `ops::row_normalise`'s per-entry
/// division of the binary 1), isolated rows stay empty.
fn mean_csr(g: &CsrGraph) -> CsrMatrix {
    let n = g.num_nodes();
    let entries: Vec<Vec<(usize, f32)>> = (0..n)
        .map(|u| {
            let d = g.degree(u);
            if d == 0 {
                return Vec::new();
            }
            let w = 1.0 / d as f32;
            g.neighbors(u).iter().map(|&v| (v, w)).collect()
        })
        .collect();
    CsrMatrix::from_row_entries(n, n, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> CsrGraph {
        CsrGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4), (2, 5)],
        )
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn graph_backed_gcn_matches_dense_reference_bitwise() {
        let g = sample_graph();
        let view = GraphView::from_graph(&g);
        let reference = CsrMatrix::from_dense(&ops::gcn_normalise(&g.to_dense()));
        assert_eq!(view.gcn_norm(), &reference);
    }

    #[test]
    fn graph_backed_mean_matches_dense_reference_bitwise() {
        let g = sample_graph();
        let view = GraphView::from_graph(&g);
        let reference = CsrMatrix::from_dense(&ops::row_normalise(&g.to_dense()));
        assert_eq!(view.mean_norm(), &reference);
    }

    #[test]
    fn dense_backed_view_handles_asymmetric_adjacency() {
        // A corrupted adjacency: asymmetric, with a diagonal entry.
        let adj = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0],
        ]);
        let view = GraphView::from_dense(adj.clone());
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.5 - 1.0);
        let sparse = view.gcn_norm().spmm(&x);
        let dense = ops::gcn_normalise(&adj).matmul(&x);
        assert_eq!(bits(&sparse), bits(&dense));
        let sparse_mean = view.mean_norm().spmm(&x);
        let dense_mean = ops::row_normalise(&adj).matmul(&x);
        assert_eq!(bits(&sparse_mean), bits(&dense_mean));
    }

    #[test]
    fn mean_transpose_matches_dense_t_matmul() {
        let g = sample_graph();
        let view = GraphView::from_graph(&g);
        let x = Matrix::from_fn(6, 3, |r, c| ((r + c) as f32 * 0.9).cos());
        let sparse = view.mean_norm_t().spmm(&x);
        let dense = ops::row_normalise(&g.to_dense()).t_matmul(&x);
        assert_eq!(bits(&sparse), bits(&dense));
    }

    #[test]
    fn isolated_nodes_are_handled() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let view = GraphView::from_graph(&g);
        let x = Matrix::filled(4, 2, 1.0);
        let mean = view.mean_norm().spmm(&x);
        assert_eq!(mean.row(3), &[0.0, 0.0]);
        let gcn = view.gcn_norm().spmm(&x);
        assert!((gcn[(3, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dense_accessor_round_trips_graph() {
        let g = sample_graph();
        let view = GraphView::from_graph(&g);
        assert_eq!(view.dense(), &g.to_dense());
        assert_eq!(view.num_nodes(), 6);
    }
}
