//! Graph statistics used by the mapping heuristics and the dataset
//! validation tests.
//!
//! The paper's Algorithm 1 reasons about the *block density profile* of
//! partitioned adjacency matrices ("we observe edge density as low as
//! 0.001"); this module computes those profiles plus standard degree
//! statistics so the synthetic datasets can be checked against the
//! originals' character.

use fare_tensor::Matrix;

use crate::{CsrGraph, Partitioning};

/// Degree-distribution summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Degree variance.
    pub variance: f64,
    /// Fraction of nodes with degree > 3× mean ("hubs").
    pub hub_fraction: f64,
}

fare_rt::json_struct!(DegreeStats { min, max, mean, variance, hub_fraction });

/// Computes the degree summary of `graph`.
///
/// # Example
///
/// ```
/// use fare_graph::{stats::degree_stats, CsrGraph};
/// let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
/// let s = degree_stats(&g);
/// assert_eq!(s.max, 3);
/// assert_eq!(s.min, 1);
/// ```
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            variance: 0.0,
            hub_fraction: 0.0,
        };
    }
    let degrees: Vec<usize> = (0..n).map(|u| graph.degree(u)).collect();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let variance = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let hubs = degrees.iter().filter(|&&d| d as f64 > 3.0 * mean).count();
    DegreeStats {
        min: *degrees.iter().min().expect("n > 0"),
        max: *degrees.iter().max().expect("n > 0"),
        mean,
        variance,
        hub_fraction: hubs as f64 / n as f64,
    }
}

/// Density (fraction of ones) of every `n × n` block of a dense binary
/// matrix, row-major over the block grid.
///
/// # Panics
///
/// Panics if `adj` is not square or `n == 0`.
pub fn block_density_profile(adj: &Matrix, n: usize) -> Vec<f64> {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    assert!(n > 0, "block size must be positive");
    let grid = adj.rows().div_ceil(n);
    let mut out = Vec::with_capacity(grid * grid);
    for br in 0..grid {
        for bc in 0..grid {
            let block = adj.block(br * n, bc * n, n, n);
            out.push(block.count_where(|v| v > 0.5) as f64 / (n * n) as f64);
        }
    }
    out
}

/// Block-density summary of a partitioned graph: for each cluster pair,
/// the density of the corresponding adjacency block. Diagonal entries
/// are intra-cluster densities (which Cluster-GCN batching exploits).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDensity {
    /// Mean intra-cluster (diagonal) density.
    pub intra: f64,
    /// Mean inter-cluster (off-diagonal) density.
    pub inter: f64,
}

fare_rt::json_struct!(ClusterDensity { intra, inter });

/// Computes intra- vs inter-cluster edge densities under `parts`.
///
/// # Panics
///
/// Panics if the partitioning does not cover the graph.
pub fn cluster_density(graph: &CsrGraph, parts: &Partitioning) -> ClusterDensity {
    assert_eq!(graph.num_nodes(), parts.assignment().len());
    let k = parts.num_parts();
    let sizes = parts.sizes();
    let mut intra_edges = vec![0usize; k];
    let mut inter_edges = 0usize;
    for (u, v) in graph.edges() {
        let (pu, pv) = (parts.part_of(u), parts.part_of(v));
        if pu == pv {
            intra_edges[pu] += 1;
        } else {
            inter_edges += 1;
        }
    }
    let mut intra_density_sum = 0.0;
    let mut intra_clusters = 0usize;
    for p in 0..k {
        let s = sizes[p];
        if s >= 2 {
            intra_density_sum += intra_edges[p] as f64 / (s * (s - 1) / 2) as f64;
            intra_clusters += 1;
        }
    }
    let total_pairs: f64 = {
        let n = graph.num_nodes() as f64;
        let intra_pairs: f64 = sizes.iter().map(|&s| (s * s.saturating_sub(1) / 2) as f64).sum();
        (n * (n - 1.0) / 2.0) - intra_pairs
    };
    ClusterDensity {
        intra: if intra_clusters > 0 {
            intra_density_sum / intra_clusters as f64
        } else {
            0.0
        },
        inter: if total_pairs > 0.0 {
            inter_edges as f64 / total_pairs
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::generate;
    use crate::partition::partition;

    #[test]
    fn degree_stats_star_graph() {
        let edges: Vec<_> = (1..7).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(7, &edges);
        let s = degree_stats(&g);
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 1);
        assert!((s.mean - 12.0 / 7.0).abs() < 1e-12);
        // Node 0 has degree 6 > 3 × (12/7) ≈ 5.14: one hub out of seven.
        assert!((s.hub_fraction - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn power_law_has_higher_variance_than_er() {
        let mut rng = StdRng::seed_from_u64(1);
        let pl = generate::power_law(400, 2, &mut rng);
        let er = generate::erdos_renyi(400, pl.average_degree() / 399.0, &mut rng);
        assert!(degree_stats(&pl).variance > degree_stats(&er).variance);
    }

    #[test]
    fn block_profile_counts_match_total() {
        let mut adj = Matrix::zeros(10, 10);
        adj[(0, 1)] = 1.0;
        adj[(1, 0)] = 1.0;
        adj[(9, 9)] = 1.0;
        let profile = block_density_profile(&adj, 4);
        assert_eq!(profile.len(), 9); // ceil(10/4)² = 9
        let total_ones: f64 = profile.iter().map(|d| d * 16.0).sum();
        assert!((total_ones - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_blocks_exist_in_partitioned_batches() {
        // The paper's observation: partitioned adjacency matrices contain
        // extremely sparse off-diagonal blocks.
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = generate::sbm(200, 4, 0.25, 0.005, &mut rng);
        let adj = g.to_dense();
        let profile = block_density_profile(&adj, 16);
        let min = profile.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = profile.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.02, "no sparse blocks: min {min}");
        assert!(max > 0.1, "no dense blocks: max {max}");
    }

    #[test]
    fn cluster_density_intra_exceeds_inter_on_sbm() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = generate::sbm(240, 6, 0.3, 0.01, &mut rng);
        let parts = partition(&g, 6, &mut rng);
        let d = cluster_density(&g, &parts);
        assert!(
            d.intra > 3.0 * d.inter,
            "intra {} should dominate inter {}",
            d.intra,
            d.inter
        );
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        block_density_profile(&Matrix::zeros(4, 4), 0);
    }
}
