//! Cluster-GCN-style mini-batch assembly.
//!
//! Following the paper's training setup (Section V-A), the partitioned
//! graph is consumed in mini-batches: each batch is the subgraph induced
//! by the union of a few clusters. The dense 0/1 adjacency of that
//! subgraph is what gets programmed onto ReRAM crossbars for the
//! aggregation phase.

use fare_tensor::Matrix;
use fare_rt::rand::seq::SliceRandom;
use fare_rt::rand::Rng;

use crate::{CsrGraph, Partitioning};

/// One training mini-batch: a cluster-union induced subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatch {
    /// Global ids of the nodes in this batch; position = local id.
    pub nodes: Vec<usize>,
    /// Induced subgraph over `nodes` (local ids).
    pub graph: CsrGraph,
}

fare_rt::json_struct!(MiniBatch { nodes, graph });

impl MiniBatch {
    /// Number of nodes in the batch.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Dense binary adjacency of the induced subgraph.
    ///
    /// This is the matrix FARe maps onto ReRAM crossbars.
    pub fn dense_adjacency(&self) -> Matrix {
        self.graph.to_dense()
    }

    /// Gathers the feature rows of this batch's nodes from the full
    /// feature matrix.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range for `features`.
    pub fn gather_features(&self, features: &Matrix) -> Matrix {
        Matrix::from_fn(self.nodes.len(), features.cols(), |r, c| {
            features[(self.nodes[r], c)]
        })
    }

    /// Gathers the labels of this batch's nodes.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range for `labels`.
    pub fn gather_labels(&self, labels: &[usize]) -> Vec<usize> {
        self.nodes.iter().map(|&u| labels[u]).collect()
    }
}

/// Groups the clusters of `partitioning` into batches of
/// `clusters_per_batch` (the paper's "Batch" hyper-parameter) and builds
/// the induced subgraph for each.
///
/// Cluster order is shuffled with `rng`, matching stochastic mini-batch
/// training. The final batch may contain fewer clusters.
///
/// # Panics
///
/// Panics if `clusters_per_batch == 0` or the partitioning does not cover
/// `graph`.
///
/// # Example
///
/// ```
/// use fare_graph::{batch::make_batches, partition::partition, CsrGraph};
/// use fare_rt::rand::SeedableRng;
/// let g = CsrGraph::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]);
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(0);
/// let parts = partition(&g, 4, &mut rng);
/// let batches = make_batches(&g, &parts, 2, &mut rng);
/// assert_eq!(batches.len(), 2);
/// let total: usize = batches.iter().map(|b| b.num_nodes()).sum();
/// assert_eq!(total, 8);
/// ```
pub fn make_batches(
    graph: &CsrGraph,
    partitioning: &Partitioning,
    clusters_per_batch: usize,
    rng: &mut impl Rng,
) -> Vec<MiniBatch> {
    assert!(clusters_per_batch > 0, "clusters_per_batch must be positive");
    assert_eq!(
        graph.num_nodes(),
        partitioning.assignment().len(),
        "partitioning does not cover graph"
    );
    let mut cluster_ids: Vec<usize> = (0..partitioning.num_parts()).collect();
    cluster_ids.shuffle(rng);
    cluster_ids
        .chunks(clusters_per_batch)
        .map(|chunk| {
            let mut nodes: Vec<usize> = chunk
                .iter()
                .flat_map(|&c| partitioning.part_nodes(c))
                .collect();
            nodes.sort_unstable();
            let sub = graph.induced_subgraph(&nodes);
            MiniBatch { nodes, graph: sub }
        })
        .filter(|b| b.num_nodes() > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::generate;
    use crate::partition::partition;

    fn setup() -> (CsrGraph, Partitioning) {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generate::sbm(120, 4, 0.3, 0.02, &mut rng);
        let p = partition(&g, 8, &mut rng);
        (g, p)
    }

    #[test]
    fn batches_cover_all_nodes_exactly_once() {
        let (g, p) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let batches = make_batches(&g, &p, 2, &mut rng);
        let mut seen = vec![false; g.num_nodes()];
        for b in &batches {
            for &u in &b.nodes {
                assert!(!seen[u], "node {u} in two batches");
                seen[u] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batch_count_matches_cluster_grouping() {
        let (g, p) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let batches = make_batches(&g, &p, 3, &mut rng);
        // 8 clusters in groups of 3 -> 3 batches (3+3+2).
        assert_eq!(batches.len(), 3);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let (g, p) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let batches = make_batches(&g, &p, 8, &mut rng);
        // All clusters in one batch: the batch graph is the whole graph.
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].graph.num_edges(), g.num_edges());
    }

    #[test]
    fn dense_adjacency_matches_graph() {
        let (g, p) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let batches = make_batches(&g, &p, 2, &mut rng);
        let b = &batches[0];
        let adj = b.dense_adjacency();
        assert_eq!(adj.rows(), b.num_nodes());
        for (u, v) in b.graph.edges() {
            assert_eq!(adj[(u, v)], 1.0);
        }
        let ones = adj.count_where(|x| x == 1.0);
        assert_eq!(ones, 2 * b.graph.num_edges());
    }

    #[test]
    fn gather_features_and_labels_align() {
        let (g, p) = setup();
        let features = Matrix::from_fn(g.num_nodes(), 3, |r, c| (r * 3 + c) as f32);
        let labels: Vec<usize> = (0..g.num_nodes()).map(|u| u % 4).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let batches = make_batches(&g, &p, 2, &mut rng);
        for b in &batches {
            let f = b.gather_features(&features);
            let l = b.gather_labels(&labels);
            for (local, &global) in b.nodes.iter().enumerate() {
                assert_eq!(f[(local, 0)], features[(global, 0)]);
                assert_eq!(l[local], labels[global]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "clusters_per_batch must be positive")]
    fn zero_clusters_per_batch_panics() {
        let (g, p) = setup();
        make_batches(&g, &p, 0, &mut StdRng::seed_from_u64(0));
    }
}
