//! Scaled-down synthetic replicas of the paper's datasets (Table II).
//!
//! The paper evaluates on PPI, Reddit, Amazon2M and Ogbl-citation2. Those
//! datasets (and METIS) are unavailable in this environment, so each
//! preset generates a seeded stochastic-block-model graph with a
//! power-law overlay whose *relative* statistics (density, community
//! count, partition/batch configuration) mirror the original at roughly
//! 1/100–1/2000 scale. Community ids double as classification labels and
//! features are noisy class centroids, so neighbourhood aggregation
//! genuinely improves accuracy — which is what makes adjacency-matrix
//! faults measurably harmful, as in the paper.

use fare_tensor::{init, Matrix};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};

use crate::{generate, CsrGraph};

/// Which GNN model the paper trains on a dataset (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph Convolutional Network.
    Gcn,
    /// Graph Attention Network.
    Gat,
    /// GraphSAGE with mean aggregation.
    Sage,
}

fare_rt::json_enum!(ModelKind { Gcn, Gat, Sage });

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::Gcn => write!(f, "GCN"),
            ModelKind::Gat => write!(f, "GAT"),
            ModelKind::Sage => write!(f, "SAGE"),
        }
    }
}

/// The four dataset presets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Protein–protein interaction (56,944 nodes / 818,716 edges).
    Ppi,
    /// Reddit (232,965 nodes / 11,606,919 edges).
    Reddit,
    /// Amazon2M (2,449,029 nodes / 61,859,140 edges).
    Amazon2M,
    /// Ogbl-citation2 (2,927,963 nodes / 30,561,187 edges).
    Ogbl,
}

fare_rt::json_enum!(DatasetKind { Ppi, Reddit, Amazon2M, Ogbl });

impl DatasetKind {
    /// All four presets in Table II order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Ppi,
            DatasetKind::Reddit,
            DatasetKind::Amazon2M,
            DatasetKind::Ogbl,
        ]
    }

    /// The preset's configuration.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Ppi => DatasetSpec {
                kind: *self,
                name: "PPI",
                paper_nodes: 56_944,
                paper_edges: 818_716,
                paper_batch: 5,
                paper_partitions: 250,
                nodes: 480,
                communities: 6,
                p_in: 0.12,
                p_out: 0.004,
                hub_fraction: 0.5,
                feature_dim: 24,
                partitions: 20,
                clusters_per_batch: 2,
                models: &[ModelKind::Gcn, ModelKind::Gat],
            },
            DatasetKind::Reddit => DatasetSpec {
                kind: *self,
                name: "Reddit",
                paper_nodes: 232_965,
                paper_edges: 11_606_919,
                paper_batch: 10,
                paper_partitions: 1_500,
                nodes: 600,
                communities: 8,
                p_in: 0.15,
                p_out: 0.003,
                hub_fraction: 1.0,
                feature_dim: 24,
                partitions: 30,
                clusters_per_batch: 3,
                models: &[ModelKind::Gcn],
            },
            DatasetKind::Amazon2M => DatasetSpec {
                kind: *self,
                name: "Amazon2M",
                paper_nodes: 2_449_029,
                paper_edges: 61_859_140,
                paper_batch: 20,
                paper_partitions: 10_000,
                nodes: 720,
                communities: 9,
                p_in: 0.12,
                p_out: 0.002,
                hub_fraction: 0.8,
                feature_dim: 24,
                partitions: 40,
                clusters_per_batch: 4,
                models: &[ModelKind::Gcn, ModelKind::Sage],
            },
            DatasetKind::Ogbl => DatasetSpec {
                kind: *self,
                name: "Ogbl",
                paper_nodes: 2_927_963,
                paper_edges: 30_561_187,
                paper_batch: 16,
                paper_partitions: 15_000,
                nodes: 640,
                communities: 8,
                p_in: 0.10,
                p_out: 0.002,
                hub_fraction: 1.2,
                feature_dim: 24,
                partitions: 32,
                clusters_per_batch: 3,
                models: &[ModelKind::Sage],
            },
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

/// Full generation recipe for a dataset preset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which preset this is.
    pub kind: DatasetKind,
    /// Display name.
    pub name: &'static str,
    /// Node count of the original dataset (Table II).
    pub paper_nodes: usize,
    /// Edge count of the original dataset (Table II).
    pub paper_edges: usize,
    /// Clusters per mini-batch in the paper (Table II "Batch").
    pub paper_batch: usize,
    /// METIS partition count in the paper (Table II "Partitions").
    pub paper_partitions: usize,
    /// Scaled-down node count generated here.
    pub nodes: usize,
    /// Number of SBM communities (= classification classes).
    pub communities: usize,
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Inter-community edge probability.
    pub p_out: f64,
    /// Power-law overlay intensity (extra edges per node).
    pub hub_fraction: f64,
    /// Node feature dimensionality.
    pub feature_dim: usize,
    /// Scaled partition count used here.
    pub partitions: usize,
    /// Clusters per mini-batch used here (scaled down with the graph so
    /// batch subgraphs stay crossbar-tractable).
    pub clusters_per_batch: usize,
    /// GNN models the paper pairs with this dataset.
    pub models: &'static [ModelKind],
}

fare_rt::json_struct_to!(DatasetSpec { kind, name, paper_nodes, paper_edges, paper_batch, paper_partitions, nodes, communities, p_in, p_out, hub_fraction, feature_dim, partitions, clusters_per_batch, models });

/// A generated dataset: graph + features + labels + split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generation recipe.
    pub spec: DatasetSpec,
    /// The graph.
    pub graph: CsrGraph,
    /// Node features (`nodes × feature_dim`).
    pub features: Matrix,
    /// Per-node class labels in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// `true` for nodes in the training split (~70 %).
    pub train_mask: Vec<bool>,
}

impl Dataset {
    /// Generates the preset deterministically from `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// use fare_graph::datasets::{Dataset, DatasetKind};
    /// let a = Dataset::generate(DatasetKind::Ppi, 7);
    /// let b = Dataset::generate(DatasetKind::Ppi, 7);
    /// assert_eq!(a.graph, b.graph);
    /// assert_eq!(a.labels, b.labels);
    /// ```
    pub fn generate(kind: DatasetKind, seed: u64) -> Self {
        let spec = kind.spec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA12_E000);
        let (graph, labels) = generate::sbm_power_law(
            spec.nodes,
            spec.communities,
            spec.p_in,
            spec.p_out,
            spec.hub_fraction,
            &mut rng,
        );
        // Class centroids + per-node noise. Noise is strong relative to the
        // centroids so a per-node linear classifier is mediocre and
        // neighbourhood aggregation genuinely helps — the property that
        // makes adjacency faults costly.
        let centroids = init::normal(spec.communities, spec.feature_dim, 1.0, &mut rng);
        let noise = init::normal(spec.nodes, spec.feature_dim, 1.6, &mut rng);
        let features = Matrix::from_fn(spec.nodes, spec.feature_dim, |r, c| {
            centroids[(labels[r], c)] + noise[(r, c)]
        });
        let train_mask: Vec<bool> = (0..spec.nodes).map(|_| rng.gen_bool(0.7)).collect();
        let num_classes = spec.communities;
        Self {
            spec,
            graph,
            features,
            labels,
            num_classes,
            train_mask,
        }
    }

    /// Nodes in the training split.
    pub fn train_nodes(&self) -> Vec<usize> {
        self.train_mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(u, _)| u)
            .collect()
    }

    /// Nodes in the test split.
    pub fn test_nodes(&self) -> Vec<usize> {
        self.train_mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| !m)
            .map(|(u, _)| u)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate() {
        for kind in DatasetKind::all() {
            let ds = Dataset::generate(kind, 1);
            assert_eq!(ds.graph.num_nodes(), ds.spec.nodes);
            assert_eq!(ds.features.rows(), ds.spec.nodes);
            assert_eq!(ds.features.cols(), ds.spec.feature_dim);
            assert_eq!(ds.labels.len(), ds.spec.nodes);
            assert_eq!(ds.num_classes, ds.spec.communities);
            assert!(ds.labels.iter().all(|&l| l < ds.num_classes));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Reddit, 99);
        let b = Dataset::generate(DatasetKind::Reddit, 99);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.train_mask, b.train_mask);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(DatasetKind::Ppi, 1);
        let b = Dataset::generate(DatasetKind::Ppi, 2);
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn split_partitions_nodes() {
        let ds = Dataset::generate(DatasetKind::Ogbl, 5);
        let train = ds.train_nodes();
        let test = ds.test_nodes();
        assert_eq!(train.len() + test.len(), ds.spec.nodes);
        // ~70/30 split with slack.
        assert!(train.len() > ds.spec.nodes / 2);
        assert!(!test.is_empty());
    }

    #[test]
    fn relative_scale_ordering_matches_table2() {
        // Table II orders datasets by size: PPI < Reddit < Amazon2M ~ Ogbl.
        let sizes: Vec<usize> = DatasetKind::all()
            .iter()
            .map(|k| k.spec().nodes)
            .collect();
        assert!(sizes[0] < sizes[1]);
        assert!(sizes[1] < sizes[2]);
    }

    #[test]
    fn features_correlate_with_labels() {
        // Mean intra-class feature distance should be below inter-class
        // distance (centroid structure exists).
        let ds = Dataset::generate(DatasetKind::Ppi, 3);
        let dist = |a: usize, b: usize| -> f32 {
            (0..ds.features.cols())
                .map(|c| (ds.features[(a, c)] - ds.features[(b, c)]).powi(2))
                .sum::<f32>()
        };
        let mut intra = (0.0f64, 0usize);
        let mut inter = (0.0f64, 0usize);
        for u in (0..ds.spec.nodes).step_by(7) {
            for v in (u + 1..ds.spec.nodes).step_by(11) {
                let d = dist(u, v) as f64;
                if ds.labels[u] == ds.labels[v] {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        assert!((intra.0 / intra.1 as f64) < (inter.0 / inter.1 as f64));
    }

    #[test]
    fn models_match_table2() {
        assert_eq!(DatasetKind::Ppi.spec().models, &[ModelKind::Gcn, ModelKind::Gat]);
        assert_eq!(DatasetKind::Reddit.spec().models, &[ModelKind::Gcn]);
        assert_eq!(
            DatasetKind::Amazon2M.spec().models,
            &[ModelKind::Gcn, ModelKind::Sage]
        );
        assert_eq!(DatasetKind::Ogbl.spec().models, &[ModelKind::Sage]);
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetKind::Ppi.to_string(), "PPI");
        assert_eq!(ModelKind::Sage.to_string(), "SAGE");
    }
}
