//! General weighted sparse matrices in CSR form.
//!
//! [`CsrMatrix`] stores the *normalised* propagation matrices the GNN
//! layers multiply by (Â = D^{-1/2}(A+I)D^{-1/2}, Ā = D^{-1}A and Āᵀ) so
//! aggregation runs at `O(nnz · d)` instead of `O(n² · d)`. Values are
//! kept in ascending column order per row; [`CsrMatrix::spmm`] therefore
//! accumulates each output row in exactly the order the dense `matmul`
//! over the same matrix would, which keeps the sparse and dense compute
//! paths numerically interchangeable.

use fare_tensor::Matrix;

/// A sparse `f32` matrix in compressed sparse row form.
///
/// Rows hold `(column, value)` pairs sorted by column; explicit zeros
/// are never stored.
///
/// # Example
///
/// ```
/// use fare_graph::CsrMatrix;
/// use fare_tensor::Matrix;
///
/// let dense = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 0.0]]);
/// let sparse = CsrMatrix::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 2);
/// let x = Matrix::identity(2);
/// assert_eq!(sparse.spmm(&x), dense);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` entry lists.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range or a row's columns are
    /// not strictly ascending.
    pub fn from_row_entries(rows: usize, cols: usize, entries: &[Vec<(usize, f32)>]) -> Self {
        assert_eq!(entries.len(), rows, "entry list must have one Vec per row");
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        offsets.push(0);
        for row in entries {
            let mut prev: Option<usize> = None;
            for &(c, v) in row {
                assert!(c < cols, "column {c} out of range for {cols} columns");
                assert!(prev.is_none_or(|p| p < c), "row columns must be strictly ascending");
                prev = Some(c);
                indices.push(c);
                values.push(v);
            }
            offsets.push(indices.len());
        }
        Self { rows, cols, offsets, indices, values }
    }

    /// Extracts the nonzero entries of a dense matrix.
    pub fn from_dense(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        offsets.push(0);
        for r in 0..rows {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            offsets.push(indices.len());
        }
        Self { rows, cols, offsets, indices, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` entries of row `r`, ascending by column.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(r < self.rows, "row {r} out of range");
        let span = self.offsets[r]..self.offsets[r + 1];
        self.indices[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// The transposed matrix (counting-sort construction, deterministic).
    ///
    /// Row `c` of the result holds `(r, self[r][c])` pairs ascending by
    /// `r` — exactly the accumulation order a dense `t_matmul` walks.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for k in self.offsets[r]..self.offsets[r + 1] {
                let c = self.indices[k];
                let slot = cursor[c];
                cursor[c] += 1;
                indices[slot] = r;
                values[slot] = self.values[k];
            }
        }
        Self { rows: self.cols, cols: self.rows, offsets, indices, values }
    }

    /// Dense copy (small matrices / tests).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Sparse × dense product `self · x`, parallelised over output rows.
    ///
    /// Each output row is accumulated serially in ascending column
    /// order by exactly one worker, so the result is bit-identical for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.cols,
            "spmm: rhs has {} rows, lhs has {} columns",
            x.rows(),
            self.cols
        );
        let mut out = Matrix::zeros(self.rows, x.cols());
        let x_cols = x.cols();
        fare_rt::par::par_row_chunks(out.as_mut_slice(), x_cols, |r, out_row| {
            for k in self.offsets[r]..self.offsets[r + 1] {
                let a = self.values[k];
                for (o, &b) in out_row.iter_mut().zip(x.row(self.indices[k])) {
                    *o += a * b;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_fn(7, 5, |r, c| {
            if (r * 5 + c) % 3 == 0 {
                (r as f32 - 2.0) * 0.5 + c as f32
            } else {
                0.0
            }
        })
    }

    #[test]
    fn from_dense_round_trips() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.nnz(), d.count_where(|v| v != 0.0));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.transpose().to_dense(), d.transpose());
    }

    #[test]
    fn transpose_involution() {
        let s = CsrMatrix::from_dense(&sample_dense());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn spmm_matches_dense_matmul_exactly() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let x = Matrix::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let sparse = s.spmm(&x);
        let dense = d.matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmm_identical_across_thread_counts() {
        let d = Matrix::from_fn(40, 40, |r, c| {
            if (r * 7 + c * 3) % 5 == 0 {
                (r as f32 * 0.3 - c as f32 * 0.1).cos()
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d);
        let x = Matrix::from_fn(40, 6, |r, c| ((r + 2 * c) as f32).sin());
        fare_rt::par::set_threads(1);
        let one = s.spmm(&x);
        fare_rt::par::set_threads(8);
        let eight = s.spmm(&x);
        fare_rt::par::set_threads(0);
        let bits = |m: &Matrix| m.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&one), bits(&eight));
    }

    #[test]
    fn from_row_entries_and_accessors() {
        let s = CsrMatrix::from_row_entries(
            2,
            3,
            &[vec![(0, 1.0), (2, -2.0)], vec![(1, 0.5)]],
        );
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, -2.0)]);
        assert_eq!(s.row_entries(1).collect::<Vec<_>>(), vec![(1, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_row_entries_rejects_unsorted() {
        CsrMatrix::from_row_entries(1, 3, &[vec![(2, 1.0), (0, 1.0)]]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let s = CsrMatrix::from_dense(&Matrix::zeros(3, 4));
        assert_eq!(s.nnz(), 0);
        let x = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
        assert_eq!(s.spmm(&x), Matrix::zeros(3, 2));
    }
}
