//! Loading real graph datasets from disk.
//!
//! The reproduction ships synthetic Table II replicas, but a downstream
//! user will want to run FARe on their own graphs. This module reads the
//! common whitespace-separated formats:
//!
//! - **edge list** — one `u v` pair per line; `#` starts a comment;
//!   duplicate edges and self loops are dropped (matching
//!   [`CsrGraph::from_edges`]);
//! - **labels** — one integer class per line, node order;
//! - **features** — one whitespace-separated float row per line, node
//!   order (optional — [`propagated_features`] synthesises
//!   structure-correlated features when absent).
//!
//! All parsers take `impl BufRead` (pass `&mut reader` to reuse one) and
//! have path-based conveniences.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader};
use std::path::Path;

use fare_tensor::{init, Matrix};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};

use crate::datasets::{Dataset, DatasetKind, DatasetSpec, ModelKind};
use crate::CsrGraph;

/// Error parsing a graph/label/feature file.
#[derive(Debug)]
pub enum ParseDataError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content at a 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ParseDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDataError::Io(e) => write!(f, "i/o error: {e}"),
            ParseDataError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for ParseDataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDataError::Io(e) => Some(e),
            ParseDataError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseDataError {
    fn from(e: std::io::Error) -> Self {
        ParseDataError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ParseDataError {
    ParseDataError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads an undirected edge list. Node ids may be sparse; the graph gets
/// `max_id + 1` nodes.
///
/// # Errors
///
/// Returns [`ParseDataError`] on I/O failure or malformed lines.
///
/// # Example
///
/// ```
/// use fare_graph::io::read_edge_list;
/// let text = "# a triangle\n0 1\n1 2\n2 0\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// # Ok::<(), fare_graph::io::ParseDataError>(())
/// ```
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, ParseDataError> {
    let mut edges = Vec::new();
    let mut max_id = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing source node"))?
            .parse()
            .map_err(|e| parse_err(i + 1, format!("bad source node: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing target node"))?
            .parse()
            .map_err(|e| parse_err(i + 1, format!("bad target node: {e}")))?;
        if parts.next().is_some() {
            return Err(parse_err(i + 1, "expected exactly two node ids"));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let nodes = if edges.is_empty() { 0 } else { max_id + 1 };
    Ok(CsrGraph::from_edges(nodes, &edges))
}

/// Reads per-node integer labels, one per line.
///
/// # Errors
///
/// Returns [`ParseDataError`] on I/O failure or malformed lines.
pub fn read_labels<R: BufRead>(reader: R) -> Result<Vec<usize>, ParseDataError> {
    let mut labels = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        labels.push(
            line.parse()
                .map_err(|e| parse_err(i + 1, format!("bad label: {e}")))?,
        );
    }
    Ok(labels)
}

/// Reads per-node feature rows (whitespace-separated floats).
///
/// # Errors
///
/// Returns [`ParseDataError`] on I/O failure, malformed floats, or
/// ragged rows.
pub fn read_features<R: BufRead>(reader: R) -> Result<Matrix, ParseDataError> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut width: Option<usize> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Vec<f32> = line
            .split_whitespace()
            .map(|t| t.parse::<f32>())
            .collect::<Result<_, _>>()
            .map_err(|e| parse_err(i + 1, format!("bad feature value: {e}")))?;
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(parse_err(
                    i + 1,
                    format!("ragged feature row: expected {w} values, got {}", row.len()),
                ))
            }
            _ => {}
        }
        rows.push(row);
    }
    let w = width.unwrap_or(0);
    let data: Vec<f32> = rows.into_iter().flatten().collect();
    Ok(Matrix::from_vec(data.len() / w.max(1), w, data))
}

/// Synthesises structure-correlated features when a dataset has none:
/// random Gaussian vectors smoothed by one round of mean aggregation (so
/// connected nodes get similar features), with the last column carrying
/// the node's standardised log-degree (so degree-driven tasks are
/// learnable too).
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn propagated_features(graph: &CsrGraph, dim: usize, seed: u64) -> Matrix {
    assert!(dim > 0, "feature dim must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_0D);
    let raw = init::normal(graph.num_nodes(), dim, 1.0, &mut rng);
    let smoothed = graph.mean_aggregate(&raw);
    // Blend: keep some per-node identity so features are not purely
    // positional.
    let mut out = raw.zip_map(&smoothed, |a, b| 0.5 * a + b);
    // Standardised log-degree channel.
    let n = graph.num_nodes();
    if n > 0 {
        let logdeg: Vec<f32> = (0..n).map(|u| ((graph.degree(u) + 1) as f32).ln()).collect();
        let mean = logdeg.iter().sum::<f32>() / n as f32;
        let var = logdeg.iter().map(|d| (d - mean).powi(2)).sum::<f32>() / n as f32;
        let std = var.sqrt().max(1e-6);
        let last = dim - 1;
        for (u, &d) in logdeg.iter().enumerate() {
            out[(u, last)] = (d - mean) / std;
        }
    }
    out
}

/// Assembles a custom [`Dataset`] from loaded parts.
///
/// `features = None` synthesises them with [`propagated_features`];
/// the train mask is a seeded 70/30 split. `partitions` and
/// `clusters_per_batch` configure mini-batching exactly like the
/// presets.
///
/// # Errors
///
/// Returns [`ParseDataError::Parse`] (line 0) when the label count does
/// not match the node count, features are mis-shaped, or labels are
/// empty.
pub fn assemble_dataset(
    graph: CsrGraph,
    labels: Vec<usize>,
    features: Option<Matrix>,
    partitions: usize,
    clusters_per_batch: usize,
    seed: u64,
) -> Result<Dataset, ParseDataError> {
    let n = graph.num_nodes();
    if labels.len() != n {
        return Err(parse_err(
            0,
            format!("{} labels for {n} nodes", labels.len()),
        ));
    }
    if n == 0 {
        return Err(parse_err(0, "empty graph"));
    }
    let num_classes = labels.iter().max().map_or(0, |m| m + 1);
    if num_classes == 0 {
        return Err(parse_err(0, "no classes"));
    }
    let features = match features {
        Some(f) => {
            if f.rows() != n {
                return Err(parse_err(
                    0,
                    format!("{} feature rows for {n} nodes", f.rows()),
                ));
            }
            f
        }
        None => propagated_features(&graph, 24, seed),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5917);
    let train_mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.7)).collect();
    let spec = DatasetSpec {
        kind: DatasetKind::Ppi, // placeholder tag; `name` identifies it
        name: "custom",
        paper_nodes: 0,
        paper_edges: 0,
        paper_batch: 0,
        paper_partitions: 0,
        nodes: n,
        communities: num_classes,
        p_in: 0.0,
        p_out: 0.0,
        hub_fraction: 0.0,
        feature_dim: features.cols(),
        partitions,
        clusters_per_batch,
        models: &[ModelKind::Gcn],
    };
    Ok(Dataset {
        spec,
        graph,
        features,
        labels,
        num_classes,
        train_mask,
    })
}

/// Loads a dataset from files: an edge list, a label file, and an
/// optional feature file.
///
/// # Errors
///
/// Returns [`ParseDataError`] on any I/O or format problem.
pub fn load_dataset(
    edge_list: &Path,
    labels: &Path,
    features: Option<&Path>,
    partitions: usize,
    clusters_per_batch: usize,
    seed: u64,
) -> Result<Dataset, ParseDataError> {
    let graph = read_edge_list(BufReader::new(std::fs::File::open(edge_list)?))?;
    let labels = read_labels(BufReader::new(std::fs::File::open(labels)?))?;
    let features = features
        .map(|p| read_features(BufReader::new(std::fs::File::open(p)?)))
        .transpose()?;
    assemble_dataset(graph, labels, features, partitions, clusters_per_batch, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_with_comments_and_blanks() {
        let text = "# header\n\n0 1\n1 2\n\n# tail\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_sparse_ids() {
        let g = read_edge_list("0 5\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert!(g.has_edge(0, 5));
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_edge_list("0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exactly two"));
        let err = read_edge_list("7\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing target"));
    }

    #[test]
    fn labels_parse() {
        assert_eq!(read_labels("0\n1\n# c\n2\n".as_bytes()).unwrap(), vec![0, 1, 2]);
        assert!(read_labels("1.5\n".as_bytes()).is_err());
    }

    #[test]
    fn features_parse_and_reject_ragged() {
        let f = read_features("1.0 2.0\n3.0 4.0\n".as_bytes()).unwrap();
        assert_eq!(f.shape(), (2, 2));
        assert_eq!(f[(1, 0)], 3.0);
        let err = read_features("1.0 2.0\n3.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("ragged"));
    }

    #[test]
    fn propagated_features_correlate_with_structure() {
        // Two cliques: intra-clique feature distance should be smaller
        // than inter-clique.
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(12, &edges);
        let f = propagated_features(&g, 8, 3);
        let dist = |a: usize, b: usize| -> f32 {
            (0..8).map(|c| (f[(a, c)] - f[(b, c)]).powi(2)).sum()
        };
        let intra = (dist(0, 1) + dist(6, 7)) / 2.0;
        let inter = (dist(0, 6) + dist(1, 7)) / 2.0;
        assert!(intra < inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn propagated_features_carry_degree_channel() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let f = propagated_features(&g, 4, 1);
        // The hub (node 0) has the largest value in the degree channel.
        let hub = f[(0, 3)];
        for u in 1..5 {
            assert!(hub > f[(u, 3)], "hub degree channel not maximal");
        }
    }

    #[test]
    fn assemble_dataset_validates() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(assemble_dataset(g.clone(), vec![0, 1], None, 2, 1, 0).is_err());
        let ds = assemble_dataset(g, vec![0, 1, 0, 1], None, 2, 1, 0).unwrap();
        assert_eq!(ds.num_classes, 2);
        assert_eq!(ds.spec.name, "custom");
        assert_eq!(ds.features.shape(), (4, 24));
    }

    #[test]
    fn load_dataset_end_to_end_from_disk() {
        let dir = std::env::temp_dir().join(format!("fare_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("edges.txt");
        let labels = dir.join("labels.txt");
        std::fs::write(&edges, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        std::fs::write(&labels, "0\n0\n1\n1\n").unwrap();
        let ds = load_dataset(&edges, &labels, None, 2, 1, 7).unwrap();
        assert_eq!(ds.graph.num_nodes(), 4);
        assert_eq!(ds.num_classes, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
