//! Property-based tests for the graph crate.

use fare_graph::batch::make_batches;
use fare_graph::generate;
use fare_graph::partition::{bfs_partition, partition};
use fare_graph::CsrGraph;
use fare_rt::prop::prelude::*;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

fn random_graph(seed: u64, n: usize, p: f64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::erdos_renyi(n, p, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_is_symmetric(seed in 0u64..1000, n in 2usize..60, p in 0.0f64..0.5) {
        let g = random_graph(seed, n, p);
        for u in 0..n {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge ({u},{v})");
            }
        }
    }

    #[test]
    fn edges_iterator_consistent_with_num_edges(
        seed in 0u64..1000, n in 2usize..60, p in 0.0f64..0.5,
    ) {
        let g = random_graph(seed, n, p);
        prop_assert_eq!(g.edges().count(), g.num_edges());
        prop_assert!(g.edges().all(|(u, v)| u < v));
    }

    #[test]
    fn dense_round_trip(seed in 0u64..1000, n in 2usize..40, p in 0.0f64..0.5) {
        let g = random_graph(seed, n, p);
        let dense = g.to_dense();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let rebuilt = CsrGraph::from_edges(n, &edges);
        prop_assert_eq!(&rebuilt, &g);
        let ones = dense.count_where(|v| v == 1.0);
        prop_assert_eq!(ones, 2 * g.num_edges());
    }

    #[test]
    fn induced_subgraph_edge_subset(
        seed in 0u64..1000, n in 4usize..40, p in 0.0f64..0.5,
    ) {
        let g = random_graph(seed, n, p);
        let nodes: Vec<usize> = (0..n).step_by(2).collect();
        let sub = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.num_nodes(), nodes.len());
        for (lu, lv) in sub.edges() {
            prop_assert!(g.has_edge(nodes[lu], nodes[lv]));
        }
    }

    #[test]
    fn partition_covers_and_respects_k(
        seed in 0u64..1000, n in 10usize..80, k in 2usize..6,
    ) {
        let g = random_graph(seed, n, 0.1);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        for parts in [partition(&g, k, &mut rng), bfs_partition(&g, k, &mut rng)] {
            prop_assert_eq!(parts.assignment().len(), n);
            prop_assert!(parts.assignment().iter().all(|&p| p < k));
            prop_assert_eq!(parts.sizes().iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn batches_partition_the_node_set(
        seed in 0u64..1000, n in 12usize..80, k in 3usize..6, cpb in 1usize..4,
    ) {
        let g = random_graph(seed, n, 0.1);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let parts = partition(&g, k, &mut rng);
        let batches = make_batches(&g, &parts, cpb, &mut rng);
        let mut seen = vec![false; n];
        for b in &batches {
            for &u in &b.nodes {
                prop_assert!(!seen[u], "node {u} appears twice");
                seen[u] = true;
            }
            // Batch graphs only contain edges the parent graph has.
            for (lu, lv) in b.graph.edges() {
                prop_assert!(g.has_edge(b.nodes[lu], b.nodes[lv]));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sbm_labels_are_balanced_classes(
        seed in 0u64..1000, communities in 2usize..6,
    ) {
        let n = communities * 20;
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, labels) = generate::sbm(n, communities, 0.2, 0.01, &mut rng);
        for c in 0..communities {
            prop_assert_eq!(labels.iter().filter(|&&l| l == c).count(), 20);
        }
    }

    #[test]
    fn connected_components_invariants(
        seed in 0u64..1000, n in 2usize..50, p in 0.0f64..0.3,
    ) {
        let g = random_graph(seed, n, p);
        let (comp, count) = g.connected_components();
        prop_assert_eq!(comp.len(), n);
        prop_assert!(comp.iter().all(|&c| c < count));
        // Every edge stays within one component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
    }
}

/// Bitwise view of a matrix, so `-0.0` vs `0.0` and ULP drift both fail.
fn bits(m: &fare_tensor::Matrix) -> Vec<u32> {
    m.iter().map(|v| v.to_bits()).collect()
}

// Sparse kernels vs their dense reference paths, and thread-count
// invariance of every parallel kernel. These are the contracts the GNN
// layers rely on: the CSR aggregation must reproduce the seed's dense
// `normalise + matmul` pipeline *bit for bit*, at any worker count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_spmm_matches_dense_matmul_bitwise(
        seed in 0u64..1000, r in 1usize..30, k in 1usize..30, c in 1usize..8,
    ) {
        use fare_rt::rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fare_tensor::Matrix::from_fn(r, k, |_, _| {
            if rng.gen_bool(0.4) {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        let x = fare_tensor::init::normal(k, c, 1.0, &mut rng);
        let sparse = fare_graph::CsrMatrix::from_dense(&a);
        prop_assert_eq!(bits(&sparse.spmm(&x)), bits(&a.matmul(&x)));
    }

    #[test]
    fn gcn_aggregate_matches_dense_path_bitwise(
        seed in 0u64..1000, n in 2usize..40, p in 0.0f64..0.6, d in 1usize..6,
    ) {
        let g = random_graph(seed, n, p);
        let mut rng = StdRng::seed_from_u64(seed ^ 9);
        let x = fare_tensor::init::normal(n, d, 1.0, &mut rng);
        let dense = fare_tensor::ops::gcn_normalise(&g.to_dense()).matmul(&x);
        prop_assert_eq!(bits(&g.gcn_aggregate(&x)), bits(&dense));
    }

    #[test]
    fn mean_aggregate_matches_dense_path_bitwise(
        seed in 0u64..1000, n in 2usize..40, p in 0.0f64..0.6, d in 1usize..6,
    ) {
        let g = random_graph(seed, n, p);
        let mut rng = StdRng::seed_from_u64(seed ^ 10);
        let x = fare_tensor::init::normal(n, d, 1.0, &mut rng);
        let dense = fare_tensor::ops::row_normalise(&g.to_dense()).matmul(&x);
        prop_assert_eq!(bits(&g.mean_aggregate(&x)), bits(&dense));
    }

    #[test]
    fn graph_view_matches_dense_construction_bitwise(
        seed in 0u64..1000, n in 2usize..30, p in 0.0f64..0.6, d in 1usize..6,
    ) {
        let g = random_graph(seed, n, p);
        let mut rng = StdRng::seed_from_u64(seed ^ 11);
        let x = fare_tensor::init::normal(n, d, 1.0, &mut rng);
        let from_graph = fare_graph::GraphView::from_graph(&g);
        let from_dense = fare_graph::GraphView::from_dense(g.to_dense());
        prop_assert_eq!(
            bits(&from_graph.gcn_norm().spmm(&x)),
            bits(&from_dense.gcn_norm().spmm(&x))
        );
        prop_assert_eq!(
            bits(&from_graph.mean_norm().spmm(&x)),
            bits(&from_dense.mean_norm().spmm(&x))
        );
        prop_assert_eq!(
            bits(&from_graph.mean_norm_t().spmm(&x)),
            bits(&from_dense.mean_norm_t().spmm(&x))
        );
    }

    #[test]
    fn aggregation_kernels_thread_invariant(
        seed in 0u64..1000, n in 2usize..50, p in 0.0f64..0.4, d in 1usize..8,
    ) {
        let g = random_graph(seed, n, p);
        let mut rng = StdRng::seed_from_u64(seed ^ 12);
        let x = fare_tensor::init::normal(n, d, 1.0, &mut rng);
        let m = fare_graph::CsrMatrix::from_dense(&g.to_dense());
        let run = |t: usize| {
            fare_rt::par::set_threads(t);
            (g.spmm(&x), g.gcn_aggregate(&x), g.mean_aggregate(&x), m.spmm(&x))
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        fare_rt::par::set_threads(0);
        for (serial, par) in [(&one, &two), (&one, &eight)] {
            prop_assert_eq!(bits(&serial.0), bits(&par.0));
            prop_assert_eq!(bits(&serial.1), bits(&par.1));
            prop_assert_eq!(bits(&serial.2), bits(&par.2));
            prop_assert_eq!(bits(&serial.3), bits(&par.3));
        }
    }
}
