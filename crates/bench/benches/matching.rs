//! Ablation bench: exact Hungarian vs b-Suitor ½-approximation vs greedy
//! for the row-permutation assignment at crossbar sizes 16–128.
//!
//! Supports the DESIGN.md design-choice discussion: the paper picks
//! b-Suitor for speed; this quantifies the quality/runtime trade-off.

use fare_rt::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fare_matching::{CostMatrix, Matcher};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_cost(n: usize, seed: u64) -> CostMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    CostMatrix::from_fn(n, n, |_, _| rng.gen_range(0.0..16.0f64).round())
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    for &n in &[16usize, 32, 64, 128] {
        let cost = random_cost(n, 7);
        for matcher in [
            Matcher::Hungarian,
            Matcher::BSuitor,
            Matcher::Auction,
            Matcher::Greedy,
        ] {
            group.bench_with_input(
                BenchmarkId::new(matcher.to_string(), n),
                &cost,
                |b, cost| b.iter(|| black_box(matcher.solve(black_box(cost)))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matchers
}
criterion_main!(benches);
