//! Benches the aggregation kernels: sparse CSR aggregation vs the dense
//! normalise-then-matmul path, across dataset-scale graphs.

use fare_rt::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fare_graph::datasets::{Dataset, DatasetKind};
use fare_tensor::{init, ops};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;
use std::hint::black_box;

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    for kind in [DatasetKind::Ppi, DatasetKind::Amazon2M] {
        let ds = Dataset::generate(kind, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let x = init::normal(ds.graph.num_nodes(), 24, 1.0, &mut rng);
        let dense_adj = ds.graph.to_dense();

        group.bench_with_input(
            BenchmarkId::new("sparse_gcn", ds.spec.name),
            &(),
            |b, ()| b.iter(|| black_box(ds.graph.gcn_aggregate(black_box(&x)))),
        );
        group.bench_with_input(
            BenchmarkId::new("dense_gcn", ds.spec.name),
            &(),
            |b, ()| {
                b.iter(|| {
                    let norm = ops::gcn_normalise(black_box(&dense_adj));
                    black_box(norm.matmul(&x))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sparse_mean", ds.spec.name),
            &(),
            |b, ()| b.iter(|| black_box(ds.graph.mean_aggregate(black_box(&x)))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aggregation
}
criterion_main!(benches);
