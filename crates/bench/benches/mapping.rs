//! Benches for Algorithm 1 and its ablations:
//!
//! - full fault-aware mapping with pruning on vs off,
//! - Hungarian vs b-Suitor inside the mapping,
//! - post-deployment: full remap vs row-permutation-only refresh (the
//!   paper's optimisation).

use fare_rt::bench::{criterion_group, criterion_main, Criterion};
use fare_core::mapping::{
    map_adjacency, map_adjacency_cached, reference, refresh_row_permutations,
    refresh_row_permutations_cached, sequential_mapping, MappingConfig, RemapCache,
};
use fare_matching::Matcher;
use fare_reram::{CrossbarArray, FaultSpec};
use fare_tensor::Matrix;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use std::hint::black_box;

fn setup(nodes: usize, n: usize, density: f64) -> (Matrix, CrossbarArray) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut adj = Matrix::zeros(nodes, nodes);
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if rng.gen_bool(0.08) {
                adj[(i, j)] = 1.0;
                adj[(j, i)] = 1.0;
            }
        }
    }
    let blocks = nodes.div_ceil(n).pow(2);
    let mut array = CrossbarArray::new((blocks * 3) / 2, n);
    array.inject(&FaultSpec::density(density), &mut rng);
    (adj, array)
}

fn bench_mapping(c: &mut Criterion) {
    let (adj, array) = setup(96, 16, 0.05);
    let mut group = c.benchmark_group("algorithm1");
    group.bench_function("fare_bsuitor_prune", |b| {
        let cfg = MappingConfig {
            matcher: Matcher::BSuitor,
            prune: true,
            ..MappingConfig::default()
        };
        b.iter(|| black_box(map_adjacency(black_box(&adj), &array, &cfg)))
    });
    group.bench_function("fare_bsuitor_noprune", |b| {
        let cfg = MappingConfig {
            matcher: Matcher::BSuitor,
            prune: false,
            ..MappingConfig::default()
        };
        b.iter(|| black_box(map_adjacency(black_box(&adj), &array, &cfg)))
    });
    group.bench_function("fare_hungarian_prune", |b| {
        let cfg = MappingConfig {
            matcher: Matcher::Hungarian,
            prune: true,
            ..MappingConfig::default()
        };
        b.iter(|| black_box(map_adjacency(black_box(&adj), &array, &cfg)))
    });
    group.bench_function("sequential_unaware", |b| {
        b.iter(|| black_box(sequential_mapping(black_box(&adj), &array)))
    });
    group.finish();
}

/// The fast path against the pre-fast-path full `n × n` pipeline it
/// replaced (kept in `fare_core::mapping::reference`).
fn bench_fast_path(c: &mut Criterion) {
    let (adj, array) = setup(96, 16, 0.05);
    let cfg = MappingConfig::default();
    let mut group = c.benchmark_group("fast_path");
    group.bench_function("map_adjacency_full_nxn", |b| {
        b.iter(|| black_box(reference::map_adjacency_full(black_box(&adj), &array, &cfg)))
    });
    group.bench_function("map_adjacency_fast", |b| {
        b.iter(|| black_box(map_adjacency(black_box(&adj), &array, &cfg)))
    });
    group.finish();
}

fn bench_post_deployment(c: &mut Criterion) {
    let (adj, mut array) = setup(96, 16, 0.03);
    let cfg = MappingConfig::default();
    let mapping = map_adjacency(&adj, &array, &cfg);
    // Post-deployment faults appear.
    let mut rng = StdRng::seed_from_u64(12);
    array.inject(&FaultSpec::density(0.01), &mut rng);

    let mut group = c.benchmark_group("post_deployment");
    group.bench_function("full_remap", |b| {
        b.iter(|| black_box(map_adjacency(black_box(&adj), &array, &cfg)))
    });
    group.bench_function("row_perm_refresh", |b| {
        b.iter(|| {
            black_box(refresh_row_permutations(
                black_box(&adj),
                &array,
                &mapping,
                Matcher::BSuitor,
            ))
        })
    });
    group.bench_function("row_perm_refresh_cached", |b| {
        // Warm the cache against the post-injection array once: the
        // steady-state BIST epoch where few crossbars mutated.
        let mut cache = RemapCache::new();
        let mapping = map_adjacency_cached(&adj, &array, &cfg, &mut cache);
        b.iter(|| {
            let mut warm = cache.clone();
            black_box(refresh_row_permutations_cached(
                black_box(&adj),
                &array,
                &mapping,
                Matcher::BSuitor,
                &mut warm,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mapping, bench_fast_path, bench_post_deployment
}
criterion_main!(benches);
