//! Benches the GNN substrate: forward+backward per architecture, on
//! ideal vs faulty readers, plus one full training epoch.

use fare_rt::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fare_core::{FaultStrategy, FaultyWeightReader, TrainConfig, Trainer};
use fare_gnn::{Adam, Gnn, GnnDims, IdealReader};
use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare_graph::GraphView;
use fare_reram::FaultSpec;
use fare_tensor::{init, ops, Matrix};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use std::hint::black_box;

fn batch_graph(n: usize, seed: u64) -> (GraphView, Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.1) {
                adj[(i, j)] = 1.0;
                adj[(j, i)] = 1.0;
            }
        }
    }
    let x = init::normal(n, 24, 1.0, &mut rng);
    let labels = (0..n).map(|i| i % 6).collect();
    (GraphView::from_dense(adj), x, labels)
}

fn bench_forward_backward(c: &mut Criterion) {
    let (adj, x, labels) = batch_graph(64, 1);
    let dims = GnnDims {
        input: 24,
        hidden: 16,
        output: 6,
    };
    let mut group = c.benchmark_group("forward_backward");
    for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = Gnn::new(kind, dims, &mut rng);
        let mut opt = Adam::new(0.01, &model);
        group.bench_with_input(BenchmarkId::new("ideal", kind.to_string()), &(), |b, ()| {
            b.iter(|| {
                let (logits, cache) = model.forward(&adj, &x, &IdealReader);
                let (_, grad) = ops::cross_entropy_with_grad(&logits, &labels);
                let grads = model.backward(&adj, &cache, &grad);
                model.apply_gradients(&grads, &mut opt);
                black_box(())
            })
        });
    }
    group.finish();
}

fn bench_faulty_reader(c: &mut Criterion) {
    let (adj, x, _) = batch_graph(64, 3);
    let dims = GnnDims {
        input: 24,
        hidden: 16,
        output: 6,
    };
    let mut rng = StdRng::seed_from_u64(4);
    let model = Gnn::new(ModelKind::Gcn, dims, &mut rng);
    let mut reader = FaultyWeightReader::for_model(&model, 16);
    reader.inject(&FaultSpec::density(0.05), &mut rng);
    reader.set_clip(Some(1.0));

    let mut group = c.benchmark_group("reader");
    group.bench_function("ideal_forward", |b| {
        b.iter(|| black_box(model.forward(&adj, &x, &IdealReader)))
    });
    group.bench_function("faulty_forward", |b| {
        b.iter(|| black_box(model.forward(&adj, &x, &reader)))
    });
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Ppi, 5);
    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);
    for strategy in FaultStrategy::all() {
        group.bench_with_input(
            BenchmarkId::new("ppi_gcn", strategy.to_string()),
            &strategy,
            |b, &strategy| {
                let config = TrainConfig {
                    epochs: 1,
                    fault_spec: FaultSpec::density(0.03),
                    strategy,
                    ..TrainConfig::default()
                };
                b.iter(|| black_box(Trainer::new(config, 5).run(black_box(&dataset))))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_forward_backward, bench_faulty_reader, bench_training_epoch
}
criterion_main!(benches);
