//! Benches the METIS-substitute partitioner: multilevel vs plain BFS
//! region growing, across dataset presets.

use fare_rt::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fare_graph::datasets::{Dataset, DatasetKind};
use fare_graph::partition::{bfs_partition, partition};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for kind in DatasetKind::all() {
        let ds = Dataset::generate(kind, 5);
        let k = ds.spec.partitions;
        group.bench_with_input(
            BenchmarkId::new("multilevel", ds.spec.name),
            &ds,
            |b, ds| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(partition(black_box(&ds.graph), k, &mut rng))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("bfs", ds.spec.name), &ds, |b, ds| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(bfs_partition(black_box(&ds.graph), k, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioners
}
criterion_main!(benches);
