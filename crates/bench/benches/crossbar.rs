//! Micro-benches of the ReRAM substrate: fault injection, binary
//! read-back, mismatch counting and the weight corruption path.

use fare_rt::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fare_reram::weights::WeightFabric;
use fare_reram::{Bist, CrossbarArray, FaultSpec};
use fare_tensor::{FixedFormat, Matrix};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection");
    for &count in &[16usize, 96] {
        group.bench_with_input(BenchmarkId::new("inject_5pct", count), &count, |b, &count| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut array = CrossbarArray::new(count, 128);
                array.inject(&FaultSpec::density(0.05), &mut rng);
                black_box(array.fault_count())
            })
        });
    }
    group.finish();
}

fn bench_read_paths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut array = CrossbarArray::new(4, 128);
    array.inject(&FaultSpec::density(0.05), &mut rng);
    let stored = Matrix::from_fn(128, 128, |i, j| if (i * 131 + j) % 17 == 0 { 1.0 } else { 0.0 });
    let perm: Vec<usize> = (0..128).rev().collect();

    let mut group = c.benchmark_group("read");
    group.bench_function("read_binary_identity", |b| {
        b.iter(|| black_box(array.crossbar(0).read_binary(black_box(&stored), None)))
    });
    group.bench_function("read_binary_permuted", |b| {
        b.iter(|| black_box(array.crossbar(0).read_binary(black_box(&stored), Some(&perm))))
    });
    group.bench_function("mismatch_count", |b| {
        b.iter(|| black_box(array.crossbar(0).mismatch_count(black_box(&stored), None)))
    });
    group.bench_function("bist_scan", |b| {
        b.iter(|| black_box(Bist::scan(black_box(&array))))
    });
    group.finish();
}

fn bench_weight_path(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut fabric = WeightFabric::for_shape(128, 64, 128, FixedFormat::default());
    fabric.inject(&FaultSpec::density(0.05), &mut rng);
    let weights = Matrix::from_fn(128, 64, |r, c| ((r * 64 + c) as f32 * 0.37).sin() * 0.4);
    let mut rng2 = StdRng::seed_from_u64(4);
    let mut placement: Vec<usize> = (0..128).collect();
    for i in (1..128).rev() {
        placement.swap(i, rng2.gen_range(0..=i));
    }

    let mut group = c.benchmark_group("weights");
    group.bench_function("corrupt_identity", |b| {
        b.iter(|| black_box(fabric.corrupt(black_box(&weights))))
    });
    group.bench_function("corrupt_permuted", |b| {
        b.iter(|| black_box(fabric.corrupt_permuted(black_box(&weights), Some(&placement))))
    });
    group.bench_function("placement_cost", |b| {
        b.iter(|| black_box(fabric.placement_cost(black_box(&weights), None)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_injection, bench_read_paths, bench_weight_path
}
criterion_main!(benches);
