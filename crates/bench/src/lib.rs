//! Shared plumbing for the figure/table binaries.
//!
//! Each binary regenerates one table or figure of the paper and prints
//! the same rows/series the paper reports. Common command-line flags:
//!
//! - `--epochs N` — training epochs per run (default 30),
//! - `--trials N` — independent trials averaged per bar (default 3),
//! - `--seed N` — base RNG seed (default 42),
//! - `--quick` — 8 epochs × 1 trial, for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fare_core::experiments::ExperimentParams;

/// Parses the common experiment flags from `std::env::args`.
///
/// Unknown flags are ignored so binaries can add their own.
///
/// # Panics
///
/// Panics (with a usage message) when a flag's value is missing or not a
/// number.
pub fn params_from_args() -> ExperimentParams {
    let args: Vec<String> = std::env::args().collect();
    params_from(&args)
}

/// Parses experiment flags from an explicit argument list (testable).
///
/// # Panics
///
/// Panics when a flag's value is missing or not a number.
pub fn params_from(args: &[String]) -> ExperimentParams {
    let mut params = ExperimentParams::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> u64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("flag {} needs a numeric value", args[i]))
        };
        match args[i].as_str() {
            "--epochs" => {
                params.epochs = take(i) as usize;
                i += 1;
            }
            "--trials" => {
                params.trials = take(i) as usize;
                i += 1;
            }
            "--seed" => {
                params.seed = take(i);
                i += 1;
            }
            "--quick" => {
                params.epochs = 8;
                params.trials = 1;
            }
            _ => {}
        }
        i += 1;
    }
    params
}

/// Writes a serialisable experiment result as pretty-printed JSON when
/// the user passed `--json <path>`; no-op otherwise.
///
/// Lets downstream tooling (plotting scripts, CI dashboards) consume the
/// figures without scraping the text tables.
///
/// # Panics
///
/// Panics if the file cannot be written or the value fails to serialise.
pub fn maybe_write_json<T: fare_rt::json::ToJson>(value: &T) {
    if let Some(path) = string_flag("--json") {
        let json = fare_rt::json::to_string_pretty(value).expect("result serialises to JSON");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote JSON results to {path}");
    }
}

/// Returns the value following `flag` in the process arguments, if any.
pub fn string_flag(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Renders an aligned text table.
///
/// # Example
///
/// ```
/// use fare_bench::render_table;
/// let t = render_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.contains("bb"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$} | ", cell, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&fmt_row(&sep));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats an accuracy as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_without_flags() {
        let p = params_from(&argv("prog"));
        assert_eq!(p.epochs, 30);
        assert_eq!(p.trials, 3);
        assert_eq!(p.seed, 42);
    }

    #[test]
    fn parses_all_flags() {
        let p = params_from(&argv("prog --epochs 50 --trials 5 --seed 7"));
        assert_eq!(p.epochs, 50);
        assert_eq!(p.trials, 5);
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn quick_mode() {
        let p = params_from(&argv("prog --quick"));
        assert_eq!(p.epochs, 8);
        assert_eq!(p.trials, 1);
    }

    #[test]
    fn ignores_unknown_flags() {
        let p = params_from(&argv("prog --ratio 1:1 --epochs 9"));
        assert_eq!(p.epochs, 9);
    }

    #[test]
    #[should_panic(expected = "needs a numeric value")]
    fn missing_value_panics() {
        params_from(&argv("prog --epochs"));
    }

    #[test]
    fn table_alignment() {
        let t = render_table(&["a", "bcd"], &[vec!["xx".into(), "y".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
