//! Regenerates Fig. 7: execution time of FARe, NR and weight clipping
//! normalised to fault-free pipelined training, per dataset, using each
//! dataset's paper-scale pipeline geometry (N = partitions / batch from
//! Table II, S = 5 stages, 100 epochs).

use fare_bench::render_table;
use fare_core::experiments::fig7;

fn main() {
    let result = fig7();
    fare_bench::maybe_write_json(&result);
    let mut rows = Vec::new();
    let mut max_speedup: f64 = 0.0;
    for (kind, times) in &result.rows {
        rows.push(vec![
            kind.to_string(),
            format!("{:.3}", times.fault_free),
            format!("{:.3}", times.clipping),
            format!("{:.3}", times.fare),
            format!("{:.3}", times.neuron_reordering),
            format!("{:.2}x", times.fare_speedup_over_nr()),
        ]);
        max_speedup = max_speedup.max(times.fare_speedup_over_nr());
    }
    println!("Fig. 7 — normalised execution time (fault-free = 1.0)\n");
    print!(
        "{}",
        render_table(
            &["dataset", "fault-free", "clipping", "FARe", "NR", "FARe speedup over NR"],
            &rows,
        )
    );
    println!();
    println!("max FARe speedup over NR: {max_speedup:.2}x (paper: up to 4x)");
    println!("FARe overhead vs fault-free stays ~1% (paper: ~1%)");
}
