//! Regenerates Fig. 5: test accuracy of fault-unaware / NR / clipping /
//! FARe vs the fault-free reference, across all six Table II workloads
//! and fault densities {1, 3, 5} %.
//!
//! Panel (a) is SA0:SA1 = 9:1, panel (b) is 1:1. Select with
//! `--ratio 9:1` (default) or `--ratio 1:1`; `--ratio both` prints both.

use fare_bench::{params_from_args, pct, render_table, string_flag};
use fare_core::experiments::{fig5, table2_workloads, AccuracyComparison};
use fare_core::FaultStrategy;

fn print_panel(cmp: &AccuracyComparison, densities: &[f64]) {
    let workloads = table2_workloads();
    let mut rows = Vec::new();
    for w in &workloads {
        for &d in densities {
            let mut row = vec![w.to_string(), format!("{:.0}%", d * 100.0)];
            row.push(pct(cmp.fault_free_of(*w)));
            for s in FaultStrategy::all() {
                row.push(pct(cmp.accuracy_of(*w, s, d)));
            }
            rows.push(row);
        }
    }
    print!(
        "{}",
        render_table(
            &["workload", "density", "fault-free", "unaware", "NR", "clipping", "FARe"],
            &rows,
        )
    );
    println!();
    for s in FaultStrategy::all() {
        println!("mean accuracy {s}: {}", pct(cmp.mean_accuracy(s)));
    }
}

fn main() {
    let params = params_from_args();
    let ratio = string_flag("--ratio").unwrap_or_else(|| "9:1".into());
    let densities = [0.01, 0.03, 0.05];
    let workloads = table2_workloads();

    let panels: Vec<(f64, &str)> = match ratio.as_str() {
        "9:1" => vec![(0.1, "(a) SA0:SA1 = 9:1")],
        "1:1" => vec![(0.5, "(b) SA0:SA1 = 1:1")],
        "both" => vec![(0.1, "(a) SA0:SA1 = 9:1"), (0.5, "(b) SA0:SA1 = 1:1")],
        other => panic!("unknown --ratio {other}; use 9:1, 1:1 or both"),
    };
    let mut results = Vec::new();
    for (sa1, title) in panels {
        eprintln!(
            "running fig5 {title} (epochs={}, trials={}, {} workloads) ...",
            params.epochs,
            params.trials,
            workloads.len()
        );
        let cmp = fig5(&params, &workloads, sa1, &densities);
        println!("Fig. 5 {title}\n");
        print_panel(&cmp, &densities);
        println!();
        results.push(cmp);
    }
    fare_bench::maybe_write_json(&results);
}
