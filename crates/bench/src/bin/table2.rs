//! Regenerates Table II: dataset statistics and workload configuration —
//! both the paper's original numbers and the scaled synthetic replicas
//! actually generated here (with their measured statistics).

use fare_bench::render_table;
use fare_graph::datasets::{Dataset, DatasetKind};

fn main() {
    let seed = fare_bench::params_from_args().seed;
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let ds = Dataset::generate(kind, seed);
        let spec = &ds.spec;
        let models: Vec<String> = spec.models.iter().map(|m| m.to_string()).collect();
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", spec.paper_nodes),
            format!("{}", spec.paper_edges),
            format!("Batch={}, Partitions={}", spec.paper_batch, spec.paper_partitions),
            format!("{}", ds.graph.num_nodes()),
            format!("{}", ds.graph.num_edges()),
            format!("Batch={}, Partitions={}", spec.clusters_per_batch, spec.partitions),
            models.join("+"),
        ]);
    }
    println!("TABLE II. GRAPH DATASETS & GNN WORKLOAD CONFIGURATION");
    println!("(lr = 0.01, epochs = 100 in the paper; scaled replicas generated with seed {seed})\n");
    print!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Paper #Nodes",
                "Paper #Edges",
                "Paper config",
                "Scaled #Nodes",
                "Scaled #Edges",
                "Scaled config",
                "GNN Model",
            ],
            &rows,
        )
    );
}
