//! Regenerates Table III: the ReRAM-PIM architecture specification.

use fare_bench::render_table;
use fare_reram::ChipConfig;

fn main() {
    let cfg = ChipConfig::date2024();
    let rows = vec![
        vec!["crossbars / tile".into(), format!("{}", cfg.crossbars_per_tile)],
        vec![
            "crossbar size".into(),
            format!("{0}x{0}", cfg.crossbar_size),
        ],
        vec![
            "clock".into(),
            format!("{} MHz", cfg.frequency_hz / 1e6),
        ],
        vec!["cell resolution".into(), format!("{}-bit/cell", cfg.bits_per_cell)],
        vec![
            "comparators".into(),
            format!(
                "{} (16-bit, {} GHz)",
                cfg.comparators,
                cfg.comparator_frequency_hz / 1e9
            ),
        ],
        vec!["muxes".into(), format!("{} (2:1)", cfg.muxes)],
        vec!["tile power".into(), format!("{} W", cfg.tile_power_w)],
        vec!["tile area".into(), format!("{} mm²", cfg.tile_area_mm2)],
        vec![
            "BIST area overhead".into(),
            format!("{:.2} %", 100.0 * cfg.bist_area_overhead),
        ],
        vec![
            "weights per crossbar row".into(),
            format!("{}", cfg.weights_per_row()),
        ],
    ];
    println!("TABLE III. RERAM-PIM ARCHITECTURE SPECIFICATIONS\n");
    print!("{}", render_table(&["parameter", "value"], &rows));
}
