//! Regenerates Fig. 4: training-accuracy curves of fault-unaware (panel
//! a) vs FARe (panel b) under 1–5 % pre-deployment fault densities
//! (GCN + Reddit, SA0:SA1 = 9:1), against the fault-free curve.

use fare_bench::{params_from_args, render_table};
use fare_core::experiments::fig4;

fn main() {
    let params = params_from_args();
    let densities = [0.01, 0.02, 0.03, 0.04, 0.05];
    eprintln!("running fig4 (epochs={}, trials={}) ...", params.epochs, params.trials);
    let result = fig4(&params, &densities);
    fare_bench::maybe_write_json(&result);

    let mut header: Vec<String> = vec!["epoch".into(), "fault-free".into()];
    for d in &densities {
        header.push(format!("unaware {:.0}%", d * 100.0));
    }
    for d in &densities {
        header.push(format!("FARe {:.0}%", d * 100.0));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let epochs = result.fault_free.len();
    let mut rows = Vec::new();
    for e in 0..epochs {
        let mut row = vec![format!("{e}"), format!("{:.3}", result.fault_free[e])];
        for c in &result.unaware {
            row.push(format!("{:.3}", c[e]));
        }
        for c in &result.fare {
            row.push(format!("{:.3}", c[e]));
        }
        rows.push(row);
    }
    println!("Fig. 4 — training accuracy vs epoch (GCN + Reddit, SA0:SA1 = 9:1)\n");
    print!("{}", render_table(&header_refs, &rows));

    let final_gap_unaware: f64 = result
        .unaware
        .iter()
        .map(|c| result.fault_free[epochs - 1] - c[epochs - 1])
        .fold(0.0, f64::max);
    let final_gap_fare: f64 = result
        .fare
        .iter()
        .map(|c| result.fault_free[epochs - 1] - c[epochs - 1])
        .fold(0.0, f64::max);
    println!();
    println!(
        "worst final-epoch gap to fault-free: unaware {:.1} pp, FARe {:.1} pp",
        100.0 * final_gap_unaware,
        100.0 * final_gap_fare
    );
    println!("(paper: FARe's curves overlap fault-free; fault-unaware destabilises)");
}
