//! Regenerates Table I: comparison of existing fault-tolerant techniques.

use fare_bench::render_table;
use fare_core::related::table1;

fn main() {
    let yn = |b: bool| if b { "Y" } else { "N" }.to_string();
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|t| {
            vec![
                t.reference.to_string(),
                t.name.to_string(),
                yn(t.training),
                t.overhead.to_string(),
                format!("{} / {}", yn(t.combination), yn(t.aggregation)),
                yn(t.post_deployment),
            ]
        })
        .collect();
    println!("TABLE I. COMPARISON OF EXISTING FAULT-TOLERANT TECHNIQUES\n");
    print!(
        "{}",
        render_table(
            &[
                "Ref.",
                "Technique",
                "Training",
                "Perf. Overhead",
                "Combination/Aggregation",
                "Post-deployment",
            ],
            &rows,
        )
    );
}
