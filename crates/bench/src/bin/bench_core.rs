//! Compute-core benchmark: the seed's dense GCN pipeline vs the sparse
//! CSR pipeline the layers use now.
//!
//! The "pre" numbers replicate the seed code path faithfully — a fresh
//! `gcn_normalise` on the dense adjacency inside *every* layer forward,
//! followed by zero-skipping dense matmuls — while the "post" numbers
//! drive the real [`fare_gnn::Gnn`] through a [`fare_graph::GraphView`]
//! built once per graph. Both paths run the same weights on the same
//! graph, and the losses are checked to agree before anything is timed.
//!
//! ```text
//! cargo run --release -p fare-bench --bin bench_core -- \
//!     [--nodes N] [--avg-degree D] [--iters N] [--smoke] [--out PATH]
//! ```
//!
//! Writes a [`fare_obs::RunManifest`] (default `BENCH_core.json`) with
//! one `bench` entry per kernel (`<kernel>.ns_per_iter`) plus the
//! headline dense→sparse speedup of a full GCN forward+backward step —
//! the same schema every other manifest in the workspace uses, so
//! `fare-report diff BENCH_core.json <fresh.json>` compares bench runs
//! across PRs with the one code path.

use std::time::Instant;

use fare_bench::string_flag;
use fare_obs::RunManifest;
use fare_gnn::{Gnn, GnnDims, IdealReader};
use fare_graph::datasets::ModelKind;
use fare_graph::{CsrGraph, GraphView};
use fare_reram::mvm::{crossbar_matmul, crossbar_mvm};
use fare_reram::weights::WeightFabric;
use fare_reram::FaultSpec;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use fare_tensor::{init, ops, FixedFormat, Matrix};

/// Random undirected graph with ~`n * avg_degree / 2` distinct edges.
/// Sampling pairs directly (instead of Erdős–Rényi's `n²` coin flips)
/// keeps setup cheap at benchmark scale.
fn random_graph(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = n * avg_degree / 2;
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// The seed's dense matmul: skip the inner loop when the lhs entry is
/// exactly zero. On a normalised adjacency this is the only thing that
/// made the `O(n² · d)` product bearable.
fn zero_skip_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "shape mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in out_row.iter_mut().zip(b.row(k)) {
                *o += av * bv;
            }
        }
    }
    out
}

/// One full 2-layer GCN forward+backward exactly as the seed computed
/// it: `gcn_normalise` runs inside each layer forward (twice per step)
/// and every adjacency product is a zero-skipping dense matmul.
fn dense_seed_gcn_step(
    adj: &Matrix,
    x: &Matrix,
    w1: &Matrix,
    w2: &Matrix,
    labels: &[usize],
) -> f32 {
    // Layer 1 forward.
    let a_hat1 = ops::gcn_normalise(adj);
    let agg1 = zero_skip_matmul(&a_hat1, x);
    let z1 = agg1.matmul(w1);
    let h1 = ops::relu(&z1);
    // Layer 2 forward (the seed re-normalised per layer call).
    let a_hat2 = ops::gcn_normalise(adj);
    let agg2 = zero_skip_matmul(&a_hat2, &h1);
    let logits = agg2.matmul(w2);
    let (loss, grad_logits) = ops::cross_entropy_with_grad(&logits, labels);
    // Layer 2 backward (output layer: grad_z = grad_logits).
    let _grad_w2 = agg2.t_matmul(&grad_logits);
    let grad_h1 = zero_skip_matmul(&a_hat2, &grad_logits.matmul_t(w2));
    // Layer 1 backward.
    let grad_z1 = grad_h1.hadamard(&ops::relu_grad(&z1));
    let _grad_w1 = agg1.t_matmul(&grad_z1);
    let _grad_x = zero_skip_matmul(&a_hat1, &grad_z1.matmul_t(w1));
    loss
}

/// One forward+backward through the real model on the cached view.
fn csr_gcn_step(model: &Gnn, view: &GraphView, x: &Matrix, labels: &[usize]) -> f32 {
    let (logits, cache) = model.forward(view, x, &IdealReader);
    let (loss, grad_logits) = ops::cross_entropy_with_grad(&logits, labels);
    let _grads = model.backward(view, &cache, &grad_logits);
    loss
}

/// Times `f` over `iters` runs (after one untimed warmup) in ns/iter.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: usize = string_flag("--nodes")
        .map(|v| v.parse().expect("numeric --nodes"))
        .unwrap_or(if smoke { 2_000 } else { 20_000 });
    let avg_degree: usize = string_flag("--avg-degree")
        .map(|v| v.parse().expect("numeric --avg-degree"))
        .unwrap_or(20);
    let iters: usize = string_flag("--iters")
        .map(|v| v.parse().expect("numeric --iters"))
        .unwrap_or(if smoke { 1 } else { 3 });
    let out_path = string_flag("--out").unwrap_or_else(|| "BENCH_core.json".into());
    let threads = fare_rt::par::current_threads() as u64;

    eprintln!("generating graph: n={n}, avg_degree≈{avg_degree}");
    let g = random_graph(n, avg_degree, 7);
    let dims = GnnDims {
        input: 32,
        hidden: 16,
        output: 8,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::normal(n, dims.input, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n).map(|i| i % dims.output).collect();
    let model = Gnn::new(ModelKind::Gcn, dims, &mut rng);
    let w1 = model.param(0, 0).clone();
    let w2 = model.param(1, 0).clone();
    let view = GraphView::from_graph(&g);
    let size = format!("n={n},e={},d={}", g.num_edges(), dims.hidden);

    // The two paths must compute the same step before we time them.
    let adj = g.to_dense();
    let loss_pre = dense_seed_gcn_step(&adj, &x, &w1, &w2, &labels);
    let loss_post = csr_gcn_step(&model, &view, &x, &labels);
    assert!(
        (loss_pre - loss_post).abs() < 1e-5,
        "paths diverge: dense {loss_pre} vs csr {loss_post}"
    );

    eprintln!("timing dense seed path ({iters} iters)...");
    let pre_ns = time_ns(iters, || {
        std::hint::black_box(dense_seed_gcn_step(&adj, &x, &w1, &w2, &labels));
    });
    eprintln!("timing csr path ({} iters)...", iters * 10);
    let post_ns = time_ns(iters * 10, || {
        std::hint::black_box(csr_gcn_step(&model, &view, &x, &labels));
    });

    // Aggregation micro-kernels: the dominant inner operation of both
    // paths, isolated.
    let agg_pre_ns = time_ns(iters, || {
        std::hint::black_box(zero_skip_matmul(&ops::gcn_normalise(&adj), &x));
    });
    let agg_post_ns = time_ns(iters * 10, || {
        std::hint::black_box(view.gcn_norm().spmm(&x));
    });

    // Crossbar matmul: per-row MVMs re-corrupt the fabric every row
    // (the seed behaviour); the batched kernel corrupts once.
    let (xb_rows, xb_cols, xb_batch) = if smoke { (64, 32, 32) } else { (128, 64, 256) };
    let mut frng = StdRng::seed_from_u64(7);
    let mut fabric = WeightFabric::for_shape(xb_rows, xb_cols, 16, FixedFormat::default());
    fabric.inject(&FaultSpec::density(0.05), &mut frng);
    let w = Matrix::from_fn(xb_rows, xb_cols, |_, _| frng.gen_range(-1.0f32..1.0));
    let input = Matrix::from_fn(xb_batch, xb_rows, |_, _| frng.gen_range(-1.0f32..1.0));
    let xb_size = format!("w={xb_rows}x{xb_cols},batch={xb_batch}");
    let xb_pre_ns = time_ns(iters, || {
        let mut out = Matrix::zeros(input.rows(), xb_cols);
        for i in 0..input.rows() {
            let y = crossbar_mvm(&fabric, &w, input.row(i));
            out.row_mut(i).copy_from_slice(&y.output);
        }
        std::hint::black_box(out);
    });
    let xb_post_ns = time_ns(iters, || {
        std::hint::black_box(crossbar_matmul(&fabric, &w, &input));
    });

    let speedup = pre_ns / post_ns;
    let rows: [(&str, &str, f64); 6] = [
        ("gcn_fwd_bwd_dense_seed", &size, pre_ns),
        ("gcn_fwd_bwd_csr", &size, post_ns),
        ("gcn_aggregate_dense_seed", &size, agg_pre_ns),
        ("gcn_aggregate_csr", &size, agg_post_ns),
        ("crossbar_matmul_per_row_mvm", &xb_size, xb_pre_ns),
        ("crossbar_matmul_batched", &xb_size, xb_post_ns),
    ];
    let mut manifest = RunManifest::capture("bench_core", 7, &format!("{size};{xb_size}"))
        .with_bench("threads", threads as f64)
        .with_bench("speedup_gcn_fwd_bwd", speedup);
    for (kernel, _, ns) in &rows {
        manifest = manifest.with_bench(&format!("{kernel}.ns_per_iter"), *ns);
    }

    for (kernel, sz, ns) in &rows {
        println!("{kernel:<28} {sz:<28} {ns:>14.0} ns/iter  ({threads} threads)");
    }
    println!("speedup (gcn fwd+bwd, dense seed → csr): {speedup:.1}x");

    std::fs::write(&out_path, manifest.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
