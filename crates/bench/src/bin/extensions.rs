//! Extension experiments beyond the paper's figures: the other two edge
//! applications its introduction motivates — link prediction and graph
//! clustering — evaluated under the same fault model and mitigation
//! strategies, plus the model-depth ablation.
//!
//! These have no paper counterpart to compare against; they demonstrate
//! that FARe's protection is task-agnostic (it guards the *computation*,
//! not the objective).

use fare_bench::{params_from_args, pct, render_table};
use fare_core::ablation::depth_ablation;
use fare_core::clustering::run_graph_clustering;
use fare_core::link_prediction::run_link_prediction;
use fare_core::{FaultStrategy, TrainConfig};
use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare_reram::FaultSpec;

fn main() {
    let params = params_from_args();
    let seed = params.seed;

    println!("Extension 1 — link prediction (Ogbl+SAGE, 5% faults, 1:1)\n");
    let dataset = Dataset::generate(DatasetKind::Ogbl, seed);
    // θ is a per-task hyperparameter (Section IV-B): the dot-product BCE
    // objective legitimately grows weights past 1, so the link tasks use
    // a wider clip window than classification.
    let base = TrainConfig {
        model: ModelKind::Sage,
        epochs: params.epochs,
        clip_threshold: 4.0,
        ..TrainConfig::default()
    };
    let mut rows = vec![{
        let out = run_link_prediction(&base, seed, &dataset);
        vec!["fault-free".to_string(), format!("{:.3}", out.final_auc)]
    }];
    for strategy in FaultStrategy::all() {
        let config = TrainConfig {
            fault_spec: FaultSpec::with_ratio(0.05, 1.0, 1.0),
            strategy,
            ..base
        };
        let auc: f64 = (0..params.trials.max(1))
            .map(|t| {
                run_link_prediction(&config, seed.wrapping_add(1000 * t as u64), &dataset)
                    .final_auc
            })
            .sum::<f64>()
            / params.trials.max(1) as f64;
        rows.push(vec![strategy.to_string(), format!("{auc:.3}")]);
    }
    print!("{}", render_table(&["strategy", "held-out AUC"], &rows));

    println!("\nExtension 2 — graph clustering (Reddit+GCN, 5% faults, 1:1)\n");
    let dataset = Dataset::generate(DatasetKind::Reddit, seed);
    let base = TrainConfig {
        model: ModelKind::Gcn,
        epochs: params.epochs,
        clip_threshold: 4.0,
        ..TrainConfig::default()
    };
    let clean = run_graph_clustering(&base, seed, &dataset);
    let mut rows = vec![vec![
        "fault-free".to_string(),
        pct(clean.purity),
        format!("{:.3}", clean.nmi),
    ]];
    for strategy in FaultStrategy::all() {
        let config = TrainConfig {
            fault_spec: FaultSpec::with_ratio(0.05, 1.0, 1.0),
            strategy,
            ..base
        };
        let (mut purity, mut nmi) = (0.0, 0.0);
        let trials = params.trials.max(1);
        for t in 0..trials {
            let out = run_graph_clustering(&config, seed.wrapping_add(1000 * t as u64), &dataset);
            purity += out.purity / trials as f64;
            nmi += out.nmi / trials as f64;
        }
        rows.push(vec![strategy.to_string(), pct(purity), format!("{nmi:.3}")]);
    }
    print!("{}", render_table(&["strategy", "purity", "NMI"], &rows));

    println!("\nExtension 3 — model depth under FARe (PPI+GCN, 3% faults, 9:1)\n");
    let rows: Vec<Vec<String>> = depth_ablation(&params, &[2, 3, 4])
        .into_iter()
        .map(|r| {
            vec![
                format!("{}", r.depth),
                pct(r.accuracy),
                format!("{:.3}", r.normalized_time),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["layers", "FARe accuracy", "normalised time"], &rows)
    );
}
