//! General-purpose training CLI: run any (dataset, model, strategy,
//! fault) combination and print the per-epoch trajectory.
//!
//! ```text
//! cargo run --release -p fare-bench --bin train -- \
//!     --dataset reddit --model gcn --strategy fare \
//!     --density 0.05 --ratio 1:1 --epochs 30 [--post 0.01] [--seed 42]
//! ```

use fare_bench::{params_from_args, string_flag};
use fare_core::{run_fault_free, FaultStrategy, TrainConfig, Trainer};
use fare_graph::datasets::{Dataset, DatasetKind, ModelKind};
use fare_reram::FaultSpec;

fn parse_dataset(s: &str) -> DatasetKind {
    match s.to_lowercase().as_str() {
        "ppi" => DatasetKind::Ppi,
        "reddit" => DatasetKind::Reddit,
        "amazon2m" | "amazon" => DatasetKind::Amazon2M,
        "ogbl" => DatasetKind::Ogbl,
        other => panic!("unknown dataset {other}; use ppi|reddit|amazon2m|ogbl"),
    }
}

fn parse_model(s: &str) -> ModelKind {
    match s.to_lowercase().as_str() {
        "gcn" => ModelKind::Gcn,
        "gat" => ModelKind::Gat,
        "sage" => ModelKind::Sage,
        other => panic!("unknown model {other}; use gcn|gat|sage"),
    }
}

fn parse_strategy(s: &str) -> Option<FaultStrategy> {
    match s.to_lowercase().as_str() {
        "unaware" | "fault-unaware" => Some(FaultStrategy::FaultUnaware),
        "nr" | "neuron-reordering" => Some(FaultStrategy::NeuronReordering),
        "clip" | "clipping" => Some(FaultStrategy::ClippingOnly),
        "fare" => Some(FaultStrategy::FaRe),
        "ideal" | "fault-free" => None,
        other => panic!("unknown strategy {other}; use unaware|nr|clip|fare|ideal"),
    }
}

fn parse_ratio(s: &str) -> f64 {
    let parts: Vec<&str> = s.split(':').collect();
    assert_eq!(parts.len(), 2, "ratio must look like 9:1");
    let sa0: f64 = parts[0].parse().expect("numeric SA0 ratio");
    let sa1: f64 = parts[1].parse().expect("numeric SA1 ratio");
    assert!(sa0 + sa1 > 0.0, "ratio must be positive");
    sa1 / (sa0 + sa1)
}

fn main() {
    let params = params_from_args();
    let dataset_kind = parse_dataset(&string_flag("--dataset").unwrap_or_else(|| "ppi".into()));
    let model = parse_model(&string_flag("--model").unwrap_or_else(|| "gcn".into()));
    let strategy = parse_strategy(&string_flag("--strategy").unwrap_or_else(|| "fare".into()));
    let density: f64 = string_flag("--density")
        .map(|v| v.parse().expect("numeric density"))
        .unwrap_or(0.05);
    let sa1_fraction = parse_ratio(&string_flag("--ratio").unwrap_or_else(|| "9:1".into()));
    let post: f64 = string_flag("--post")
        .map(|v| v.parse().expect("numeric post-deployment density"))
        .unwrap_or(0.0);
    let theta: f32 = string_flag("--theta")
        .map(|v| v.parse().expect("numeric clip threshold"))
        .unwrap_or(1.0);

    let dataset = Dataset::generate(dataset_kind, params.seed);
    let config = TrainConfig {
        model,
        epochs: params.epochs,
        clip_threshold: theta,
        fault_spec: FaultSpec::with_sa1_fraction(density, sa1_fraction),
        post_deployment_density: post,
        strategy: strategy.unwrap_or(FaultStrategy::FaRe),
        ..TrainConfig::default()
    };

    println!(
        "dataset {} ({} nodes, {} edges) | model {model} | {} | density {:.1}% (SA1 fraction {:.2}) | post +{:.1}% | θ={theta}",
        dataset.spec.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        strategy.map_or("fault-free".to_string(), |s| s.to_string()),
        100.0 * density,
        sa1_fraction,
        100.0 * post,
    );

    let outcome = match strategy {
        Some(s) => Trainer::new(TrainConfig { strategy: s, ..config }, params.seed).run(&dataset),
        None => run_fault_free(&config, params.seed, &dataset),
    };

    println!("{:>6} {:>10} {:>10} {:>10}", "epoch", "loss", "train acc", "test acc");
    for e in &outcome.history {
        println!(
            "{:>6} {:>10.4} {:>10.3} {:>10.3}",
            e.epoch, e.loss, e.train_accuracy, e.test_accuracy
        );
    }
    println!(
        "\nfinal test accuracy {:.3} | normalised execution time {:.3}",
        outcome.final_test_accuracy, outcome.normalized_time
    );
    fare_bench::maybe_write_json(&outcome);
}
