//! Mapping-pipeline benchmark: the pre-fast-path full `n × n` Algorithm 1
//! against the packed/deduped/reduced fast path that replaced it.
//!
//! The "pre" numbers replicate the old pipeline faithfully — a full
//! `n × n` cost matrix per (block, crossbar) pair built with the sparse
//! per-fault mismatch kernels and solved with the generic edge-list
//! b-Suitor, parallel over blocks only — via
//! [`fare_core::mapping::reference::map_adjacency_full`]. The "post"
//! numbers drive the production [`fare_core::map_adjacency`]: bitset
//! mismatch kernels, faulty-rows-only `f × n` instances, (block-class,
//! fault-class) deduplication, and pair-level parallelism. Before
//! anything is timed the fast path is checked bit-identical to the
//! serial reduced oracle, and the refresh paths are checked against the
//! serial refresh oracle.
//!
//! ```text
//! cargo run --release -p fare-bench --bin bench_mapping -- \
//!     [--nodes N] [--xbar-size N] [--density D] [--iters N] [--smoke] [--out PATH]
//! ```
//!
//! Writes a [`fare_obs::RunManifest`] (default `BENCH_mapping.json`)
//! with one `bench` entry per kernel (`<kernel>.ns_per_iter`) plus the
//! headline `map_adjacency` speedup and the post-deployment refresh
//! speedup (full re-solve → incremental cached refresh) — the same
//! schema every other manifest in the workspace uses, so
//! `fare-report diff BENCH_mapping.json <fresh.json>` compares bench
//! runs across PRs with the one code path.

use std::time::Instant;

use fare_bench::string_flag;
use fare_obs::RunManifest;
use fare_core::mapping::{self, reference};
use fare_core::{map_adjacency, refresh_row_permutations_cached, MappingConfig, RemapCache};
use fare_matching::Matcher;
use fare_reram::{CrossbarArray, FaultSpec, StuckPolarity};
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use fare_tensor::Matrix;

/// Random symmetric 0/1 adjacency with average degree `avg_degree` —
/// the sparsity regime GNN batch adjacencies actually live in (matches
/// `bench_core`'s graph generator).
fn random_adjacency(nodes: usize, avg_degree: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = Matrix::zeros(nodes, nodes);
    let edges = nodes * avg_degree / 2;
    for _ in 0..edges {
        let i = rng.gen_range(0..nodes);
        let j = rng.gen_range(0..nodes);
        if i != j {
            adj[(i, j)] = 1.0;
            adj[(j, i)] = 1.0;
        }
    }
    adj
}

/// Times `f` over `iters` runs (after one untimed warmup) in ns/iter.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Single timed run, no warmup — for the slow baseline whose one
/// execution already dominates the budget.
fn time_once(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let nodes: usize = string_flag("--nodes")
        .map(|v| v.parse().expect("numeric --nodes"))
        .unwrap_or(if smoke { 256 } else { 2_048 });
    let n: usize = string_flag("--xbar-size")
        .map(|v| v.parse().expect("numeric --xbar-size"))
        .unwrap_or(if smoke { 32 } else { 128 });
    let density: f64 = string_flag("--density")
        .map(|v| v.parse().expect("numeric --density"))
        .unwrap_or(0.05);
    let iters: usize = string_flag("--iters")
        .map(|v| v.parse().expect("numeric --iters"))
        .unwrap_or(if smoke { 1 } else { 3 });
    let out_path = string_flag("--out").unwrap_or_else(|| "BENCH_mapping.json".into());
    let threads = fare_rt::par::current_threads() as u64;

    // The ISSUE reference config: b-Suitor, pruning on, 50% crossbar
    // slack, 5% fault density.
    let cfg = MappingConfig {
        matcher: Matcher::BSuitor,
        ..MappingConfig::default()
    };
    let blocks = nodes.div_ceil(n).pow(2);
    let m = (blocks * 3) / 2;
    eprintln!(
        "setup: {nodes}-node adjacency, {blocks} blocks on {m} {n}x{n} crossbars, \
         {:.0}% fault density, b-Suitor",
        density * 100.0
    );
    let adj = random_adjacency(nodes, 20, 11);
    let mut array = CrossbarArray::new(m, n);
    let mut rng = StdRng::seed_from_u64(11);
    array.inject(&FaultSpec::density(density), &mut rng);
    let size = format!("nodes={nodes},blocks={blocks},xbars={m}x{n},density={density}");

    // The fast path must be bit-identical to the serial reduced oracle
    // before we time anything.
    let fast = map_adjacency(&adj, &array, &cfg);
    let oracle = reference::map_adjacency(&adj, &array, &cfg);
    assert!(fast == oracle, "fast path diverges from the serial oracle");

    eprintln!("timing full n x n pipeline (1 run)...");
    let pre_ns = time_once(|| {
        std::hint::black_box(reference::map_adjacency_full(&adj, &array, &cfg));
    });
    eprintln!("timing fast path ({iters} iters)...");
    let post_ns = time_ns(iters, || {
        std::hint::black_box(map_adjacency(&adj, &array, &cfg));
    });

    // Post-deployment refresh: a sparse BIST delta touches a handful of
    // crossbars; the incremental path re-solves only those.
    let mut cache = RemapCache::new();
    let mapping = mapping::map_adjacency_cached(&adj, &array, &cfg, &mut cache);
    let touched = (m / 50).max(1);
    for k in 0..touched {
        let xi = (k * 37) % m;
        let r = (k * 13) % n;
        let c = (k * 29) % n;
        let pol = if k % 2 == 0 {
            StuckPolarity::StuckAtOne
        } else {
            StuckPolarity::StuckAtZero
        };
        array.crossbar_mut(xi).inject_fault(r, c, pol);
    }
    // `cache` was warmed before the delta; keep that state around so
    // every timed iteration measures the same thing — the first
    // post-BIST refresh, where only the `touched` crossbars miss.
    let pre_delta_cache = cache.clone();
    let incr = refresh_row_permutations_cached(&adj, &array, &mapping, cfg.matcher, &mut cache);
    let refreshed_oracle = reference::refresh_row_permutations(&adj, &array, &mapping, cfg.matcher);
    assert!(
        incr == refreshed_oracle,
        "incremental refresh diverges from the serial oracle"
    );

    eprintln!("timing full refresh (1 run)...");
    let refresh_pre_ns = time_once(|| {
        std::hint::black_box(reference::refresh_row_permutations_full(
            &adj,
            &array,
            &mapping,
            cfg.matcher,
        ));
    });
    eprintln!("timing incremental cached refresh ({iters} iters)...");
    let refresh_post_ns = time_ns(iters, || {
        let mut warm = pre_delta_cache.clone();
        std::hint::black_box(refresh_row_permutations_cached(
            &adj,
            &array,
            &mapping,
            cfg.matcher,
            &mut warm,
        ));
    });

    let speedup = pre_ns / post_ns;
    let refresh_speedup = refresh_pre_ns / refresh_post_ns;
    let rows: [(&str, f64); 4] = [
        ("map_adjacency_full_nxn", pre_ns),
        ("map_adjacency_fast_path", post_ns),
        ("refresh_full_resolve", refresh_pre_ns),
        ("refresh_incremental_cached", refresh_post_ns),
    ];
    let mut manifest = RunManifest::capture("bench_mapping", 11, &size)
        .with_bench("threads", threads as f64)
        .with_bench("speedup_map_adjacency", speedup)
        .with_bench("speedup_refresh", refresh_speedup);
    for (kernel, ns) in &rows {
        manifest = manifest.with_bench(&format!("{kernel}.ns_per_iter"), *ns);
    }

    for (kernel, ns) in &rows {
        println!("{kernel:<28} {size:<52} {ns:>16.0} ns/iter  ({threads} threads)");
    }
    println!("speedup (map_adjacency, full n x n -> fast path): {speedup:.1}x");
    println!("speedup (refresh, full re-solve -> incremental): {refresh_speedup:.1}x");

    std::fs::write(&out_path, manifest.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
