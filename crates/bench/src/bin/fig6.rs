//! Regenerates Fig. 6: test accuracy with {1, 2, 3} % pre-deployment
//! faults plus 1 % additional post-deployment faults spread uniformly
//! over the epochs, for SA0:SA1 ratios 9:1 and 1:1, all strategies, all
//! workloads.

use fare_bench::{params_from_args, pct, render_table};
use fare_core::experiments::{fig6, table2_workloads};
use fare_core::FaultStrategy;

fn main() {
    let params = params_from_args();
    let pre_densities = [0.01, 0.02, 0.03];
    let post = 0.01;
    let workloads = table2_workloads();

    let mut results = Vec::new();
    for (sa1, title) in [(0.1, "SA0:SA1 = 9:1"), (0.5, "SA0:SA1 = 1:1")] {
        eprintln!(
            "running fig6 {title} (epochs={}, trials={}) ...",
            params.epochs, params.trials
        );
        let cmp = fig6(&params, &workloads, sa1, &pre_densities, post);
        println!("Fig. 6 — pre-deployment + 1% post-deployment faults, {title}\n");
        let mut rows = Vec::new();
        for w in &workloads {
            for &d in &pre_densities {
                let mut row = vec![
                    w.to_string(),
                    format!("{:.0}%+1%", d * 100.0),
                    pct(cmp.fault_free_of(*w)),
                ];
                for s in FaultStrategy::all() {
                    row.push(pct(cmp.accuracy_of(*w, s, d)));
                }
                rows.push(row);
            }
        }
        print!(
            "{}",
            render_table(
                &["workload", "pre+post", "fault-free", "unaware", "NR", "clipping", "FARe"],
                &rows,
            )
        );
        // Paper headline: FARe loses at most ~1.9 pp with post-deployment
        // faults; NR loses up to ~15 pp.
        let worst = |s: FaultStrategy| -> f64 {
            let mut max = f64::NEG_INFINITY;
            for w in &workloads {
                for &d in &pre_densities {
                    max = max.max(cmp.fault_free_of(*w) - cmp.accuracy_of(*w, s, d));
                }
            }
            max
        };
        println!();
        println!(
            "worst accuracy loss vs fault-free: FARe {:.1} pp, NR {:.1} pp, clipping {:.1} pp, unaware {:.1} pp\n",
            100.0 * worst(FaultStrategy::FaRe),
            100.0 * worst(FaultStrategy::NeuronReordering),
            100.0 * worst(FaultStrategy::ClippingOnly),
            100.0 * worst(FaultStrategy::FaultUnaware),
        );
        results.push(cmp);
    }
    fare_bench::maybe_write_json(&results);
}
