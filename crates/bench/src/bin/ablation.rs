//! Ablation harness: sweeps FARe's design choices (DESIGN.md §4) —
//! assignment solver, pruning heuristic, crossbar slack, clip threshold
//! and post-deployment refresh — and prints one table per knob.

use fare_bench::{params_from_args, pct, render_table};
use fare_core::ablation::{
    clip_threshold_ablation, locality_ablation, matcher_ablation, prune_ablation,
    refresh_ablation, slack_ablation,
};

fn main() {
    let params = params_from_args();
    let seed = params.seed;

    println!("Ablation 1 — assignment solver inside Algorithm 1 (5% faults, 1:1)\n");
    let rows: Vec<Vec<String>> = matcher_ablation(seed, 0.05)
        .into_iter()
        .map(|r| {
            vec![
                r.matcher.to_string(),
                format!("{}", r.mapping_cost),
                format!("{:.2} ms", r.wall_time_ms),
            ]
        })
        .collect();
    print!("{}", render_table(&["solver", "mapping cost", "wall time"], &rows));

    println!("\nAblation 2 — SA1-non-overlap pruning heuristic (lines 8-17)\n");
    let rows: Vec<Vec<String>> = prune_ablation(seed, 0.05)
        .into_iter()
        .map(|r| {
            vec![
                if r.prune { "on" } else { "off" }.into(),
                format!("{}", r.mapping_cost),
                format!("{}", r.sa1_cost),
            ]
        })
        .collect();
    print!("{}", render_table(&["pruning", "mapping cost", "SA1 cost"], &rows));

    println!("\nAblation 3 — crossbar over-provisioning slack\n");
    let rows: Vec<Vec<String>> = slack_ablation(seed, 0.05, &[1.0, 1.25, 1.5, 2.0, 3.0])
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.2}x", r.slack),
                format!("{}", r.crossbars),
                format!("{}", r.mapping_cost),
            ]
        })
        .collect();
    print!("{}", render_table(&["slack", "crossbars", "mapping cost"], &rows));

    println!("\nAblation 4 — clip threshold θ (Reddit+GCN, 5% faults, 1:1)\n");
    let rows: Vec<Vec<String>> = clip_threshold_ablation(&params, &[0.05, 0.25, 0.5, 1.0, 2.0, 8.0, 64.0])
        .into_iter()
        .map(|r| vec![format!("{}", r.threshold), pct(r.accuracy)])
        .collect();
    print!("{}", render_table(&["θ", "FARe accuracy"], &rows));

    println!("\nAblation 5 — tile-locality weight λ (extension; 8 crossbars/tile)\n");
    let rows: Vec<Vec<String>> = locality_ablation(seed, 0.05, &[0.0, 0.5, 1.0, 5.0, 50.0])
        .into_iter()
        .map(|r| {
            vec![
                format!("{}", r.weight),
                format!("{:.2}", r.tile_spread),
                format!("{}", r.mapping_cost),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["λ", "tile spread", "mapping cost"], &rows)
    );

    println!("\nAblation 6 — post-deployment row-permutation refresh (Amazon2M+SAGE, 2%+2%)\n");
    let rows: Vec<Vec<String>> = refresh_ablation(&params)
        .into_iter()
        .map(|r| {
            vec![
                if r.refresh { "refresh on" } else { "refresh off" }.into(),
                pct(r.accuracy),
            ]
        })
        .collect();
    print!("{}", render_table(&["variant", "FARe accuracy"], &rows));
}
