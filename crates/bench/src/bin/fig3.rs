//! Regenerates Fig. 3: impact of 5 % SA0-only vs SA1-only pre-deployment
//! faults injected separately into the weight and adjacency crossbars
//! (SAGE + Amazon2M, fault-unaware training).

use fare_bench::{params_from_args, pct, render_table};
use fare_core::experiments::{fig3, FaultPhase};
use fare_tensor::fixed::StuckPolarity;

fn main() {
    let params = params_from_args();
    eprintln!("running fig3 (epochs={}, trials={}) ...", params.epochs, params.trials);
    let result = fig3(&params);
    fare_bench::maybe_write_json(&result);

    let mut rows = vec![vec!["fault-free".to_string(), "-".into(), pct(result.fault_free)]];
    for phase in [FaultPhase::Weights, FaultPhase::Adjacency] {
        for pol in [StuckPolarity::StuckAtZero, StuckPolarity::StuckAtOne] {
            rows.push(vec![
                phase.to_string(),
                pol.to_string(),
                pct(result.accuracy_of(phase, pol)),
            ]);
        }
    }
    println!("Fig. 3 — test accuracy after 5% single-polarity faults (SAGE + Amazon2M)\n");
    print!("{}", render_table(&["faulty matrix", "polarity", "test accuracy"], &rows));

    let w_gap = result.accuracy_of(FaultPhase::Weights, StuckPolarity::StuckAtZero)
        - result.accuracy_of(FaultPhase::Weights, StuckPolarity::StuckAtOne);
    let a_gap = result.accuracy_of(FaultPhase::Adjacency, StuckPolarity::StuckAtZero)
        - result.accuracy_of(FaultPhase::Adjacency, StuckPolarity::StuckAtOne);
    println!();
    println!("SA1-vs-SA0 severity gap: weights {:+.1} pp, adjacency {:+.1} pp", 100.0 * w_gap, 100.0 * a_gap);
    println!("(paper: SA1 faults hurt more than SA0 for both matrices)");
}
