//! Property tests pinning the packed SA0/SA1 fault bit-planes to a
//! naive per-cell model (ISSUE 4 satellite).
//!
//! The mapping fast path trusts three things about `Crossbar`:
//!
//! 1. the packed planes returned by `fault_bits` / `sa0_row_bits` /
//!    `sa1_row_bits` mirror the sparse per-row fault list exactly,
//! 2. the popcount mismatch kernels (`row_mismatch_packed`,
//!    `row_sa1_mismatch_packed`) equal a per-cell recount,
//! 3. `fault_version` ticks on **every** mutation (the `RemapCache`
//!    invalidation rule) and only on mutations.
//!
//! Each property drives a random *mutation sequence* — interleaved
//! injections (both polarities, including overwrites of the same cell)
//! and full clears — and rechecks the invariants after every step, so a
//! cached-count or stale-bit bug cannot hide behind a single-shot
//! construction.

use fare_reram::bits::PackedRows;
use fare_reram::{Crossbar, StuckPolarity};
use fare_rt::prop::prelude::*;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};
use fare_tensor::Matrix;

/// The naive model: a dense `n × n` map of `Option<StuckPolarity>`.
#[derive(Clone)]
struct NaiveFaults {
    n: usize,
    cells: Vec<Option<StuckPolarity>>,
}

impl NaiveFaults {
    fn new(n: usize) -> Self {
        NaiveFaults {
            n,
            cells: vec![None; n * n],
        }
    }

    fn inject(&mut self, r: usize, c: usize, pol: StuckPolarity) {
        self.cells[r * self.n + c] = Some(pol);
    }

    fn clear(&mut self) {
        self.cells.fill(None);
    }

    fn count(&self, pol: StuckPolarity) -> usize {
        self.cells.iter().filter(|&&f| f == Some(pol)).count()
    }

    /// Per-cell mismatch recount for binary `stored` read through the
    /// faults of physical row `phys`: SA0 under a stored 1, SA1 under a
    /// stored 0.
    fn row_mismatch(&self, stored: &Matrix, logical: usize, phys: usize) -> usize {
        (0..stored.cols())
            .filter(|&c| match self.cells[phys * self.n + c] {
                Some(StuckPolarity::StuckAtZero) => stored[(logical, c)] > 0.5,
                Some(StuckPolarity::StuckAtOne) => stored[(logical, c)] <= 0.5,
                None => false,
            })
            .count()
    }

    fn row_sa1_mismatch(&self, stored: &Matrix, logical: usize, phys: usize) -> usize {
        (0..stored.cols())
            .filter(|&c| {
                self.cells[phys * self.n + c] == Some(StuckPolarity::StuckAtOne)
                    && stored[(logical, c)] <= 0.5
            })
            .count()
    }
}

/// Asserts every packed-plane invariant of `xbar` against `naive`.
fn check_planes(xbar: &Crossbar, naive: &NaiveFaults) {
    let n = xbar.n();
    let words = xbar.words();
    let (sa0, sa1) = xbar.fault_bits();

    // Cached counts equal the per-cell recount…
    prop_assert_eq!(xbar.sa0_count(), naive.count(StuckPolarity::StuckAtZero));
    prop_assert_eq!(xbar.sa1_count(), naive.count(StuckPolarity::StuckAtOne));
    prop_assert_eq!(xbar.fault_count(), xbar.sa0_count() + xbar.sa1_count());
    // …and so does the popcount of the packed planes.
    let pop = |bits: &[u64]| bits.iter().map(|w| w.count_ones() as usize).sum::<usize>();
    prop_assert_eq!(pop(sa0), xbar.sa0_count());
    prop_assert_eq!(pop(sa1), xbar.sa1_count());

    for r in 0..n {
        prop_assert_eq!(&sa0[r * words..(r + 1) * words], xbar.sa0_row_bits(r));
        prop_assert_eq!(&sa1[r * words..(r + 1) * words], xbar.sa1_row_bits(r));
        for c in 0..n {
            let bit0 = sa0[r * words + c / 64] >> (c % 64) & 1 == 1;
            let bit1 = sa1[r * words + c / 64] >> (c % 64) & 1 == 1;
            let expect = naive.cells[r * n + c];
            prop_assert_eq!(bit0, expect == Some(StuckPolarity::StuckAtZero), "sa0 bit ({}, {})", r, c);
            prop_assert_eq!(bit1, expect == Some(StuckPolarity::StuckAtOne), "sa1 bit ({}, {})", r, c);
            prop_assert_eq!(xbar.fault_at(r, c), expect);
        }
    }
}

/// Asserts the popcount mismatch kernels equal the naive recount (and
/// the unpacked slice kernels) for a random stored block.
fn check_kernels(xbar: &Crossbar, naive: &NaiveFaults, stored: &Matrix) {
    let packed = PackedRows::from_matrix(stored);
    for logical in 0..stored.rows() {
        // Logical row `logical` written to physical row `logical` …
        for phys in [logical, (logical + 7) % xbar.n()] {
            // … and to a shifted physical row (permutations matter).
            let naive_mm = naive.row_mismatch(stored, logical, phys);
            let naive_sa1 = naive.row_sa1_mismatch(stored, logical, phys);
            prop_assert_eq!(xbar.row_mismatch_packed(packed.row(logical), phys), naive_mm);
            prop_assert_eq!(xbar.row_mismatch(stored.row(logical), phys), naive_mm);
            prop_assert_eq!(
                xbar.row_sa1_mismatch_packed(packed.row(logical), phys),
                naive_sa1
            );
            prop_assert_eq!(xbar.row_sa1_mismatch(stored.row(logical), phys), naive_sa1);
        }
    }
}

fn random_stored(n: usize, rng: &mut StdRng, p: f64) -> Matrix {
    Matrix::from_fn(n, n, |_, _| if rng.gen_bool(p) { 1.0 } else { 0.0 })
}

proptest! {
    // Random mutation sequences keep the packed planes, the cached
    // counts and the popcount kernels bit-consistent with the naive
    // per-cell model at every step.
    #[test]
    fn planes_and_kernels_match_naive_recount_under_mutation(
        seed in 0u64..200,
        n in 9usize..70,
        steps in 1usize..40,
        p in 0.05f64..0.8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(n as u64));
        let mut xbar = Crossbar::new(n);
        let mut naive = NaiveFaults::new(n);
        let stored = random_stored(n, &mut rng, p);

        for step in 0..steps {
            if rng.gen_bool(0.06) {
                xbar.clear_faults();
                naive.clear();
            } else {
                let r = rng.gen_range(0..n);
                let c = rng.gen_range(0..n);
                // Bias towards re-injecting hot cells so polarity
                // overwrites (the dec/inc count path) actually happen.
                let (r, c) = if step > 0 && rng.gen_bool(0.3) { (r % 3, c % 3) } else { (r, c) };
                let pol = if rng.gen_bool(0.5) {
                    StuckPolarity::StuckAtZero
                } else {
                    StuckPolarity::StuckAtOne
                };
                xbar.inject_fault(r, c, pol);
                naive.inject(r, c, pol);
            }
            check_planes(&xbar, &naive);
        }
        check_kernels(&xbar, &naive, &stored);

        // Whole-block consistency: mismatch_count equals the summed
        // per-row naive recount under identity placement.
        let total: usize = (0..n).map(|r| naive.row_mismatch(&stored, r, r)).sum();
        prop_assert_eq!(xbar.mismatch_count(&stored, None), total);
    }

    // `fault_version` ticks exactly once per mutation — injections
    // (including same-cell overwrites) and clears — and never on reads.
    // This is the contract `RemapCache` invalidation stands on.
    #[test]
    fn fault_version_ticks_on_every_mutation(
        seed in 0u64..300,
        n in 4usize..40,
        steps in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xbar = Crossbar::new(n);
        let mut expected = xbar.fault_version();
        let stored = random_stored(n, &mut rng, 0.3);

        for _ in 0..steps {
            if rng.gen_bool(0.1) {
                xbar.clear_faults();
            } else {
                xbar.inject_fault(
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    if rng.gen_bool(0.5) {
                        StuckPolarity::StuckAtZero
                    } else {
                        StuckPolarity::StuckAtOne
                    },
                );
            }
            expected += 1;
            prop_assert_eq!(xbar.fault_version(), expected);

            // Reads leave the version untouched.
            let _ = xbar.read_binary(&stored, None);
            let _ = xbar.mismatch_count(&stored, None);
            let _ = xbar.fault_bits();
            prop_assert_eq!(xbar.fault_version(), expected);
        }
    }
}
