//! Hand-computed closed-form checks for the timing, pipeline and energy
//! models (ISSUE 4 satellite).
//!
//! Every expected value below is worked out by hand from the model
//! definitions — not by calling the code under test with different
//! arguments — so a silent constant or formula change cannot slip
//! through. Geometry used throughout is small enough to trace on paper.

use fare_reram::energy::{estimate, overprovisioning_cost};
use fare_reram::pipeline::{simulate, Schedule};
use fare_reram::timing::{PipelineSpec, TimingModel};
use fare_reram::ChipConfig;

const EPS: f64 = 1e-12;

// ---------------------------------------------------------------------------
// timing.rs — analytical per-strategy execution times
// ---------------------------------------------------------------------------

/// E = 4 epochs, N = 6 batches, S = 3 stages, τ = 2 ms.
fn timing_model() -> TimingModel {
    TimingModel::new(PipelineSpec::new(6, 3, 2e-3, 4))
}

#[test]
fn timing_fault_free_closed_form() {
    // E·(N+S−1)·τ = 4 · 8 · 0.002 = 0.064 s.
    assert!((timing_model().fault_free() - 0.064).abs() < EPS);
}

#[test]
fn timing_clipping_closed_form() {
    // One extra stage: E·(N+S)·τ = 4 · 9 · 0.002 = 0.072 s.
    assert!((timing_model().clipping() - 0.072).abs() < EPS);
}

#[test]
fn timing_neuron_reordering_closed_form() {
    // Per epoch (N+S−1) + N·3 stalls = 8 + 18 = 26 stage-slots:
    // 4 · 26 · 0.002 = 0.208 s.
    assert!((timing_model().neuron_reordering() - 0.208).abs() < EPS);
}

#[test]
fn timing_fare_closed_form() {
    // clipping·(1 + 0.0013) + 0.01·fault_free
    //   = 0.072 · 1.0013 + 0.00064 = 0.0727336 s.
    assert!((timing_model().fare() - 0.0727336).abs() < EPS);
}

#[test]
fn timing_normalized_closed_form() {
    let t = timing_model().normalized();
    assert_eq!(t.fault_free, 1.0);
    // 9/8 and 26/8 exactly; FARe = 0.0727336 / 0.064.
    assert!((t.clipping - 1.125).abs() < EPS);
    assert!((t.neuron_reordering - 3.25).abs() < EPS);
    assert!((t.fare - 1.1364625).abs() < EPS);
    assert!((t.fare_speedup_over_nr() - 3.25 / 1.1364625).abs() < EPS);
}

// ---------------------------------------------------------------------------
// pipeline.rs — discrete-event fill/drain latency, traced by hand
// ---------------------------------------------------------------------------

#[test]
fn pipeline_single_batch_is_pure_fill_drain() {
    // One batch through S = 5 stages: occupies cycles 0..5, total 5,
    // every cycle busy, utilisation 5 busy-slots / (5 stages × 5) = 1/5.
    let sim = simulate(&Schedule::new(1, 5, 1));
    assert_eq!(sim.total_cycles, 5);
    assert_eq!(sim.busy_cycles, 5);
    assert!((sim.utilization - 0.2).abs() < EPS);
}

#[test]
fn pipeline_ideal_trace_three_batches() {
    // N = 3, S = 4: issues at cycles 0,1,2; last batch drains at
    // 2 + 4 = 6. Batch k occupies [k, k+4), so all 6 cycles are busy;
    // busy-slots = 3·4 = 12, utilisation 12/(4·6) = 0.5.
    let sim = simulate(&Schedule::new(3, 4, 1));
    assert_eq!(sim.total_cycles, 6);
    assert_eq!(sim.busy_cycles, 6);
    assert!((sim.utilization - 0.5).abs() < EPS);
}

#[test]
fn pipeline_stall_trace() {
    // N = 3, S = 2, 2 stall cycles after each non-final batch:
    // issues at 0, 3, 6; total = 6 + 2 = 8. Busy cycles are
    // [0,2) ∪ [3,5) ∪ [6,8) = 6 of them; slots 3·2 = 6 → 6/16.
    let sim = simulate(&Schedule::new(3, 2, 1).with_stalls(2));
    assert_eq!(sim.total_cycles, 8);
    assert_eq!(sim.busy_cycles, 6);
    assert!((sim.utilization - 0.375).abs() < EPS);
}

#[test]
fn pipeline_epoch_service_trace() {
    // N = 2, S = 3, E = 2, 5 service cycles per epoch. Per epoch:
    // issues 0,1; drain 1 + 3 = 4; epoch length 4 + 5 = 9 → total 18.
    // Busy: cycles 0..4 each epoch = 8; slots 2·3·2 = 12 → 12/(3·18).
    let sim = simulate(&Schedule::new(2, 3, 2).with_epoch_service(5));
    assert_eq!(sim.total_cycles, 18);
    assert_eq!(sim.busy_cycles, 8);
    assert!((sim.utilization - 12.0 / 54.0).abs() < EPS);
}

#[test]
fn pipeline_agrees_with_analytical_depth_formula() {
    // The ideal simulator must land exactly on the E·(N+S−1) slots the
    // timing model charges — same geometry as `timing_model()` above.
    let sim = simulate(&Schedule::new(6, 3, 4));
    assert_eq!(sim.total_cycles, 4 * 8);
}

// ---------------------------------------------------------------------------
// energy.rs — per-tile sums on Table III constants
// ---------------------------------------------------------------------------

/// N = 10, S = 3, τ = 1 ms, E = 2 → exec = 2·12·0.001 = 0.024 s.
fn energy_pipeline() -> PipelineSpec {
    PipelineSpec::new(10, 3, 1e-3, 2)
}

#[test]
fn energy_single_tile_closed_form() {
    // 96 crossbars = exactly one 0.34 W / 0.157 mm² tile; BIST adds
    // 0.13 % area. Energy = 0.34 W · 0.024 s = 0.00816 J.
    let r = estimate(&ChipConfig::date2024(), 96, &energy_pipeline());
    assert_eq!(r.tiles, 1);
    assert!((r.exec_time_s - 0.024).abs() < EPS);
    assert!((r.power_w - 0.34).abs() < EPS);
    assert!((r.energy_j - 0.00816).abs() < EPS);
    assert!((r.area_mm2 - 0.157 * 1.0013).abs() < EPS);
}

#[test]
fn energy_three_tile_sums() {
    // 200 crossbars → ⌈200/96⌉ = 3 tiles: power, area and energy are
    // per-tile sums (time does not change with provisioning).
    let r = estimate(&ChipConfig::date2024(), 200, &energy_pipeline());
    assert_eq!(r.tiles, 3);
    assert!((r.power_w - 1.02).abs() < EPS);
    assert!((r.area_mm2 - 3.0 * 0.157 * 1.0013).abs() < EPS);
    assert!((r.exec_time_s - 0.024).abs() < EPS);
    assert!((r.energy_j - 3.0 * 0.00816).abs() < EPS);
}

#[test]
fn overprovisioning_within_tile_granularity_is_free() {
    // 100 crossbars already need 2 tiles; 1.9× slack → 190 crossbars,
    // still 2 tiles → area ratio exactly 1.
    let cfg = ChipConfig::date2024();
    let (base, prov, ratio) = overprovisioning_cost(&cfg, 100, 1.9, &energy_pipeline());
    assert_eq!(base.tiles, 2);
    assert_eq!(prov.tiles, 2);
    assert!((ratio - 1.0).abs() < EPS);
}

#[test]
fn overprovisioning_across_tile_boundary_doubles() {
    // 96 crossbars fit one tile; 1.05× slack → 101 crossbars → 2 tiles.
    let cfg = ChipConfig::date2024();
    let (base, prov, ratio) = overprovisioning_cost(&cfg, 96, 1.05, &energy_pipeline());
    assert_eq!(base.tiles, 1);
    assert_eq!(prov.tiles, 2);
    assert!((ratio - 2.0).abs() < EPS);
}
