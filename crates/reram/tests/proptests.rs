//! Property-based tests for the ReRAM substrate.

use fare_reram::weights::WeightFabric;
use fare_reram::{Bist, Crossbar, CrossbarArray, FaultSpec, StuckPolarity};
use fare_tensor::{FixedFormat, Matrix};
use fare_rt::prop::prelude::*;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::SeedableRng;

fn faulty_crossbar(n: usize, seed: u64, density: f64) -> Crossbar {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut array = CrossbarArray::new(1, n);
    array.inject(&FaultSpec::with_sa1_fraction(density, 0.5), &mut rng);
    array.crossbar(0).clone()
}

fn binary_matrix(n: usize, seed: u64, p: f64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |_, _| {
        if fare_rt::rand::Rng::gen_bool(&mut rng, p) {
            1.0
        } else {
            0.0
        }
    })
}

proptest! {
    #[test]
    fn read_binary_output_is_binary(
        seed in 0u64..500,
        density in 0.0f64..0.2,
        p in 0.0f64..0.5,
    ) {
        let xbar = faulty_crossbar(16, seed, density);
        let stored = binary_matrix(16, seed ^ 1, p);
        let read = xbar.read_binary(&stored, None);
        prop_assert!(read.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn mismatch_count_equals_read_diff(
        seed in 0u64..500,
        density in 0.0f64..0.2,
        p in 0.0f64..0.5,
    ) {
        let xbar = faulty_crossbar(16, seed, density);
        let stored = binary_matrix(16, seed ^ 2, p);
        let read = xbar.read_binary(&stored, None);
        let diff = stored
            .iter()
            .zip(read.iter())
            .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
            .count();
        prop_assert_eq!(xbar.mismatch_count(&stored, None), diff);
    }

    #[test]
    fn mismatch_bounded_by_fault_count(
        seed in 0u64..500,
        density in 0.0f64..0.2,
        p in 0.0f64..0.9,
    ) {
        let xbar = faulty_crossbar(16, seed, density);
        let stored = binary_matrix(16, seed ^ 3, p);
        prop_assert!(xbar.mismatch_count(&stored, None) <= xbar.fault_count());
    }

    #[test]
    fn row_mismatch_sums_to_total(
        seed in 0u64..300,
        density in 0.0f64..0.15,
        p in 0.0f64..0.5,
    ) {
        let xbar = faulty_crossbar(16, seed, density);
        let stored = binary_matrix(16, seed ^ 4, p);
        let per_row: usize = (0..16).map(|r| xbar.row_mismatch(stored.row(r), r)).sum();
        prop_assert_eq!(per_row, xbar.mismatch_count(&stored, None));
    }

    #[test]
    fn permutation_preserves_mismatch_multiset(
        seed in 0u64..300,
        density in 0.0f64..0.15,
        shift in 0usize..16,
    ) {
        // Rotating the rows of a *uniform* matrix cannot change the cost:
        // each physical row sees the same stored content either way.
        let xbar = faulty_crossbar(16, seed, density);
        let ones = Matrix::filled(16, 16, 1.0);
        let perm: Vec<usize> = (0..16).map(|i| (i + shift) % 16).collect();
        prop_assert_eq!(
            xbar.mismatch_count(&ones, None),
            xbar.mismatch_count(&ones, Some(&perm))
        );
    }

    #[test]
    fn bist_scan_is_lossless(seed in 0u64..300, density in 0.0f64..0.1) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut array = CrossbarArray::new(4, 16);
        array.inject(&FaultSpec::density(density), &mut rng);
        let map = Bist::scan(&array);
        prop_assert_eq!(map.fault_count(), array.fault_count());
        for j in 0..array.len() {
            for &(r, c, p) in map.crossbar_faults(j) {
                prop_assert_eq!(array.crossbar(j).fault_at(r, c), Some(p));
            }
        }
    }

    #[test]
    fn weight_corruption_affects_only_faulty_words(
        seed in 0u64..200,
        value in -2.0f32..2.0,
    ) {
        let mut fabric = WeightFabric::for_shape(16, 4, 16, FixedFormat::default());
        let mut rng = StdRng::seed_from_u64(seed);
        fabric.inject(&FaultSpec::density(0.05), &mut rng);
        let w = Matrix::filled(16, 4, value);
        let out = fabric.corrupt(&w);
        let fmt = fabric.format();
        // Words without any fault must read back exactly the quantised
        // value; we verify by counting: changed words <= fault count.
        let changed = w
            .iter()
            .zip(out.iter())
            .filter(|(a, b)| (fmt.quantise(**a) - **b).abs() > 1e-9)
            .count();
        prop_assert!(changed <= fabric.array().fault_count());
    }

    #[test]
    fn sa1_clip_interaction(
        seed in 0u64..200,
        value in -0.9f32..0.9,
    ) {
        // An SA1 MSB fault explodes any small weight beyond |1|; clipping
        // at 1 therefore always binds on that word.
        let mut fabric = WeightFabric::for_shape(16, 4, 16, FixedFormat::default());
        let cell = (seed % 2) as usize; // MSB or next cell
        fabric
            .array_mut()
            .crossbar_mut(0)
            .inject_fault(0, cell, StuckPolarity::StuckAtOne);
        let w = Matrix::filled(16, 4, value);
        let out = fabric.corrupt(&w);
        prop_assert!(out[(0, 0)].abs() > 1.0, "no explosion: {}", out[(0, 0)]);
    }

    #[test]
    fn injection_density_tracks_spec(density in 0.0f64..0.08) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut array = CrossbarArray::new(64, 32);
        array.inject(&FaultSpec::density(density), &mut rng);
        let measured = array.fault_density();
        prop_assert!(
            (measured - density).abs() < density * 0.4 + 0.003,
            "target {density}, measured {measured}"
        );
    }
}
