//! Packed binary row sets for the mapping fast path.
//!
//! A [`PackedRows`] snapshots a binary matrix (an adjacency block) into
//! per-row `u64` bit masks, the counterpart of the crossbar's packed
//! SA0/SA1 fault planes: once both sides are packed, the mismatch cost of
//! placing logical row `p` on physical row `q` collapses to a couple of
//! `AND` + popcount passes per word ([`crate::Crossbar::row_mismatch_packed`]).

use fare_tensor::Matrix;

/// A binary matrix packed row-major into `u64` words, bit `c` of row `r`
/// set exactly when the matrix entry is a stored "1" (`> 0.5`, the same
/// threshold every crossbar read/mismatch path uses). Bits at columns
/// `≥ cols` are always zero.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedRows {
    rows: usize,
    cols: usize,
    words: usize,
    bits: Vec<u64>,
}

impl PackedRows {
    /// Packs `m`, thresholding entries at `> 0.5`.
    pub fn from_matrix(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let words = cols.div_ceil(64).max(1);
        let mut bits = vec![0u64; rows * words];
        for r in 0..rows {
            let row = m.row(r);
            let out = &mut bits[r * words..(r + 1) * words];
            for (c, &v) in row.iter().enumerate() {
                if v > 0.5 {
                    out[c / 64] |= 1u64 << (c % 64);
                }
            }
        }
        Self {
            rows,
            cols,
            words,
            bits,
        }
    }

    /// Number of packed rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical width in bits.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `u64` words per row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Packed row `r` (`words()` words).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    /// Number of set bits (stored 1s) in row `r`.
    pub fn ones(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The full packed plane, row-major. A clone of this slice (plus the
    /// dimensions) is an exact content key for deduplication: equal
    /// planes ⇔ equal binary matrices under the `> 0.5` threshold.
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_threshold_and_boundaries() {
        for cols in [1usize, 63, 64, 65, 130] {
            let m = Matrix::from_fn(3, cols, |r, c| {
                if (r * 31 + c * 7) % 5 == 0 {
                    1.0
                } else if (r + c) % 7 == 0 {
                    0.4 // below threshold: not a stored 1
                } else {
                    0.0
                }
            });
            let p = PackedRows::from_matrix(&m);
            assert_eq!(p.rows(), 3);
            assert_eq!(p.cols(), cols);
            for r in 0..3 {
                let mut expect_ones = 0;
                for c in 0..cols {
                    let bit = p.row(r)[c / 64] >> (c % 64) & 1 == 1;
                    assert_eq!(bit, m[(r, c)] > 0.5, "row {r} col {c} (cols={cols})");
                    expect_ones += (m[(r, c)] > 0.5) as usize;
                }
                assert_eq!(p.ones(r), expect_ones);
                // Tail bits beyond `cols` stay clear.
                if cols % 64 != 0 {
                    let tail = p.row(r)[p.words() - 1] >> (cols % 64);
                    assert_eq!(tail, 0, "garbage tail bits (cols={cols})");
                }
            }
        }
    }

    #[test]
    fn bits_key_distinguishes_content() {
        let a = Matrix::from_fn(2, 8, |r, c| ((r + c) % 2) as f32);
        let b = Matrix::from_fn(2, 8, |r, c| ((r + c + 1) % 2) as f32);
        let pa = PackedRows::from_matrix(&a);
        let pb = PackedRows::from_matrix(&b);
        assert_ne!(pa.bits(), pb.bits());
        assert_eq!(pa, PackedRows::from_matrix(&a.clone()));
    }
}
