//! Architecture constants (paper Table III).


/// ReRAM-PIM architecture specification.
///
/// Defaults come from Table III of the paper; [`ChipConfig::date2024`]
/// returns them verbatim. Experiments in this reproduction typically use
/// a smaller `crossbar_size` so CI-scale graphs still decompose into many
/// blocks — the algorithmic behaviour is size-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Rows (= columns) of each square crossbar.
    pub crossbar_size: usize,
    /// Crossbars per tile.
    pub crossbars_per_tile: usize,
    /// Crossbar clock frequency in Hz.
    pub frequency_hz: f64,
    /// Bits stored per cell.
    pub bits_per_cell: u32,
    /// Number of output comparators per tile (16-bit, used by clipping).
    pub comparators: usize,
    /// Comparator clock frequency in Hz.
    pub comparator_frequency_hz: f64,
    /// 2:1 output multiplexers per tile (clipping datapath).
    pub muxes: usize,
    /// Power drawn by one tile, watts.
    pub tile_power_w: f64,
    /// Area of one tile, mm².
    pub tile_area_mm2: f64,
    /// Fractional area overhead of the BIST circuit (~0.13 %).
    pub bist_area_overhead: f64,
}

fare_rt::json_struct!(ChipConfig { crossbar_size, crossbars_per_tile, frequency_hz, bits_per_cell, comparators, comparator_frequency_hz, muxes, tile_power_w, tile_area_mm2, bist_area_overhead });

impl ChipConfig {
    /// The exact Table III configuration from the paper.
    ///
    /// # Example
    ///
    /// ```
    /// use fare_reram::ChipConfig;
    /// let cfg = ChipConfig::date2024();
    /// assert_eq!(cfg.crossbar_size, 128);
    /// assert_eq!(cfg.crossbars_per_tile, 96);
    /// ```
    pub fn date2024() -> Self {
        Self {
            crossbar_size: 128,
            crossbars_per_tile: 96,
            frequency_hz: 10.0e6,
            bits_per_cell: 2,
            comparators: 8,
            comparator_frequency_hz: 2.0e9,
            muxes: 8,
            tile_power_w: 0.34,
            tile_area_mm2: 0.157,
            bist_area_overhead: 0.0013,
        }
    }

    /// A reduced configuration for fast experiments: same ratios, smaller
    /// crossbars.
    pub fn reduced(crossbar_size: usize) -> Self {
        Self {
            crossbar_size,
            ..Self::date2024()
        }
    }

    /// Cells per crossbar.
    pub fn cells_per_crossbar(&self) -> usize {
        self.crossbar_size * self.crossbar_size
    }

    /// 16-bit weights stored per crossbar row (each weight spans
    /// `16 / bits_per_cell` cells).
    ///
    /// # Panics
    ///
    /// Panics if the crossbar width is not a multiple of the cells-per-
    /// weight count.
    pub fn weights_per_row(&self) -> usize {
        let cells_per_weight = (16 / self.bits_per_cell) as usize;
        assert_eq!(
            self.crossbar_size % cells_per_weight,
            0,
            "crossbar width {} not divisible by cells/weight {}",
            self.crossbar_size,
            cells_per_weight
        );
        self.crossbar_size / cells_per_weight
    }

    /// Total power of `tiles` tiles, watts.
    pub fn chip_power_w(&self, tiles: usize) -> f64 {
        self.tile_power_w * tiles as f64
    }

    /// Total area of `tiles` tiles including BIST overhead, mm².
    pub fn chip_area_mm2(&self, tiles: usize) -> f64 {
        self.tile_area_mm2 * tiles as f64 * (1.0 + self.bist_area_overhead)
    }

    /// Number of tiles needed to hold `crossbars` crossbars.
    pub fn tiles_for(&self, crossbars: usize) -> usize {
        crossbars.div_ceil(self.crossbars_per_tile)
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::date2024()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let cfg = ChipConfig::date2024();
        assert_eq!(cfg.crossbar_size, 128);
        assert_eq!(cfg.crossbars_per_tile, 96);
        assert_eq!(cfg.frequency_hz, 10.0e6);
        assert_eq!(cfg.bits_per_cell, 2);
        assert_eq!(cfg.comparators, 8);
        assert_eq!(cfg.tile_power_w, 0.34);
        assert_eq!(cfg.tile_area_mm2, 0.157);
    }

    #[test]
    fn weights_per_row_128() {
        // 128 columns / 8 cells per 16-bit weight = 16 weights per row.
        assert_eq!(ChipConfig::date2024().weights_per_row(), 16);
    }

    #[test]
    fn reduced_keeps_other_fields() {
        let cfg = ChipConfig::reduced(32);
        assert_eq!(cfg.crossbar_size, 32);
        assert_eq!(cfg.crossbars_per_tile, 96);
        assert_eq!(cfg.weights_per_row(), 4);
    }

    #[test]
    fn chip_aggregates() {
        let cfg = ChipConfig::date2024();
        assert_eq!(cfg.tiles_for(96), 1);
        assert_eq!(cfg.tiles_for(97), 2);
        assert!((cfg.chip_power_w(2) - 0.68).abs() < 1e-12);
        let area = cfg.chip_area_mm2(1);
        assert!(area > 0.157 && area < 0.158);
    }

    #[test]
    fn cells_per_crossbar() {
        assert_eq!(ChipConfig::date2024().cells_per_crossbar(), 16384);
    }
}
