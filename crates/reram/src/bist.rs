//! Built-in self-test (BIST) fault detection.
//!
//! The paper assumes a BIST circuit (per Xia et al., TCAD'19) that can
//! locate every stuck-at fault, runs once before deployment and once per
//! epoch afterwards, and costs ~0.13 % extra area / execution time. In
//! simulation detection is exact: a scan simply snapshots the ground-truth
//! fault state into a [`FaultMap`]. What matters architecturally is the
//! *interface* — the mapping algorithm only ever sees BIST output, never
//! the simulator's internals — and the per-epoch timing charge, which the
//! [`crate::timing`] model accounts for.


use fare_tensor::fixed::StuckPolarity;

use crate::CrossbarArray;

/// Snapshot of all detected faults, one sparse list per crossbar.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMap {
    n: usize,
    /// `per_crossbar[j]` = sorted `(row, col, polarity)` triples.
    per_crossbar: Vec<Vec<(usize, usize, StuckPolarity)>>,
}

fare_rt::json_struct!(FaultMap { n, per_crossbar });

impl FaultMap {
    /// Crossbar dimension the map was scanned from.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of crossbars covered.
    pub fn num_crossbars(&self) -> usize {
        self.per_crossbar.len()
    }

    /// Detected faults of crossbar `j`, sorted by `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn crossbar_faults(&self, j: usize) -> &[(usize, usize, StuckPolarity)] {
        &self.per_crossbar[j]
    }

    /// Total detected faults.
    pub fn fault_count(&self) -> usize {
        self.per_crossbar.iter().map(Vec::len).sum()
    }

    /// Detected fault density over all scanned cells.
    pub fn density(&self) -> f64 {
        let cells = self.num_crossbars() * self.n * self.n;
        if cells == 0 {
            0.0
        } else {
            self.fault_count() as f64 / cells as f64
        }
    }

    /// Faults present in `self` but not in `earlier` — i.e. the faults
    /// that appeared between two BIST scans (post-deployment faults).
    ///
    /// # Panics
    ///
    /// Panics if the two maps cover different geometry.
    pub fn new_faults_since(&self, earlier: &FaultMap) -> Vec<(usize, usize, usize, StuckPolarity)> {
        assert_eq!(self.n, earlier.n, "fault map geometry mismatch");
        assert_eq!(
            self.per_crossbar.len(),
            earlier.per_crossbar.len(),
            "fault map crossbar count mismatch"
        );
        let mut out = Vec::new();
        for (j, (now, before)) in self
            .per_crossbar
            .iter()
            .zip(&earlier.per_crossbar)
            .enumerate()
        {
            let old: std::collections::HashSet<(usize, usize)> =
                before.iter().map(|&(r, c, _)| (r, c)).collect();
            for &(r, c, p) in now {
                if !old.contains(&(r, c)) {
                    out.push((j, r, c, p));
                }
            }
        }
        out
    }
}

/// The BIST scan engine.
///
/// # Example
///
/// ```
/// use fare_reram::{Bist, CrossbarArray, FaultSpec};
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(0);
/// let mut array = CrossbarArray::new(4, 16);
/// array.inject(&FaultSpec::density(0.05), &mut rng);
/// let map = Bist::scan(&array);
/// assert_eq!(map.fault_count(), array.fault_count());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bist;

impl Bist {
    /// Scans the array and returns the complete fault map.
    pub fn scan(array: &CrossbarArray) -> FaultMap {
        let per_crossbar = array
            .iter()
            .map(|xbar| {
                let mut faults = Vec::with_capacity(xbar.fault_count());
                for r in 0..xbar.n() {
                    for &(c, p) in xbar.row_faults(r) {
                        faults.push((r, c, p));
                    }
                }
                faults
            })
            .collect();
        FaultMap {
            n: array.n(),
            per_crossbar,
        }
    }

    /// Fractional execution-time overhead of one scan (paper: ~0.13 %).
    pub fn time_overhead_fraction() -> f64 {
        0.0013
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::FaultSpec;

    fn faulty_array(seed: u64, density: f64) -> CrossbarArray {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut array = CrossbarArray::new(6, 16);
        array.inject(&FaultSpec::density(density), &mut rng);
        array
    }

    #[test]
    fn scan_detects_every_fault() {
        let array = faulty_array(1, 0.05);
        let map = Bist::scan(&array);
        assert_eq!(map.fault_count(), array.fault_count());
        assert_eq!(map.num_crossbars(), array.len());
        for j in 0..array.len() {
            for &(r, c, p) in map.crossbar_faults(j) {
                assert_eq!(array.crossbar(j).fault_at(r, c), Some(p));
            }
        }
    }

    #[test]
    fn scan_of_clean_array_is_empty() {
        let array = CrossbarArray::new(3, 8);
        let map = Bist::scan(&array);
        assert_eq!(map.fault_count(), 0);
        assert_eq!(map.density(), 0.0);
    }

    #[test]
    fn density_matches_array() {
        let array = faulty_array(2, 0.03);
        let map = Bist::scan(&array);
        assert!((map.density() - array.fault_density()).abs() < 1e-12);
    }

    #[test]
    fn new_faults_since_detects_post_deployment() {
        let mut array = faulty_array(3, 0.02);
        let before = Bist::scan(&array);
        let mut rng = StdRng::seed_from_u64(4);
        array.inject(&FaultSpec::density(0.01), &mut rng);
        let after = Bist::scan(&array);
        let fresh = after.new_faults_since(&before);
        assert_eq!(fresh.len(), after.fault_count() - before.fault_count());
        // Every reported fresh fault really is new.
        for &(j, r, c, _) in &fresh {
            assert!(!before
                .crossbar_faults(j)
                .iter()
                .any(|&(br, bc, _)| br == r && bc == c));
        }
    }

    #[test]
    fn new_faults_since_empty_when_unchanged() {
        let array = faulty_array(5, 0.02);
        let a = Bist::scan(&array);
        let b = Bist::scan(&array);
        assert!(b.new_faults_since(&a).is_empty());
    }

    #[test]
    fn overhead_constant_matches_paper() {
        assert!((Bist::time_overhead_fraction() - 0.0013).abs() < 1e-12);
    }
}
