//! The stuck-at-fault statistical model (paper Section V-A).
//!
//! Faults cluster around fault centres, so the paper draws the *number*
//! of faults per crossbar from a Poisson distribution and places them
//! uniformly *within* each crossbar. The SA0:SA1 ratio defaults to 9:1
//! (SA0 nine times likelier) with 1:1 as the alternative scenario.

use fare_rt::rand::Rng;

/// Statistical description of a stuck-at-fault injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fraction of all cells that are faulty (paper sweeps 0–5 %).
    pub density: f64,
    /// Fraction of faults that are stuck-at-1 (0.1 for the 9:1 ratio,
    /// 0.5 for 1:1, 1.0 for an SA1-only study).
    pub sa1_fraction: f64,
}

fare_rt::json_struct!(FaultSpec { density, sa1_fraction });

impl FaultSpec {
    /// Fault spec with the paper's default 9:1 SA0:SA1 ratio.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `[0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use fare_reram::FaultSpec;
    /// let spec = FaultSpec::density(0.05);
    /// assert_eq!(spec.sa1_fraction, 0.1);
    /// ```
    pub fn density(density: f64) -> Self {
        Self::with_sa1_fraction(density, 0.1)
    }

    /// Fault spec with an explicit SA1 fraction.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    pub fn with_sa1_fraction(density: f64, sa1_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density out of range: {density}");
        assert!(
            (0.0..=1.0).contains(&sa1_fraction),
            "sa1_fraction out of range: {sa1_fraction}"
        );
        Self {
            density,
            sa1_fraction,
        }
    }

    /// Fault spec from an `SA0:SA1` ratio pair, e.g. `(9.0, 1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if both ratio components are zero or any argument is
    /// negative.
    pub fn with_ratio(density: f64, sa0: f64, sa1: f64) -> Self {
        assert!(sa0 >= 0.0 && sa1 >= 0.0 && sa0 + sa1 > 0.0, "invalid ratio {sa0}:{sa1}");
        Self::with_sa1_fraction(density, sa1 / (sa0 + sa1))
    }

    /// A spec with zero faults.
    pub fn fault_free() -> Self {
        Self {
            density: 0.0,
            sa1_fraction: 0.1,
        }
    }

    /// SA0-only variant of this spec (for the Fig. 3 severity study).
    pub fn sa0_only(self) -> Self {
        Self {
            sa1_fraction: 0.0,
            ..self
        }
    }

    /// SA1-only variant of this spec (for the Fig. 3 severity study).
    pub fn sa1_only(self) -> Self {
        Self {
            sa1_fraction: 1.0,
            ..self
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::fault_free()
    }
}

/// Draws a Poisson-distributed sample with mean `lambda`.
///
/// Knuth's multiplication method for small means, normal approximation
/// (rounded, clamped at zero) for large means. Implemented here to avoid
/// an extra dependency on `rand_distr`.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson_sample(lambda: f64, rng: &mut impl Rng) -> usize {
    assert!(lambda.is_finite() && lambda >= 0.0, "invalid lambda {lambda}");
    fare_obs::counters::RERAM_POISSON_SAMPLES.incr();
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation N(lambda, lambda).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + lambda.sqrt() * z).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    #[test]
    fn ratio_constructor_nine_to_one() {
        let spec = FaultSpec::with_ratio(0.03, 9.0, 1.0);
        assert!((spec.sa1_fraction - 0.1).abs() < 1e-12);
        assert_eq!(spec.density, 0.03);
    }

    #[test]
    fn ratio_constructor_one_to_one() {
        let spec = FaultSpec::with_ratio(0.05, 1.0, 1.0);
        assert!((spec.sa1_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polarity_only_variants() {
        let spec = FaultSpec::density(0.05);
        assert_eq!(spec.sa0_only().sa1_fraction, 0.0);
        assert_eq!(spec.sa1_only().sa1_fraction, 1.0);
        assert_eq!(spec.sa0_only().density, 0.05);
    }

    #[test]
    fn fault_free_has_zero_density() {
        assert_eq!(FaultSpec::fault_free().density, 0.0);
        assert_eq!(FaultSpec::default().density, 0.0);
    }

    #[test]
    #[should_panic(expected = "density out of range")]
    fn rejects_bad_density() {
        FaultSpec::density(1.5);
    }

    #[test]
    #[should_panic(expected = "invalid ratio")]
    fn rejects_zero_ratio() {
        FaultSpec::with_ratio(0.01, 0.0, 0.0);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(poisson_sample(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let lambda = 3.5;
        let mean: f64 =
            (0..n).map(|_| poisson_sample(lambda, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let lambda = 200.0;
        let samples: Vec<f64> = (0..n).map(|_| poisson_sample(lambda, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 3.0, "mean {mean}");
        // Poisson variance ≈ lambda.
        assert!((var - lambda).abs() < 20.0, "var {var}");
    }
}
