//! The weight storage path: 16-bit fixed-point weights distributed over
//! eight 2-bit cells, corrupted by stuck-at faults.
//!
//! A weight matrix of shape `rows × cols` occupies a grid of crossbars:
//! each crossbar row holds `n / 8` weights (Section III-A's distributed
//! mapping), so the grid is `ceil(rows / n) × ceil(cols / (n/8))`
//! crossbars. A stuck cell corrupts exactly one 2-bit slice of one
//! weight; slices near the MSB cause "weight explosion".

use std::collections::{BTreeMap, HashMap};

use fare_rt::rand::Rng;

use fare_tensor::fixed::{StuckPolarity, CELLS_PER_WORD};
use fare_tensor::{CellWord, FixedFormat, Matrix};

use crate::{CrossbarArray, FaultSpec};

/// The set of crossbars backing one weight matrix, with its quantisation
/// format.
///
/// # Example
///
/// ```
/// use fare_reram::weights::WeightFabric;
/// use fare_reram::FaultSpec;
/// use fare_tensor::{FixedFormat, Matrix};
/// use fare_rt::rand::SeedableRng;
///
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(1);
/// let mut fabric = WeightFabric::for_shape(16, 8, 32, FixedFormat::default());
/// fabric.inject(&FaultSpec::density(0.05), &mut rng);
/// let w = Matrix::filled(16, 8, 0.25);
/// let faulty = fabric.corrupt(&w);
/// assert_eq!(faulty.shape(), (16, 8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightFabric {
    fmt: FixedFormat,
    rows: usize,
    cols: usize,
    n: usize,
    weights_per_row: usize,
    grid_rows: usize,
    grid_cols: usize,
    array: CrossbarArray,
}

fare_rt::json_struct!(WeightFabric { fmt, rows, cols, n, weights_per_row, grid_rows, grid_cols, array });

impl WeightFabric {
    /// Allocates crossbars for a `rows × cols` weight matrix on `n × n`
    /// crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` are zero or `n` is not a multiple of the
    /// 8 cells each weight occupies.
    pub fn for_shape(rows: usize, cols: usize, n: usize, fmt: FixedFormat) -> Self {
        assert!(rows > 0 && cols > 0, "weight matrix must be non-empty");
        assert_eq!(
            n % CELLS_PER_WORD,
            0,
            "crossbar size {n} must be a multiple of {CELLS_PER_WORD} cells/weight"
        );
        let weights_per_row = n / CELLS_PER_WORD;
        let grid_rows = rows.div_ceil(n);
        let grid_cols = cols.div_ceil(weights_per_row);
        let array = CrossbarArray::new(grid_rows * grid_cols, n);
        Self {
            fmt,
            rows,
            cols,
            n,
            weights_per_row,
            grid_rows,
            grid_cols,
            array,
        }
    }

    /// The quantisation format.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// Shape of the weight matrix this fabric stores.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of crossbars allocated.
    pub fn num_crossbars(&self) -> usize {
        self.array.len()
    }

    /// Borrows the underlying crossbar array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Mutably borrows the underlying crossbar array (e.g. for targeted
    /// fault placement in tests).
    pub fn array_mut(&mut self) -> &mut CrossbarArray {
        &mut self.array
    }

    /// Injects stuck-at faults into the backing crossbars (additive).
    pub fn inject(&mut self, spec: &FaultSpec, rng: &mut impl Rng) {
        self.array.inject(spec, rng);
    }

    /// Reads back `weights` through the faulty fabric with the identity
    /// row placement.
    ///
    /// Each weight is quantised to the fabric's fixed-point format, its
    /// stuck cells are forced, and the result is decoded — so even a
    /// fault-free fabric returns *quantised* weights, exactly like real
    /// hardware.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the fabric's shape.
    pub fn corrupt(&self, weights: &Matrix) -> Matrix {
        self.corrupt_permuted(weights, None)
    }

    /// Reads back `weights` with an optional logical→physical global row
    /// permutation (`placement[r]` = physical row of logical row `r`).
    ///
    /// This is the hook the neuron-reordering baseline uses to steer
    /// weight rows away from (or onto benign) faults.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the fabric's shape, or the
    /// permutation has the wrong length / out-of-range entries.
    pub fn corrupt_permuted(&self, weights: &Matrix, placement: Option<&[usize]>) -> Matrix {
        assert_eq!(
            weights.shape(),
            (self.rows, self.cols),
            "weight shape mismatch: fabric {}x{}, got {:?}",
            self.rows,
            self.cols,
            weights.shape()
        );
        if let Some(p) = placement {
            assert_eq!(p.len(), self.rows, "placement length mismatch");
            assert!(
                p.iter().all(|&r| r < self.grid_rows * self.n),
                "placement row out of range"
            );
        }

        // Quantise everything first (the hardware always stores
        // fixed-point), then apply cell faults sparsely.
        let mut out = weights.map(|v| self.fmt.quantise(v));

        // physical global row -> logical row
        let inverse: Option<HashMap<usize, usize>> = placement.map(|p| {
            p.iter().enumerate().map(|(logical, &phys)| (phys, logical)).collect()
        });

        // Group faults per affected weight so multiple stuck cells in the
        // same word compose on one CellWord.
        let mut per_weight: HashMap<(usize, usize), Vec<(usize, StuckPolarity)>> = HashMap::new();
        for gi in 0..self.grid_rows {
            for gj in 0..self.grid_cols {
                let xbar = self.array.crossbar(gi * self.grid_cols + gj);
                for pr in 0..self.n {
                    let phys_global = gi * self.n + pr;
                    let logical = match &inverse {
                        Some(inv) => match inv.get(&phys_global) {
                            Some(&l) => l,
                            None => continue, // physical row unused
                        },
                        None => phys_global,
                    };
                    if logical >= self.rows {
                        continue;
                    }
                    for &(pc, pol) in xbar.row_faults(pr) {
                        let col = gj * self.weights_per_row + pc / CELLS_PER_WORD;
                        if col >= self.cols {
                            continue;
                        }
                        let cell = pc % CELLS_PER_WORD;
                        per_weight.entry((logical, col)).or_default().push((cell, pol));
                    }
                }
            }
        }

        for ((r, c), cell_faults) in per_weight {
            let mut word = CellWord::from_fixed(self.fmt.encode(weights[(r, c)]));
            for (cell, pol) in cell_faults {
                match pol {
                    StuckPolarity::StuckAtZero => word.stick_at_zero(cell),
                    StuckPolarity::StuckAtOne => word.stick_at_one(cell),
                }
            }
            out[(r, c)] = self.fmt.decode(word.to_fixed());
        }
        out
    }

    /// Expected corruption cost of a candidate row placement: the sum of
    /// |faulty − clean| over all weights, given the current weights.
    ///
    /// The neuron-reordering baseline minimises this via bipartite
    /// matching over row placements.
    ///
    /// # Panics
    ///
    /// Same conditions as [`WeightFabric::corrupt_permuted`].
    pub fn placement_cost(&self, weights: &Matrix, placement: Option<&[usize]>) -> f64 {
        let clean = weights.map(|v| self.fmt.quantise(v));
        let faulty = self.corrupt_permuted(weights, placement);
        clean
            .iter()
            .zip(faulty.iter())
            .map(|(a, b)| (a - b).abs() as f64)
            .sum()
    }

    /// Corruption cost of placing one logical weight row onto one physical
    /// global row (used to build NR's assignment cost matrix cheaply).
    ///
    /// # Panics
    ///
    /// Panics if `logical` or `physical` is out of range.
    pub fn row_placement_cost(&self, weights: &Matrix, logical: usize, physical: usize) -> f64 {
        assert!(logical < self.rows, "logical row out of range");
        assert!(physical < self.grid_rows * self.n, "physical row out of range");
        let gi = physical / self.n;
        let pr = physical % self.n;
        let mut cost = 0.0f64;
        for gj in 0..self.grid_cols {
            let xbar = self.array.crossbar(gi * self.grid_cols + gj);
            // Group this physical row's faults by weight column.
            let mut per_col: BTreeMap<usize, Vec<(usize, StuckPolarity)>> = BTreeMap::new();
            for &(pc, pol) in xbar.row_faults(pr) {
                let col = gj * self.weights_per_row + pc / CELLS_PER_WORD;
                if col < self.cols {
                    per_col.entry(col).or_default().push((pc % CELLS_PER_WORD, pol));
                }
            }
            for (col, cell_faults) in per_col {
                let clean = self.fmt.quantise(weights[(logical, col)]);
                let mut word = CellWord::from_fixed(self.fmt.encode(weights[(logical, col)]));
                for (cell, pol) in cell_faults {
                    match pol {
                        StuckPolarity::StuckAtZero => word.stick_at_zero(cell),
                        StuckPolarity::StuckAtOne => word.stick_at_one(cell),
                    }
                }
                cost += (self.fmt.decode(word.to_fixed()) - clean).abs() as f64;
            }
        }
        cost
    }

    /// Total physical rows available (`grid_rows × n`).
    pub fn physical_rows(&self) -> usize {
        self.grid_rows * self.n
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    fn fabric(rows: usize, cols: usize) -> WeightFabric {
        WeightFabric::for_shape(rows, cols, 32, FixedFormat::default())
    }

    #[test]
    fn grid_allocation() {
        let f = fabric(64, 10);
        // 64 rows / 32 = 2 grid rows; 10 cols / (32/8 = 4) = 3 grid cols.
        assert_eq!(f.num_crossbars(), 6);
        assert_eq!(f.physical_rows(), 64);
    }

    #[test]
    fn fault_free_fabric_only_quantises() {
        let f = fabric(8, 4);
        let w = Matrix::from_fn(8, 4, |r, c| (r as f32 - 4.0) * 0.1 + c as f32 * 0.01);
        let out = f.corrupt(&w);
        for (a, b) in w.iter().zip(out.iter()) {
            assert!((a - b).abs() <= f.format().resolution());
        }
    }

    #[test]
    fn single_msb_sa1_explodes_one_weight() {
        let mut f = fabric(32, 4);
        // Weight (0, 0) occupies crossbar 0, row 0, cells 0..8. Cell 0 is
        // the MSB slice.
        f.array_mut().crossbar_mut(0).inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let w = Matrix::filled(32, 4, 0.1);
        let out = f.corrupt(&w);
        assert!(out[(0, 0)].abs() > 10.0, "no explosion: {}", out[(0, 0)]);
        // Every other weight is untouched (mod quantisation).
        for r in 0..32 {
            for c in 0..4 {
                if (r, c) != (0, 0) {
                    assert!((out[(r, c)] - 0.1).abs() < 0.01);
                }
            }
        }
    }

    #[test]
    fn lsb_fault_is_mild() {
        let mut f = fabric(32, 4);
        f.array_mut()
            .crossbar_mut(0)
            .inject_fault(0, CELLS_PER_WORD - 1, StuckPolarity::StuckAtOne);
        let w = Matrix::filled(32, 4, 0.1);
        let out = f.corrupt(&w);
        assert!((out[(0, 0)] - 0.1).abs() < 0.02, "lsb fault too strong: {}", out[(0, 0)]);
    }

    #[test]
    fn second_column_group_maps_to_second_crossbar() {
        let mut f = fabric(32, 8); // 1 grid row x 2 grid cols
        assert_eq!(f.num_crossbars(), 2);
        // Crossbar 1 covers weight cols 4..8; fault at its row 3, cell 0
        // hits weight (3, 4) MSB.
        f.array_mut().crossbar_mut(1).inject_fault(3, 0, StuckPolarity::StuckAtOne);
        let w = Matrix::filled(32, 8, 0.05);
        let out = f.corrupt(&w);
        assert!(out[(3, 4)].abs() > 10.0);
        assert!((out[(3, 0)] - 0.05).abs() < 0.01);
    }

    #[test]
    fn permutation_moves_row_away_from_fault() {
        let mut f = fabric(32, 4);
        f.array_mut().crossbar_mut(0).inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let w = Matrix::filled(32, 4, 0.1);
        // Swap logical rows 0 and 1: logical 0 -> physical 1 (clean),
        // logical 1 -> physical 0 (faulty).
        let mut placement: Vec<usize> = (0..32).collect();
        placement.swap(0, 1);
        let out = f.corrupt_permuted(&w, Some(&placement));
        assert!((out[(0, 0)] - 0.1).abs() < 0.01);
        assert!(out[(1, 0)].abs() > 10.0);
    }

    #[test]
    fn placement_cost_reflects_damage() {
        let mut f = fabric(32, 4);
        f.array_mut().crossbar_mut(0).inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let mut w = Matrix::filled(32, 4, 0.1);
        let identity_cost = f.placement_cost(&w, None);
        assert!(identity_cost > 10.0);
        // A weight whose MSB cell is already 0b11 region (large negative)
        // suffers less from the same SA1.
        w[(0, 0)] = -30.0;
        assert!(f.placement_cost(&w, None) < identity_cost);
    }

    #[test]
    fn row_placement_cost_matches_full_cost() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = fabric(32, 8);
        f.inject(&FaultSpec::density(0.05), &mut rng);
        let w = Matrix::from_fn(32, 8, |r, c| ((r * 8 + c) as f32 * 0.7).sin() * 0.3);
        // Identity placement: sum of per-row costs equals total cost.
        let total: f64 = (0..32).map(|r| f.row_placement_cost(&w, r, r)).sum();
        let full = f.placement_cost(&w, None);
        assert!((total - full).abs() < 1e-4, "per-row {total} vs full {full}");
    }

    #[test]
    fn multiple_faults_compose_on_one_word() {
        let mut f = fabric(32, 4);
        {
            let x = f.array_mut().crossbar_mut(0);
            x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
            x.inject_fault(0, 1, StuckPolarity::StuckAtZero);
        }
        let w = Matrix::filled(32, 4, 0.1);
        let out = f.corrupt(&w);
        // Composition must match applying both faults to the CellWord.
        let fmt = f.format();
        let mut word = CellWord::from_fixed(fmt.encode(0.1));
        word.stick_at_one(0);
        word.stick_at_zero(1);
        assert_eq!(out[(0, 0)], fmt.decode(word.to_fixed()));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn corrupt_rejects_wrong_shape() {
        fabric(8, 4).corrupt(&Matrix::zeros(4, 8));
    }

    #[test]
    #[should_panic(expected = "must be a multiple")]
    fn rejects_indivisible_crossbar() {
        WeightFabric::for_shape(4, 4, 12, FixedFormat::default());
    }
}
