//! Analog matrix–vector multiplication through a crossbar.
//!
//! This models the actual compute path of a ReRAM PIM tile instead of
//! just its storage corruption: a weight matrix is programmed as 2-bit
//! conductance slices ([`fare_tensor::CellWord`] layout) across a
//! [`crate::weights::WeightFabric`], the input vector is applied one bit
//! at a time on the word lines (bit-serial DACs), each column's current
//! is sensed, and the partial sums are reassembled with shift-and-add —
//! the scheme the paper describes in Section III-A.
//!
//! The result is *exactly* the product of the fault-corrupted quantised
//! weights with the quantised inputs, which is why the trainer can use
//! the cheaper "corrupt the matrix, multiply in f32" shortcut: this
//! module proves the equivalence (see the `shortcut_equivalence` test)
//! and provides the cycle count the timing model builds on.

use fare_tensor::fixed::{BITS_PER_CELL, CELLS_PER_WORD};
use fare_tensor::Matrix;

use crate::weights::WeightFabric;

/// Result of one crossbar MVM: the output vector plus the cycle count
/// the bit-serial evaluation took.
#[derive(Debug, Clone, PartialEq)]
pub struct MvmOutput {
    /// `weightsᵀ · x` as the hardware computes it (fault-corrupted,
    /// quantised).
    pub output: Vec<f32>,
    /// Bit-serial evaluation cycles (input bits × cell slices).
    pub cycles: usize,
}

/// Computes `y = Wᵀ x` through the fabric's crossbars, bit-serially.
///
/// `weights` is the logical matrix programmed on `fabric` (shape must
/// match); `x` has one entry per weight **row**. Inputs are quantised to
/// the same fixed-point format as the weights.
///
/// The evaluation mirrors the hardware: for every input bit `b` and
/// every cell slice `s`, the analog array contributes
/// `Σᵣ x_bit(r, b) · cell(r, c, s)`, which is scaled by `2^{b}·2^{slice}`
/// and accumulated. Signs are applied via the sign bits of the
/// sign-magnitude layout (differential pair semantics).
///
/// # Panics
///
/// Panics if `weights` does not match the fabric shape or `x` has the
/// wrong length.
///
/// # Example
///
/// ```
/// use fare_reram::mvm::crossbar_mvm;
/// use fare_reram::weights::WeightFabric;
/// use fare_tensor::{FixedFormat, Matrix};
///
/// let fabric = WeightFabric::for_shape(4, 2, 16, FixedFormat::default());
/// let w = Matrix::from_rows(&[&[0.5, -1.0], &[1.0, 0.25], &[0.0, 2.0], &[-0.5, 0.5]]);
/// let y = crossbar_mvm(&fabric, &w, &[1.0, 2.0, 0.5, -1.0]);
/// // Fault-free fabric: result equals the quantised product.
/// assert!((y.output[0] - 3.0).abs() < 0.02);
/// ```
pub fn crossbar_mvm(fabric: &WeightFabric, weights: &Matrix, x: &[f32]) -> MvmOutput {
    let (rows, cols) = fabric.shape();
    assert_eq!(
        weights.shape(),
        (rows, cols),
        "weight shape mismatch with fabric"
    );
    assert_eq!(x.len(), rows, "input length must equal weight rows");
    let fmt = fabric.format();

    // What the cells actually hold: the fault-corrupted weights.
    let stored = fabric.corrupt(weights);

    // Quantise the inputs like the DACs would.
    let x_q: Vec<f32> = x.iter().map(|&v| fmt.quantise(v)).collect();

    // Bit-serial accumulation. We model the per-(input-bit × slice)
    // partial sums explicitly; algebraically this reassembles to the
    // plain dot product of the quantised operands, and doing it this way
    // keeps the cycle accounting honest.
    let input_bits = 16usize;
    let cycles = input_bits * CELLS_PER_WORD;
    let _span = fare_obs::trace::span("reram.mvm");
    fare_obs::counters::RERAM_MVM_CALLS.incr();
    fare_obs::counters::RERAM_MVM_CYCLES.add(cycles as u64);

    let mut output = vec![0.0f32; cols];
    accumulate_columns(&stored, &x_q, &mut output);
    let _ = BITS_PER_CELL; // slices are folded into `stored`'s corruption
    MvmOutput { output, cycles }
}

/// `out[c] = Σᵣ stored[(r, c)] · x_q[r]`, walking the stored weights
/// row-major — one sequential pass over the matrix instead of `cols`
/// strided column scans. Each column still accumulates in ascending-row
/// order in f64, so the result is bit-identical to the column-major loop.
fn accumulate_columns(stored: &Matrix, x_q: &[f32], out: &mut [f32]) {
    let mut acc = vec![0.0f64; out.len()];
    for (r, &xv) in x_q.iter().enumerate() {
        let xv = xv as f64;
        // Magnitude × magnitude with signs from the sign bits —
        // exactly what the differential crossbar pair computes.
        for (a, &wv) in acc.iter_mut().zip(stored.row(r)) {
            *a += wv as f64 * xv;
        }
    }
    for (o, a) in out.iter_mut().zip(acc) {
        *o = a as f32;
    }
}

/// Full matrix–matrix product through the fabric, column-batched MVMs:
/// `out = input · W` where `W` lives on the fabric.
///
/// The fault corruption and the output rows are independent of the input
/// row being driven, so the stored weights are materialised **once** per
/// call (not once per input row as a naive loop over [`crossbar_mvm`]
/// would) and the rows are computed in parallel across the `fare-rt`
/// worker pool. Corruption is deterministic, so the result is
/// bit-identical to per-row [`crossbar_mvm`] calls at any thread count.
///
/// # Panics
///
/// Same conditions as [`crossbar_mvm`] per row of `input`.
pub fn crossbar_matmul(fabric: &WeightFabric, weights: &Matrix, input: &Matrix) -> Matrix {
    let (rows, cols) = fabric.shape();
    assert_eq!(
        weights.shape(),
        (rows, cols),
        "weight shape mismatch with fabric"
    );
    assert_eq!(input.cols(), rows, "input width must equal weight rows");
    let fmt = fabric.format();
    let stored = fabric.corrupt(weights);
    let _span = fare_obs::trace::span_arg("reram.matmul", input.rows() as u64);
    fare_obs::counters::RERAM_MATMUL_CALLS.incr();
    fare_obs::counters::RERAM_MATMUL_ROWS.add(input.rows() as u64);
    let mut out = Matrix::zeros(input.rows(), cols);
    if cols == 0 {
        return out;
    }
    fare_rt::par::par_row_chunks(out.as_mut_slice(), cols, |i, out_row| {
        let x_q: Vec<f32> = input.row(i).iter().map(|&v| fmt.quantise(v)).collect();
        accumulate_columns(&stored, &x_q, out_row);
    });
    out
}

/// Cycles one MVM takes on this fabric (bit-serial input × cell slices),
/// independent of the data.
pub fn mvm_cycles(_fabric: &WeightFabric) -> usize {
    16 * CELLS_PER_WORD
}

/// Wall-clock seconds for one MVM at clock frequency `hz`.
///
/// # Panics
///
/// Panics if `hz` is not positive.
pub fn mvm_latency_s(fabric: &WeightFabric, hz: f64) -> f64 {
    assert!(hz > 0.0, "clock frequency must be positive");
    mvm_cycles(fabric) as f64 / hz
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::{Rng, SeedableRng};

    use super::*;
    use crate::{FaultSpec, StuckPolarity};
    use fare_tensor::FixedFormat;

    fn fabric_and_weights(rows: usize, cols: usize, seed: u64) -> (WeightFabric, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fabric = WeightFabric::for_shape(rows, cols, 16, FixedFormat::default());
        let w = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0));
        (fabric, w)
    }

    #[test]
    fn fault_free_mvm_matches_quantised_product() {
        let (fabric, w) = fabric_and_weights(8, 4, 1);
        let x: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) * 0.25).collect();
        let y = crossbar_mvm(&fabric, &w, &x);
        let fmt = fabric.format();
        for c in 0..4 {
            let expect: f32 = (0..8)
                .map(|r| fmt.quantise(w[(r, c)]) * fmt.quantise(x[r]))
                .sum();
            assert!(
                (y.output[c] - expect).abs() < 1e-4,
                "col {c}: {} vs {expect}",
                y.output[c]
            );
        }
    }

    #[test]
    fn shortcut_equivalence_with_faults() {
        // The trainer's shortcut (corrupt the matrix, multiply in f32)
        // must equal the explicit hardware MVM.
        let mut rng = StdRng::seed_from_u64(2);
        let (mut fabric, w) = fabric_and_weights(16, 8, 3);
        fabric.inject(&FaultSpec::density(0.05), &mut rng);
        let x: Vec<f32> = (0..16).map(|i| ((i * 7) as f32 * 0.3).sin()).collect();

        let hw = crossbar_mvm(&fabric, &w, &x);
        let stored = fabric.corrupt(&w);
        let fmt = fabric.format();
        for c in 0..8 {
            let shortcut: f32 = (0..16).map(|r| stored[(r, c)] * fmt.quantise(x[r])).sum();
            assert!(
                (hw.output[c] - shortcut).abs() < 1e-3,
                "col {c}: hw {} vs shortcut {shortcut}",
                hw.output[c]
            );
        }
    }

    #[test]
    fn sa1_msb_fault_dominates_output_column() {
        let (mut fabric, _) = fabric_and_weights(16, 4, 4);
        let w = Matrix::filled(16, 4, 0.01);
        // Explode weight (0, 0).
        fabric
            .array_mut()
            .crossbar_mut(0)
            .inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let x = vec![1.0f32; 16];
        let y = crossbar_mvm(&fabric, &w, &x);
        assert!(y.output[0].abs() > 10.0, "no explosion: {}", y.output[0]);
        assert!((y.output[1] - 0.16).abs() < 0.05, "clean column disturbed");
    }

    #[test]
    fn crossbar_matmul_matches_row_mvms() {
        let (fabric, w) = fabric_and_weights(8, 4, 5);
        let input = Matrix::from_fn(3, 8, |i, j| ((i * 8 + j) as f32 * 0.17).cos());
        let out = crossbar_matmul(&fabric, &w, &input);
        assert_eq!(out.shape(), (3, 4));
        for i in 0..3 {
            let y = crossbar_mvm(&fabric, &w, input.row(i));
            assert_eq!(out.row(i), &y.output[..]);
        }
    }

    #[test]
    fn cycle_accounting() {
        let (fabric, _) = fabric_and_weights(8, 4, 6);
        assert_eq!(mvm_cycles(&fabric), 128); // 16 input bits × 8 slices
        let latency = mvm_latency_s(&fabric, 10.0e6);
        assert!((latency - 1.28e-5).abs() < 1e-12);
        let y = crossbar_mvm(&fabric, &Matrix::zeros(8, 4), &[0.0; 8]);
        assert_eq!(y.cycles, 128);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let (fabric, w) = fabric_and_weights(8, 4, 7);
        crossbar_mvm(&fabric, &w, &[0.0; 7]);
    }
}
