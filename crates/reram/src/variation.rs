//! Conductance-variation model (extension beyond the paper's SAF focus).
//!
//! Stuck-at faults are the most severe ReRAM non-ideality, but the
//! paper's related work (He et al., DAC'19) lists device-to-device
//! variation and noise as the other sources of unreliable computation.
//! This module models **programming variation**: each stored weight's
//! conductance deviates from its target by a static, multiplicative
//! log-normal factor `exp(σ·z)`, `z ~ N(0, 1)` — positive by
//! construction (conductances cannot change sign) and centred near 1.
//!
//! The field is drawn once at programming time and stays fixed (like a
//! pre-deployment fault pattern), composing with stuck-at corruption in
//! [`crate::weights::WeightFabric`]-based readers.

use fare_tensor::Matrix;
use fare_rt::rand::Rng;

/// Statistical description of programming variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Log-normal σ of the conductance factor (0 = ideal programming;
    /// real devices are typically 0.05–0.3).
    pub sigma: f64,
}

fare_rt::json_struct!(VariationSpec { sigma });

impl VariationSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
        Self { sigma }
    }
}

/// A frozen per-weight multiplicative variation field.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationField {
    factors: Matrix,
}

fare_rt::json_struct!(VariationField { factors });

impl VariationField {
    /// Draws a `rows × cols` field from `spec`.
    ///
    /// # Example
    ///
    /// ```
    /// use fare_reram::variation::{VariationField, VariationSpec};
    /// use fare_rt::rand::SeedableRng;
    /// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(1);
    /// let field = VariationField::generate(8, 8, &VariationSpec::new(0.1), &mut rng);
    /// assert!(field.factors().iter().all(|&f| f > 0.0));
    /// ```
    pub fn generate(rows: usize, cols: usize, spec: &VariationSpec, rng: &mut impl Rng) -> Self {
        let factors = Matrix::from_fn(rows, cols, |_, _| {
            if spec.sigma == 0.0 {
                1.0
            } else {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (spec.sigma * z).exp() as f32
            }
        });
        Self { factors }
    }

    /// The per-weight factors.
    pub fn factors(&self) -> &Matrix {
        &self.factors
    }

    /// Applies the field: each weight's *magnitude* is scaled by its
    /// factor (sign preserved — variation affects conductance, not the
    /// differential pair's polarity).
    ///
    /// # Panics
    ///
    /// Panics if `weights` has a different shape.
    pub fn apply(&self, weights: &Matrix) -> Matrix {
        assert_eq!(weights.shape(), self.factors.shape(), "shape mismatch");
        weights.zip_map(&self.factors, |w, f| w * f)
    }

    /// Compounds conductance **drift** onto the field: each factor is
    /// multiplied by a fresh log-normal sample of width `sigma`.
    ///
    /// Called once per epoch, this models retention drift — conductances
    /// wander further from their programmed targets the longer a cell
    /// goes without reprogramming (the temporal sibling of the paper's
    /// post-deployment faults).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn drift(&mut self, sigma: f64, rng: &mut impl Rng) {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
        if sigma == 0.0 {
            return;
        }
        let (rows, cols) = self.factors.shape();
        let step = VariationField::generate(rows, cols, &VariationSpec::new(sigma), rng);
        self.factors = self.factors.zip_map(step.factors(), |a, b| a * b);
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let field = VariationField::generate(4, 4, &VariationSpec::new(0.0), &mut rng);
        let w = Matrix::from_fn(4, 4, |r, c| (r + c) as f32 - 3.0);
        assert_eq!(field.apply(&w), w);
    }

    #[test]
    fn factors_positive_and_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let field = VariationField::generate(50, 50, &VariationSpec::new(0.1), &mut rng);
        assert!(field.factors().iter().all(|&f| f > 0.0));
        let mean = field.factors().mean();
        // Log-normal mean is exp(σ²/2) ≈ 1.005 for σ = 0.1.
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sign_is_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let field = VariationField::generate(10, 10, &VariationSpec::new(0.3), &mut rng);
        let w = Matrix::from_fn(10, 10, |r, c| if (r + c) % 2 == 0 { 0.5 } else { -0.5 });
        let out = field.apply(&w);
        for (a, b) in w.iter().zip(out.iter()) {
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = VariationField::generate(6, 6, &VariationSpec::new(0.2), &mut StdRng::seed_from_u64(7));
        let b = VariationField::generate(6, 6, &VariationSpec::new(0.2), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn larger_sigma_spreads_more() {
        let spread = |sigma: f64| {
            let mut rng = StdRng::seed_from_u64(9);
            let f = VariationField::generate(40, 40, &VariationSpec::new(sigma), &mut rng);
            f.factors().max() - f.factors().min()
        };
        assert!(spread(0.3) > spread(0.05));
    }

    #[test]
    fn drift_compounds_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut field = VariationField::generate(30, 30, &VariationSpec::new(0.05), &mut rng);
        let spread = |f: &VariationField| f.factors().max() - f.factors().min();
        let before = spread(&field);
        for _ in 0..20 {
            field.drift(0.05, &mut rng);
        }
        assert!(spread(&field) > before, "drift should widen the field");
    }

    #[test]
    fn zero_drift_is_noop() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut field = VariationField::generate(5, 5, &VariationSpec::new(0.1), &mut rng);
        let snapshot = field.clone();
        field.drift(0.0, &mut rng);
        assert_eq!(field, snapshot);
    }

    #[test]
    #[should_panic(expected = "invalid sigma")]
    fn rejects_negative_sigma() {
        VariationSpec::new(-0.1);
    }
}
