//! ReRAM crossbar / tile simulator with stuck-at-fault injection.
//!
//! This crate is the hardware substrate of the FARe reproduction. It
//! models exactly the parts of a ReRAM-based PIM accelerator the paper's
//! experiments exercise:
//!
//! - [`ChipConfig`] — the Table III architecture constants (128×128
//!   crossbars, 96 crossbars/tile, 2-bit cells, 10 MHz, 0.34 W and
//!   0.157 mm² per tile).
//! - [`Crossbar`] / [`CrossbarArray`] — cell arrays with per-cell
//!   stuck-at-0 / stuck-at-1 state.
//! - [`FaultSpec`] / fault injection — Poisson-clustered fault counts
//!   across crossbars, uniform placement within a crossbar, configurable
//!   SA0:SA1 ratio (Section V-A's fault model), plus per-epoch
//!   post-deployment injection.
//! - [`Bist`] — built-in self-test scan producing the fault map the FARe
//!   mapping algorithm consumes.
//! - [`weights::WeightFabric`] — the 16-bit / eight-2-bit-cell weight
//!   path with shift-and-add reassembly, reproducing MSB "weight
//!   explosion".
//! - [`timing`] — the pipelined execution-time model behind Fig. 7
//!   (depth `N + S − 1`, NR stalls, the extra clipping stage, FARe's ~1 %
//!   preprocessing and 0.13 % BIST overheads).
//!
//! # Example
//!
//! ```
//! use fare_reram::{CrossbarArray, FaultSpec};
//! use fare_rt::rand::SeedableRng;
//!
//! let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(1);
//! let mut array = CrossbarArray::new(8, 32);
//! array.inject(&FaultSpec::density(0.05), &mut rng);
//! let faults: usize = (0..8).map(|i| array.crossbar(i).fault_count()).sum();
//! assert!(faults > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod bist;
pub mod bits;
pub mod config;
mod crossbar;
pub mod energy;
mod fault;
pub mod mvm;
pub mod pipeline;
pub mod timing;
pub mod variation;
pub mod weights;

pub use array::CrossbarArray;
pub use bist::{Bist, FaultMap};
pub use bits::PackedRows;
pub use config::ChipConfig;
pub use crossbar::Crossbar;
pub use fault::{poisson_sample, FaultSpec};
pub use fare_tensor::fixed::StuckPolarity;
