//! Pipelined execution-time model (paper Section V-E, Fig. 7).
//!
//! Mini-batch GNN training on the ReRAM accelerator is pipelined: with
//! `N` input subgraphs and `S` pipeline stages, end-to-end depth is
//! `N + S − 1` stage-delays per epoch. The fault-mitigation schemes
//! perturb this baseline differently:
//!
//! - **Weight clipping** adds one pipeline *stage* (the comparator+mux
//!   datapath), so depth becomes `N + S` — negligible since `N ≫ S`.
//! - **Neuron reordering** stalls the pipeline after *every batch* to
//!   recompute the permutation on the freshly updated weights; each stall
//!   costs `nr_stall_stages` stage-delays, so the penalty scales with `N`
//!   and dominates execution time (the paper reports up to ~4× and FARe's
//!   "up to 4× speedup" over it).
//! - **FARe** pays a one-time preprocessing charge (~1 % of total, the
//!   adjacency mapping, overlapped thereafter with execution on the
//!   host), one clipping stage, and a per-epoch BIST scan (~0.13 %).


/// Geometry of one training run's pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSpec {
    /// Subgraph batches per epoch (`N`).
    pub num_batches: usize,
    /// Pipeline stages (`S`): aggregation/combination stages across
    /// layers.
    pub num_stages: usize,
    /// Delay of one pipeline stage, seconds.
    pub stage_delay_s: f64,
    /// Training epochs.
    pub epochs: usize,
}

fare_rt::json_struct!(PipelineSpec { num_batches, num_stages, stage_delay_s, epochs });

impl PipelineSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the delay is non-positive.
    pub fn new(num_batches: usize, num_stages: usize, stage_delay_s: f64, epochs: usize) -> Self {
        assert!(num_batches > 0 && num_stages > 0 && epochs > 0, "counts must be positive");
        assert!(stage_delay_s > 0.0, "stage delay must be positive");
        Self {
            num_batches,
            num_stages,
            stage_delay_s,
            epochs,
        }
    }
}

/// Execution-time model with the overhead constants of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Pipeline geometry.
    pub spec: PipelineSpec,
    /// Stage-delays lost per batch to a neuron-reordering stall.
    pub nr_stall_stages: f64,
    /// FARe preprocessing charge as a fraction of fault-free time (~1 %).
    pub fare_preprocess_fraction: f64,
    /// Per-epoch BIST scan charge as a fraction of epoch time (~0.13 %).
    pub bist_fraction: f64,
}

fare_rt::json_struct!(TimingModel { spec, nr_stall_stages, fare_preprocess_fraction, bist_fraction });

impl TimingModel {
    /// Model with the paper's overhead constants.
    pub fn new(spec: PipelineSpec) -> Self {
        Self {
            spec,
            nr_stall_stages: 3.0,
            fare_preprocess_fraction: 0.01,
            bist_fraction: 0.0013,
        }
    }

    /// Fault-free training time: `epochs × (N + S − 1) × τ`.
    pub fn fault_free(&self) -> f64 {
        let s = &self.spec;
        s.epochs as f64 * (s.num_batches + s.num_stages - 1) as f64 * s.stage_delay_s
    }

    /// Time with weight clipping only: one extra pipeline stage.
    pub fn clipping(&self) -> f64 {
        let s = &self.spec;
        s.epochs as f64 * (s.num_batches + s.num_stages) as f64 * s.stage_delay_s
    }

    /// Time with neuron reordering: a stall after every batch.
    pub fn neuron_reordering(&self) -> f64 {
        let s = &self.spec;
        let per_epoch = (s.num_batches + s.num_stages - 1) as f64
            + s.num_batches as f64 * self.nr_stall_stages;
        s.epochs as f64 * per_epoch * s.stage_delay_s
    }

    /// Time with the full FARe scheme: clipping stage + per-epoch BIST +
    /// one-time preprocessing.
    pub fn fare(&self) -> f64 {
        self.clipping() * (1.0 + self.bist_fraction)
            + self.fare_preprocess_fraction * self.fault_free()
    }

    /// All four times normalised to the fault-free baseline.
    pub fn normalized(&self) -> NormalizedTimes {
        fare_obs::counters::RERAM_TIMING_EVALS.incr();
        let base = self.fault_free();
        NormalizedTimes {
            fault_free: 1.0,
            clipping: self.clipping() / base,
            neuron_reordering: self.neuron_reordering() / base,
            fare: self.fare() / base,
        }
    }
}

/// Execution times normalised to fault-free training (the bars of
/// Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedTimes {
    /// Always 1.0.
    pub fault_free: f64,
    /// Clipping-only relative time.
    pub clipping: f64,
    /// Neuron-reordering relative time.
    pub neuron_reordering: f64,
    /// FARe relative time.
    pub fare: f64,
}

fare_rt::json_struct!(NormalizedTimes { fault_free, clipping, neuron_reordering, fare });

impl NormalizedTimes {
    /// FARe's speedup over neuron reordering (the paper's "up to 4×").
    pub fn fare_speedup_over_nr(&self) -> f64 {
        self.neuron_reordering / self.fare
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize, s: usize) -> TimingModel {
        TimingModel::new(PipelineSpec::new(n, s, 1e-3, 100))
    }

    #[test]
    fn fault_free_depth_formula() {
        let m = model(50, 4);
        assert!((m.fault_free() - 100.0 * 53.0 * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn clipping_overhead_negligible_for_large_n() {
        let t = model(500, 4).normalized();
        assert!(t.clipping > 1.0);
        assert!(t.clipping < 1.01, "clipping {}", t.clipping);
    }

    #[test]
    fn fare_overhead_about_one_percent() {
        let t = model(500, 4).normalized();
        assert!(t.fare > 1.0);
        assert!(t.fare < 1.03, "fare overhead too big: {}", t.fare);
        assert!(t.fare >= t.clipping);
    }

    #[test]
    fn nr_overhead_dominates() {
        let t = model(500, 4).normalized();
        assert!(t.neuron_reordering > 3.0, "nr {}", t.neuron_reordering);
        assert!(t.neuron_reordering > 2.0 * t.fare);
    }

    #[test]
    fn fare_speedup_up_to_4x() {
        let t = model(1000, 4).normalized();
        let speedup = t.fare_speedup_over_nr();
        assert!(speedup > 3.0 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn ordering_fault_free_clip_fare_nr() {
        let m = model(100, 5);
        assert!(m.fault_free() < m.clipping());
        assert!(m.clipping() < m.fare());
        assert!(m.fare() < m.neuron_reordering());
    }

    #[test]
    fn epochs_scale_linearly() {
        let a = TimingModel::new(PipelineSpec::new(10, 3, 1e-3, 1)).fault_free();
        let b = TimingModel::new(PipelineSpec::new(10, 3, 1e-3, 7)).fault_free();
        assert!((b / a - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "counts must be positive")]
    fn zero_batches_rejected() {
        PipelineSpec::new(0, 3, 1e-3, 1);
    }
}
