use fare_rt::rand::Rng;

use fare_tensor::fixed::StuckPolarity;

use crate::{poisson_sample, Crossbar, FaultSpec};

/// A bank of identically sized crossbars — the resource pool the FARe
/// mapping algorithm assigns adjacency blocks to.
///
/// Fault injection follows the paper's model: per-crossbar fault counts
/// are Poisson-distributed (clustered fault centres make some crossbars
/// much worse than others) and fault positions are uniform within a
/// crossbar.
///
/// # Example
///
/// ```
/// use fare_reram::{CrossbarArray, FaultSpec};
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(9);
/// let mut array = CrossbarArray::new(16, 32);
/// array.inject(&FaultSpec::with_ratio(0.03, 9.0, 1.0), &mut rng);
/// assert!((array.fault_density() - 0.03).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarArray {
    n: usize,
    crossbars: Vec<Crossbar>,
}

fare_rt::json_struct!(CrossbarArray { n, crossbars });

impl CrossbarArray {
    /// Creates `count` fault-free `n × n` crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `n == 0`.
    pub fn new(count: usize, n: usize) -> Self {
        assert!(count > 0, "need at least one crossbar");
        Self {
            n,
            crossbars: vec![Crossbar::new(n); count],
        }
    }

    /// Crossbar dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of crossbars.
    pub fn len(&self) -> usize {
        self.crossbars.len()
    }

    /// Always `false` (construction requires at least one crossbar);
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.crossbars.is_empty()
    }

    /// Borrows crossbar `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn crossbar(&self, i: usize) -> &Crossbar {
        &self.crossbars[i]
    }

    /// Mutably borrows crossbar `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn crossbar_mut(&mut self, i: usize) -> &mut Crossbar {
        &mut self.crossbars[i]
    }

    /// Iterates over the crossbars.
    pub fn iter(&self) -> std::slice::Iter<'_, Crossbar> {
        self.crossbars.iter()
    }

    /// Injects stuck-at faults per `spec`.
    ///
    /// Injection is **additive**: calling this again models
    /// post-deployment faults appearing on top of the existing ones
    /// (endurance wear-out). A fault landing on an already stuck cell
    /// overwrites its polarity.
    pub fn inject(&mut self, spec: &FaultSpec, rng: &mut impl Rng) {
        let lambda = spec.density * (self.n * self.n) as f64;
        for xbar in &mut self.crossbars {
            let count = poisson_sample(lambda, rng);
            let mut placed = 0usize;
            let mut attempts = 0usize;
            let budget = count.saturating_mul(20).max(64);
            while placed < count && attempts < budget {
                attempts += 1;
                let r = rng.gen_range(0..self.n);
                let c = rng.gen_range(0..self.n);
                if xbar.fault_at(r, c).is_some() {
                    continue; // keep the effective density additive
                }
                let pol = if rng.gen_bool(spec.sa1_fraction) {
                    StuckPolarity::StuckAtOne
                } else {
                    StuckPolarity::StuckAtZero
                };
                xbar.inject_fault(r, c, pol);
                placed += 1;
            }
        }
    }

    /// Total stuck cells across all crossbars.
    pub fn fault_count(&self) -> usize {
        self.crossbars.iter().map(Crossbar::fault_count).sum()
    }

    /// Fraction of all cells that are stuck.
    pub fn fault_density(&self) -> f64 {
        self.fault_count() as f64 / (self.crossbars.len() * self.n * self.n) as f64
    }

    /// Total SA1 cells.
    pub fn sa1_count(&self) -> usize {
        self.crossbars.iter().map(Crossbar::sa1_count).sum()
    }

    /// Total SA0 cells.
    pub fn sa0_count(&self) -> usize {
        self.crossbars.iter().map(Crossbar::sa0_count).sum()
    }

    /// Clears all faults from every crossbar.
    pub fn clear_faults(&mut self) {
        for x in &mut self.crossbars {
            x.clear_faults();
        }
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    #[test]
    fn injection_hits_target_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut array = CrossbarArray::new(32, 32);
        array.inject(&FaultSpec::density(0.05), &mut rng);
        assert!((array.fault_density() - 0.05).abs() < 0.01, "{}", array.fault_density());
    }

    #[test]
    fn ratio_nine_to_one_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut array = CrossbarArray::new(64, 32);
        array.inject(&FaultSpec::with_ratio(0.05, 9.0, 1.0), &mut rng);
        let sa1_frac = array.sa1_count() as f64 / array.fault_count() as f64;
        assert!((sa1_frac - 0.1).abs() < 0.03, "sa1 fraction {sa1_frac}");
    }

    #[test]
    fn poisson_clustering_creates_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut array = CrossbarArray::new(100, 32);
        array.inject(&FaultSpec::density(0.02), &mut rng);
        let counts: Vec<usize> = array.iter().map(Crossbar::fault_count).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Poisson(20.48) over 100 draws: spread should be visible.
        assert!(max > min, "no clustering variance: min={min} max={max}");
    }

    #[test]
    fn additive_injection_increases_density() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut array = CrossbarArray::new(16, 32);
        array.inject(&FaultSpec::density(0.02), &mut rng);
        let before = array.fault_count();
        array.inject(&FaultSpec::density(0.01), &mut rng);
        assert!(array.fault_count() > before);
        assert!((array.fault_density() - 0.03).abs() < 0.01);
    }

    #[test]
    fn zero_density_injects_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut array = CrossbarArray::new(4, 16);
        array.inject(&FaultSpec::fault_free(), &mut rng);
        assert_eq!(array.fault_count(), 0);
    }

    #[test]
    fn sa1_only_spec() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut array = CrossbarArray::new(8, 32);
        array.inject(&FaultSpec::density(0.05).sa1_only(), &mut rng);
        assert_eq!(array.sa0_count(), 0);
        assert!(array.sa1_count() > 0);
    }

    #[test]
    fn clear_faults_resets_all() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut array = CrossbarArray::new(4, 16);
        array.inject(&FaultSpec::density(0.05), &mut rng);
        array.clear_faults();
        assert_eq!(array.fault_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one crossbar")]
    fn empty_array_rejected() {
        CrossbarArray::new(0, 8);
    }
}
