use fare_tensor::fixed::StuckPolarity;
use fare_tensor::Matrix;

/// One square ReRAM crossbar: an `n × n` array of 2-bit cells, some of
/// which may be stuck.
///
/// The crossbar tracks only fault state — stored values are supplied at
/// read time (`read_binary`), matching how the simulator replays the same
/// physical fault pattern against whatever matrix is currently
/// programmed.
///
/// # Example
///
/// ```
/// use fare_reram::{Crossbar, StuckPolarity};
/// use fare_tensor::Matrix;
///
/// let mut xbar = Crossbar::new(4);
/// xbar.inject_fault(0, 1, StuckPolarity::StuckAtOne);
/// let stored = Matrix::zeros(4, 4);
/// let read = xbar.read_binary(&stored, None);
/// assert_eq!(read[(0, 1)], 1.0); // SA1 fabricated an edge
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar {
    n: usize,
    /// Sparse per-row fault lists, each sorted by column.
    rows: Vec<Vec<(usize, StuckPolarity)>>,
}

fare_rt::json_struct!(Crossbar { n, rows });

impl Crossbar {
    /// Creates a fault-free `n × n` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "crossbar size must be positive");
        Self {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Crossbar dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Marks cell `(r, c)` stuck. A second injection at the same cell
    /// overwrites the polarity (the physically later failure wins).
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn inject_fault(&mut self, r: usize, c: usize, polarity: StuckPolarity) {
        assert!(r < self.n && c < self.n, "fault ({r},{c}) out of range");
        let row = &mut self.rows[r];
        match row.binary_search_by_key(&c, |&(col, _)| col) {
            Ok(i) => row[i].1 = polarity,
            Err(i) => row.insert(i, (c, polarity)),
        }
    }

    /// Fault state of cell `(r, c)`, if any.
    pub fn fault_at(&self, r: usize, c: usize) -> Option<StuckPolarity> {
        self.rows
            .get(r)?
            .binary_search_by_key(&c, |&(col, _)| col)
            .ok()
            .map(|i| self.rows[r][i].1)
    }

    /// Sparse fault list of physical row `r`, sorted by column.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_faults(&self, r: usize) -> &[(usize, StuckPolarity)] {
        &self.rows[r]
    }

    /// Total number of stuck cells.
    pub fn fault_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Number of stuck-at-0 cells.
    pub fn sa0_count(&self) -> usize {
        self.count(StuckPolarity::StuckAtZero)
    }

    /// Number of stuck-at-1 cells.
    pub fn sa1_count(&self) -> usize {
        self.count(StuckPolarity::StuckAtOne)
    }

    fn count(&self, pol: StuckPolarity) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|&&(_, p)| p == pol)
            .count()
    }

    /// Removes all faults (fresh die).
    pub fn clear_faults(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }

    /// Reads back a binary matrix stored on this crossbar.
    ///
    /// `stored` holds logical 0/1 values (anything > 0.5 is treated as a
    /// programmed "1"). `row_perm`, when given, maps **logical row →
    /// physical row**: logical row `i` of `stored` was written to physical
    /// row `row_perm[i]`, so it picks up that physical row's faults. SA0
    /// cells read as 0 (edge deletion), SA1 cells read as 1 (edge
    /// addition) — Fig. 1(b)'s corruption model.
    ///
    /// `stored` may be smaller than the crossbar (a partial block); only
    /// the stored region is returned.
    ///
    /// # Panics
    ///
    /// Panics if `stored` exceeds the crossbar dimensions, or if
    /// `row_perm` has the wrong length / out-of-range entries.
    pub fn read_binary(&self, stored: &Matrix, row_perm: Option<&[usize]>) -> Matrix {
        assert!(
            stored.rows() <= self.n && stored.cols() <= self.n,
            "stored block {}x{} exceeds crossbar {}",
            stored.rows(),
            stored.cols(),
            self.n
        );
        if let Some(perm) = row_perm {
            assert_eq!(perm.len(), stored.rows(), "row permutation length mismatch");
            assert!(perm.iter().all(|&p| p < self.n), "row permutation out of range");
        }
        let mut out = stored.clone();
        for logical in 0..stored.rows() {
            let physical = row_perm.map_or(logical, |p| p[logical]);
            for &(c, pol) in &self.rows[physical] {
                if c >= stored.cols() {
                    continue;
                }
                out[(logical, c)] = match pol {
                    StuckPolarity::StuckAtZero => 0.0,
                    StuckPolarity::StuckAtOne => 1.0,
                };
            }
        }
        out
    }

    /// Number of mismatches caused by storing binary `stored` with
    /// logical→physical map `row_perm` (identity when `None`).
    ///
    /// This is the paper's cost function: an SA0 under a stored 1 or an
    /// SA1 under a stored 0 each count one mismatch.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Crossbar::read_binary`].
    pub fn mismatch_count(&self, stored: &Matrix, row_perm: Option<&[usize]>) -> usize {
        let read = self.read_binary(stored, row_perm);
        stored
            .iter()
            .zip(read.iter())
            .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
            .count()
    }

    /// Mismatches caused by mapping one logical binary row `row` onto
    /// physical row `physical`.
    ///
    /// Cheap (proportional to the faults in that physical row); used to
    /// build the row-permutation cost matrices of Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `physical` is out of range or `row` is wider than the
    /// crossbar.
    pub fn row_mismatch(&self, row: &[f32], physical: usize) -> usize {
        assert!(row.len() <= self.n, "row wider than crossbar");
        self.rows[physical]
            .iter()
            .filter(|&&(c, pol)| {
                c < row.len()
                    && match pol {
                        StuckPolarity::StuckAtZero => row[c] > 0.5,
                        StuckPolarity::StuckAtOne => row[c] <= 0.5,
                    }
            })
            .count()
    }

    /// SA1 mismatches only for mapping `row` onto `physical` (SA1 faults
    /// under stored zeros). Algorithm 1 uses this for its crossbar-pruning
    /// heuristic because SA1 faults are the more damaging polarity.
    ///
    /// # Panics
    ///
    /// Panics if `physical` is out of range or `row` is wider than the
    /// crossbar.
    pub fn row_sa1_mismatch(&self, row: &[f32], physical: usize) -> usize {
        assert!(row.len() <= self.n, "row wider than crossbar");
        self.rows[physical]
            .iter()
            .filter(|&&(c, pol)| {
                c < row.len() && pol == StuckPolarity::StuckAtOne && row[c] <= 0.5
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_crossbar_fault_free() {
        let x = Crossbar::new(8);
        assert_eq!(x.fault_count(), 0);
        assert_eq!(x.fault_at(0, 0), None);
    }

    #[test]
    fn inject_and_query() {
        let mut x = Crossbar::new(4);
        x.inject_fault(1, 2, StuckPolarity::StuckAtOne);
        x.inject_fault(1, 0, StuckPolarity::StuckAtZero);
        assert_eq!(x.fault_at(1, 2), Some(StuckPolarity::StuckAtOne));
        assert_eq!(x.fault_at(1, 0), Some(StuckPolarity::StuckAtZero));
        assert_eq!(x.fault_count(), 2);
        assert_eq!(x.sa0_count(), 1);
        assert_eq!(x.sa1_count(), 1);
        // Sorted by column.
        assert_eq!(x.row_faults(1)[0].0, 0);
        assert_eq!(x.row_faults(1)[1].0, 2);
    }

    #[test]
    fn reinjection_overwrites_polarity() {
        let mut x = Crossbar::new(4);
        x.inject_fault(0, 0, StuckPolarity::StuckAtZero);
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        assert_eq!(x.fault_count(), 1);
        assert_eq!(x.fault_at(0, 0), Some(StuckPolarity::StuckAtOne));
    }

    #[test]
    fn read_binary_applies_both_polarities() {
        let mut x = Crossbar::new(3);
        x.inject_fault(0, 0, StuckPolarity::StuckAtZero); // under a 1
        x.inject_fault(2, 2, StuckPolarity::StuckAtOne); // under a 0
        let stored = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]);
        let read = x.read_binary(&stored, None);
        assert_eq!(read[(0, 0)], 0.0); // edge deleted
        assert_eq!(read[(2, 2)], 1.0); // edge fabricated
        assert_eq!(read[(1, 1)], 0.0);
    }

    #[test]
    fn row_permutation_dodges_fault() {
        let mut x = Crossbar::new(2);
        x.inject_fault(0, 0, StuckPolarity::StuckAtZero);
        let stored = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        // Identity placement hits the fault.
        assert_eq!(x.mismatch_count(&stored, None), 1);
        // Swap rows: the 1 lands on physical row 1, no fault.
        assert_eq!(x.mismatch_count(&stored, Some(&[1, 0])), 0);
    }

    #[test]
    fn matching_fault_costs_nothing() {
        let mut x = Crossbar::new(2);
        // SA1 under a stored 1: harmless.
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let stored = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        assert_eq!(x.mismatch_count(&stored, None), 0);
    }

    #[test]
    fn row_mismatch_agrees_with_full_read() {
        let mut x = Crossbar::new(4);
        x.inject_fault(2, 1, StuckPolarity::StuckAtOne);
        x.inject_fault(2, 3, StuckPolarity::StuckAtZero);
        let row = [0.0f32, 0.0, 0.0, 1.0];
        // SA1 under 0 at col1 (mismatch) + SA0 under 1 at col3 (mismatch).
        assert_eq!(x.row_mismatch(&row, 2), 2);
        assert_eq!(x.row_sa1_mismatch(&row, 2), 1);
        let row2 = [0.0f32, 1.0, 0.0, 0.0];
        // SA1 under 1 is fine; SA0 under 0 is fine.
        assert_eq!(x.row_mismatch(&row2, 2), 0);
    }

    #[test]
    fn partial_block_only_sees_covered_faults() {
        let mut x = Crossbar::new(8);
        x.inject_fault(0, 7, StuckPolarity::StuckAtOne); // outside a 4-wide block
        let stored = Matrix::zeros(4, 4);
        assert_eq!(x.mismatch_count(&stored, None), 0);
    }

    #[test]
    fn clear_faults_resets() {
        let mut x = Crossbar::new(4);
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        x.clear_faults();
        assert_eq!(x.fault_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_out_of_range_panics() {
        Crossbar::new(2).inject_fault(2, 0, StuckPolarity::StuckAtOne);
    }

    #[test]
    #[should_panic(expected = "exceeds crossbar")]
    fn oversized_block_panics() {
        let x = Crossbar::new(2);
        x.read_binary(&Matrix::zeros(3, 3), None);
    }
}
