use fare_rt::json::{field, FromJson, Json, JsonError, ToJson};
use fare_tensor::fixed::StuckPolarity;
use fare_tensor::Matrix;

/// One square ReRAM crossbar: an `n × n` array of 2-bit cells, some of
/// which may be stuck.
///
/// The crossbar tracks only fault state — stored values are supplied at
/// read time (`read_binary`), matching how the simulator replays the same
/// physical fault pattern against whatever matrix is currently
/// programmed.
///
/// Fault state is kept in two synchronised representations: sparse
/// per-row `(column, polarity)` lists (the query/serialisation format)
/// and packed per-row `u64` bit planes, one for each polarity, which turn
/// the mapping pipeline's mismatch counts into a handful of popcounts
/// (see [`Crossbar::row_mismatch_packed`]). Fault totals are cached and
/// a monotone [`Crossbar::fault_version`] counter is bumped on every
/// mutation so callers can cache work keyed on fault state.
///
/// # Example
///
/// ```
/// use fare_reram::{Crossbar, StuckPolarity};
/// use fare_tensor::Matrix;
///
/// let mut xbar = Crossbar::new(4);
/// xbar.inject_fault(0, 1, StuckPolarity::StuckAtOne);
/// let stored = Matrix::zeros(4, 4);
/// let read = xbar.read_binary(&stored, None);
/// assert_eq!(read[(0, 1)], 1.0); // SA1 fabricated an edge
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    n: usize,
    /// `u64` words per packed row: `ceil(n / 64)`.
    words: usize,
    /// Sparse per-row fault lists, each sorted by column.
    rows: Vec<Vec<(usize, StuckPolarity)>>,
    /// Packed SA0 columns, row-major, `n * words` words.
    sa0_bits: Vec<u64>,
    /// Packed SA1 columns, row-major, `n * words` words.
    sa1_bits: Vec<u64>,
    /// Cached stuck-at-0 cell count.
    sa0: usize,
    /// Cached stuck-at-1 cell count.
    sa1: usize,
    /// Bumped on every `inject_fault` / `clear_faults`.
    version: u64,
}

/// Two crossbars are equal when their fault state is: the packed planes,
/// counts and version are derived/bookkeeping state, not identity.
impl PartialEq for Crossbar {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.rows == other.rows
    }
}

impl ToJson for Crossbar {
    fn to_json(&self) -> Json {
        // Serialise only the semantic fields; the packed planes, cached
        // counts and version counter are rebuilt on load.
        Json::Obj(vec![
            ("n".to_string(), self.n.to_json()),
            ("rows".to_string(), self.rows.to_json()),
        ])
    }
}

impl FromJson for Crossbar {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let n: usize = field(v, "n")?;
        let rows: Vec<Vec<(usize, StuckPolarity)>> = field(v, "rows")?;
        if rows.len() != n {
            return Err(JsonError::new(format!(
                "crossbar has {} fault rows for dimension {n}",
                rows.len()
            )));
        }
        let mut xbar = Crossbar::new(n);
        for (r, row) in rows.into_iter().enumerate() {
            for (c, pol) in row {
                if c >= n {
                    return Err(JsonError::new(format!(
                        "fault column {c} out of range for crossbar {n}"
                    )));
                }
                xbar.place_fault(r, c, pol);
            }
        }
        xbar.version = 0;
        Ok(xbar)
    }
}

impl Crossbar {
    /// Creates a fault-free `n × n` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "crossbar size must be positive");
        let words = n.div_ceil(64);
        Self {
            n,
            words,
            rows: vec![Vec::new(); n],
            sa0_bits: vec![0; n * words],
            sa1_bits: vec![0; n * words],
            sa0: 0,
            sa1: 0,
            version: 0,
        }
    }

    /// Crossbar dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `u64` words per packed fault row (`ceil(n / 64)`).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Marks cell `(r, c)` stuck. A second injection at the same cell
    /// overwrites the polarity (the physically later failure wins).
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn inject_fault(&mut self, r: usize, c: usize, polarity: StuckPolarity) {
        match polarity {
            StuckPolarity::StuckAtZero => fare_obs::counters::RERAM_FAULTS_INJECTED_SA0.incr(),
            StuckPolarity::StuckAtOne => fare_obs::counters::RERAM_FAULTS_INJECTED_SA1.incr(),
        }
        self.place_fault(r, c, polarity);
    }

    /// [`inject_fault`](Self::inject_fault) without telemetry: used when
    /// rebuilding a crossbar from its serialised fault map, which is a
    /// reconstruction, not a physical injection event.
    fn place_fault(&mut self, r: usize, c: usize, polarity: StuckPolarity) {
        assert!(r < self.n && c < self.n, "fault ({r},{c}) out of range");
        let row = &mut self.rows[r];
        match row.binary_search_by_key(&c, |&(col, _)| col) {
            Ok(i) => {
                let old = row[i].1;
                row[i].1 = polarity;
                if old != polarity {
                    self.set_bit(old, r, c, false);
                    self.dec_count(old);
                    self.set_bit(polarity, r, c, true);
                    self.inc_count(polarity);
                }
            }
            Err(i) => {
                row.insert(i, (c, polarity));
                self.set_bit(polarity, r, c, true);
                self.inc_count(polarity);
            }
        }
        self.version += 1;
    }

    fn set_bit(&mut self, pol: StuckPolarity, r: usize, c: usize, on: bool) {
        let plane = match pol {
            StuckPolarity::StuckAtZero => &mut self.sa0_bits,
            StuckPolarity::StuckAtOne => &mut self.sa1_bits,
        };
        let word = &mut plane[r * self.words + c / 64];
        if on {
            *word |= 1u64 << (c % 64);
        } else {
            *word &= !(1u64 << (c % 64));
        }
    }

    fn inc_count(&mut self, pol: StuckPolarity) {
        match pol {
            StuckPolarity::StuckAtZero => self.sa0 += 1,
            StuckPolarity::StuckAtOne => self.sa1 += 1,
        }
    }

    fn dec_count(&mut self, pol: StuckPolarity) {
        match pol {
            StuckPolarity::StuckAtZero => self.sa0 -= 1,
            StuckPolarity::StuckAtOne => self.sa1 -= 1,
        }
    }

    /// Fault state of cell `(r, c)`, if any.
    pub fn fault_at(&self, r: usize, c: usize) -> Option<StuckPolarity> {
        self.rows
            .get(r)?
            .binary_search_by_key(&c, |&(col, _)| col)
            .ok()
            .map(|i| self.rows[r][i].1)
    }

    /// Sparse fault list of physical row `r`, sorted by column.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_faults(&self, r: usize) -> &[(usize, StuckPolarity)] {
        &self.rows[r]
    }

    /// Total number of stuck cells (cached; O(1)).
    pub fn fault_count(&self) -> usize {
        self.sa0 + self.sa1
    }

    /// Number of stuck-at-0 cells (cached; O(1)).
    pub fn sa0_count(&self) -> usize {
        self.sa0
    }

    /// Number of stuck-at-1 cells (cached; O(1)).
    pub fn sa1_count(&self) -> usize {
        self.sa1
    }

    /// Monotone counter bumped on every [`Crossbar::inject_fault`] /
    /// [`Crossbar::clear_faults`] call. Callers caching derived work
    /// (e.g. row-permutation solutions) can compare versions to detect
    /// whether this crossbar's fault state may have changed. Overwriting
    /// a cell with its existing polarity still bumps the version — a
    /// spurious invalidation is safe, a missed one is not.
    pub fn fault_version(&self) -> u64 {
        self.version
    }

    /// Physical rows that carry at least one fault, ascending.
    pub fn faulty_rows(&self) -> Vec<usize> {
        (0..self.n).filter(|&r| !self.rows[r].is_empty()).collect()
    }

    /// The packed SA0/SA1 fault planes (`n * words()` words each,
    /// row-major). A clone of these slices is an exact content
    /// fingerprint of the fault state: two crossbars of equal `n` with
    /// equal planes have identical fault sets.
    pub fn fault_bits(&self) -> (&[u64], &[u64]) {
        (&self.sa0_bits, &self.sa1_bits)
    }

    /// Packed SA0 columns of physical row `r` (`words()` words).
    pub fn sa0_row_bits(&self, r: usize) -> &[u64] {
        &self.sa0_bits[r * self.words..(r + 1) * self.words]
    }

    /// Packed SA1 columns of physical row `r` (`words()` words).
    pub fn sa1_row_bits(&self, r: usize) -> &[u64] {
        &self.sa1_bits[r * self.words..(r + 1) * self.words]
    }

    /// Removes all faults (fresh die).
    pub fn clear_faults(&mut self) {
        fare_obs::counters::RERAM_FAULTS_CLEARED.incr();
        for row in &mut self.rows {
            row.clear();
        }
        self.sa0_bits.fill(0);
        self.sa1_bits.fill(0);
        self.sa0 = 0;
        self.sa1 = 0;
        self.version += 1;
    }

    /// Reads back a binary matrix stored on this crossbar.
    ///
    /// `stored` holds logical 0/1 values (anything > 0.5 is treated as a
    /// programmed "1"). `row_perm`, when given, maps **logical row →
    /// physical row**: logical row `i` of `stored` was written to physical
    /// row `row_perm[i]`, so it picks up that physical row's faults. SA0
    /// cells read as 0 (edge deletion), SA1 cells read as 1 (edge
    /// addition) — Fig. 1(b)'s corruption model.
    ///
    /// `stored` may be smaller than the crossbar (a partial block); only
    /// the stored region is returned.
    ///
    /// # Panics
    ///
    /// Panics if `stored` exceeds the crossbar dimensions, or if
    /// `row_perm` has the wrong length / out-of-range entries.
    pub fn read_binary(&self, stored: &Matrix, row_perm: Option<&[usize]>) -> Matrix {
        assert!(
            stored.rows() <= self.n && stored.cols() <= self.n,
            "stored block {}x{} exceeds crossbar {}",
            stored.rows(),
            stored.cols(),
            self.n
        );
        if let Some(perm) = row_perm {
            assert_eq!(perm.len(), stored.rows(), "row permutation length mismatch");
            assert!(perm.iter().all(|&p| p < self.n), "row permutation out of range");
        }
        fare_obs::counters::RERAM_CROSSBARS_CORRUPTED.incr();
        let mut out = stored.clone();
        for logical in 0..stored.rows() {
            let physical = row_perm.map_or(logical, |p| p[logical]);
            for &(c, pol) in &self.rows[physical] {
                if c >= stored.cols() {
                    continue;
                }
                out[(logical, c)] = match pol {
                    StuckPolarity::StuckAtZero => 0.0,
                    StuckPolarity::StuckAtOne => 1.0,
                };
            }
        }
        out
    }

    /// Number of mismatches caused by storing binary `stored` with
    /// logical→physical map `row_perm` (identity when `None`).
    ///
    /// This is the paper's cost function: an SA0 under a stored 1 or an
    /// SA1 under a stored 0 each count one mismatch.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Crossbar::read_binary`].
    pub fn mismatch_count(&self, stored: &Matrix, row_perm: Option<&[usize]>) -> usize {
        let read = self.read_binary(stored, row_perm);
        stored
            .iter()
            .zip(read.iter())
            .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
            .count()
    }

    /// Mismatches caused by mapping one logical binary row `row` onto
    /// physical row `physical`.
    ///
    /// Cheap (proportional to the faults in that physical row); used to
    /// build the row-permutation cost matrices of Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `physical` is out of range or `row` is wider than the
    /// crossbar.
    pub fn row_mismatch(&self, row: &[f32], physical: usize) -> usize {
        assert!(row.len() <= self.n, "row wider than crossbar");
        self.rows[physical]
            .iter()
            .filter(|&&(c, pol)| {
                c < row.len()
                    && match pol {
                        StuckPolarity::StuckAtZero => row[c] > 0.5,
                        StuckPolarity::StuckAtOne => row[c] <= 0.5,
                    }
            })
            .count()
    }

    /// SA1 mismatches only for mapping `row` onto `physical` (SA1 faults
    /// under stored zeros). Algorithm 1 uses this for its crossbar-pruning
    /// heuristic because SA1 faults are the more damaging polarity.
    ///
    /// # Panics
    ///
    /// Panics if `physical` is out of range or `row` is wider than the
    /// crossbar.
    pub fn row_sa1_mismatch(&self, row: &[f32], physical: usize) -> usize {
        assert!(row.len() <= self.n, "row wider than crossbar");
        self.rows[physical]
            .iter()
            .filter(|&&(c, pol)| {
                c < row.len() && pol == StuckPolarity::StuckAtOne && row[c] <= 0.5
            })
            .count()
    }

    /// Bitset equivalent of [`Crossbar::row_mismatch`] for a **full-width**
    /// logical row packed into `words()` `u64`s (bit `c` set ⇔ the stored
    /// value at column `c` is a 1; bits at `c ≥ n` must be zero):
    ///
    /// ```text
    /// mismatches = Σ_w popcnt(sa0_w & row_w) + popcnt(sa1_w & !row_w)
    /// ```
    ///
    /// The `!row_w` tail bits beyond `n` never contribute because the SA1
    /// plane has no bits set there. Equals `row_mismatch` on the unpacked
    /// `n`-wide row — pinned by a property test.
    ///
    /// # Panics
    ///
    /// Panics if `physical` is out of range or `row_bits` is not exactly
    /// `words()` long.
    pub fn row_mismatch_packed(&self, row_bits: &[u64], physical: usize) -> usize {
        assert_eq!(row_bits.len(), self.words, "packed row width mismatch");
        let base = physical * self.words;
        let mut hits = 0u32;
        for (w, &row) in row_bits.iter().enumerate() {
            hits += (self.sa0_bits[base + w] & row).count_ones();
            hits += (self.sa1_bits[base + w] & !row).count_ones();
        }
        hits as usize
    }

    /// Bitset equivalent of [`Crossbar::row_sa1_mismatch`]; same packing
    /// contract as [`Crossbar::row_mismatch_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `physical` is out of range or `row_bits` is not exactly
    /// `words()` long.
    pub fn row_sa1_mismatch_packed(&self, row_bits: &[u64], physical: usize) -> usize {
        assert_eq!(row_bits.len(), self.words, "packed row width mismatch");
        let base = physical * self.words;
        let mut hits = 0u32;
        for (w, &row) in row_bits.iter().enumerate() {
            hits += (self.sa1_bits[base + w] & !row).count_ones();
        }
        hits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::PackedRows;

    #[test]
    fn new_crossbar_fault_free() {
        let x = Crossbar::new(8);
        assert_eq!(x.fault_count(), 0);
        assert_eq!(x.fault_at(0, 0), None);
        assert_eq!(x.fault_version(), 0);
        assert!(x.faulty_rows().is_empty());
    }

    #[test]
    fn inject_and_query() {
        let mut x = Crossbar::new(4);
        x.inject_fault(1, 2, StuckPolarity::StuckAtOne);
        x.inject_fault(1, 0, StuckPolarity::StuckAtZero);
        assert_eq!(x.fault_at(1, 2), Some(StuckPolarity::StuckAtOne));
        assert_eq!(x.fault_at(1, 0), Some(StuckPolarity::StuckAtZero));
        assert_eq!(x.fault_count(), 2);
        assert_eq!(x.sa0_count(), 1);
        assert_eq!(x.sa1_count(), 1);
        // Sorted by column.
        assert_eq!(x.row_faults(1)[0].0, 0);
        assert_eq!(x.row_faults(1)[1].0, 2);
        assert_eq!(x.faulty_rows(), vec![1]);
        assert_eq!(x.fault_version(), 2);
    }

    #[test]
    fn reinjection_overwrites_polarity() {
        let mut x = Crossbar::new(4);
        x.inject_fault(0, 0, StuckPolarity::StuckAtZero);
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        assert_eq!(x.fault_count(), 1);
        assert_eq!(x.sa0_count(), 0);
        assert_eq!(x.sa1_count(), 1);
        assert_eq!(x.fault_at(0, 0), Some(StuckPolarity::StuckAtOne));
        // The packed planes track the overwrite.
        assert_eq!(x.sa0_row_bits(0)[0], 0);
        assert_eq!(x.sa1_row_bits(0)[0], 1);
    }

    #[test]
    fn cached_counts_match_recount() {
        let mut rng = fare_rt::rng(5);
        use fare_rt::rand::Rng;
        let mut x = Crossbar::new(70); // straddles a word boundary
        for _ in 0..200 {
            let r = rng.gen_range(0..70);
            let c = rng.gen_range(0..70);
            let pol = if rng.gen_range(0..2) == 0 {
                StuckPolarity::StuckAtZero
            } else {
                StuckPolarity::StuckAtOne
            };
            x.inject_fault(r, c, pol);
        }
        let recount: usize = (0..70).map(|r| x.row_faults(r).len()).collect::<Vec<_>>().iter().sum();
        let sa0_recount = (0..70)
            .flat_map(|r| x.row_faults(r).iter())
            .filter(|&&(_, p)| p == StuckPolarity::StuckAtZero)
            .count();
        assert_eq!(x.fault_count(), recount);
        assert_eq!(x.sa0_count(), sa0_recount);
        assert_eq!(x.sa1_count(), recount - sa0_recount);
        // Packed planes agree with the sparse lists cell by cell.
        for r in 0..70 {
            for c in 0..70 {
                let bit0 = x.sa0_row_bits(r)[c / 64] >> (c % 64) & 1 == 1;
                let bit1 = x.sa1_row_bits(r)[c / 64] >> (c % 64) & 1 == 1;
                match x.fault_at(r, c) {
                    Some(StuckPolarity::StuckAtZero) => assert!(bit0 && !bit1),
                    Some(StuckPolarity::StuckAtOne) => assert!(bit1 && !bit0),
                    None => assert!(!bit0 && !bit1),
                }
            }
        }
    }

    #[test]
    fn packed_kernels_match_slice_kernels() {
        let mut rng = fare_rt::rng(9);
        use fare_rt::rand::Rng;
        for n in [8usize, 63, 64, 65, 128] {
            let mut x = Crossbar::new(n);
            for _ in 0..n {
                let pol = if rng.gen_range(0..2) == 0 {
                    StuckPolarity::StuckAtZero
                } else {
                    StuckPolarity::StuckAtOne
                };
                x.inject_fault(rng.gen_range(0..n), rng.gen_range(0..n), pol);
            }
            let block = Matrix::from_fn(n, n, |_, _| {
                if rng.gen_range(0..3) == 0 {
                    1.0
                } else {
                    0.0
                }
            });
            let packed = PackedRows::from_matrix(&block);
            for p in 0..n {
                for q in 0..n {
                    assert_eq!(
                        x.row_mismatch_packed(packed.row(p), q),
                        x.row_mismatch(block.row(p), q),
                        "mismatch kernel n={n} p={p} q={q}"
                    );
                    assert_eq!(
                        x.row_sa1_mismatch_packed(packed.row(p), q),
                        x.row_sa1_mismatch(block.row(p), q),
                        "sa1 kernel n={n} p={p} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut x = Crossbar::new(4);
        assert_eq!(x.fault_version(), 0);
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        assert_eq!(x.fault_version(), 1);
        // Same-polarity overwrite still bumps (conservative invalidation).
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        assert_eq!(x.fault_version(), 2);
        x.clear_faults();
        assert_eq!(x.fault_version(), 3);
        assert_eq!(x.fault_count(), 0);
        assert_eq!(x.fault_bits().0.iter().all(|&w| w == 0), true);
        assert_eq!(x.fault_bits().1.iter().all(|&w| w == 0), true);
    }

    #[test]
    fn read_binary_applies_both_polarities() {
        let mut x = Crossbar::new(3);
        x.inject_fault(0, 0, StuckPolarity::StuckAtZero); // under a 1
        x.inject_fault(2, 2, StuckPolarity::StuckAtOne); // under a 0
        let stored = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]);
        let read = x.read_binary(&stored, None);
        assert_eq!(read[(0, 0)], 0.0); // edge deleted
        assert_eq!(read[(2, 2)], 1.0); // edge fabricated
        assert_eq!(read[(1, 1)], 0.0);
    }

    #[test]
    fn row_permutation_dodges_fault() {
        let mut x = Crossbar::new(2);
        x.inject_fault(0, 0, StuckPolarity::StuckAtZero);
        let stored = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        // Identity placement hits the fault.
        assert_eq!(x.mismatch_count(&stored, None), 1);
        // Swap rows: the 1 lands on physical row 1, no fault.
        assert_eq!(x.mismatch_count(&stored, Some(&[1, 0])), 0);
    }

    #[test]
    fn matching_fault_costs_nothing() {
        let mut x = Crossbar::new(2);
        // SA1 under a stored 1: harmless.
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        let stored = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        assert_eq!(x.mismatch_count(&stored, None), 0);
    }

    #[test]
    fn row_mismatch_agrees_with_full_read() {
        let mut x = Crossbar::new(4);
        x.inject_fault(2, 1, StuckPolarity::StuckAtOne);
        x.inject_fault(2, 3, StuckPolarity::StuckAtZero);
        let row = [0.0f32, 0.0, 0.0, 1.0];
        // SA1 under 0 at col1 (mismatch) + SA0 under 1 at col3 (mismatch).
        assert_eq!(x.row_mismatch(&row, 2), 2);
        assert_eq!(x.row_sa1_mismatch(&row, 2), 1);
        let row2 = [0.0f32, 1.0, 0.0, 0.0];
        // SA1 under 1 is fine; SA0 under 0 is fine.
        assert_eq!(x.row_mismatch(&row2, 2), 0);
    }

    #[test]
    fn partial_block_only_sees_covered_faults() {
        let mut x = Crossbar::new(8);
        x.inject_fault(0, 7, StuckPolarity::StuckAtOne); // outside a 4-wide block
        let stored = Matrix::zeros(4, 4);
        assert_eq!(x.mismatch_count(&stored, None), 0);
    }

    #[test]
    fn clear_faults_resets() {
        let mut x = Crossbar::new(4);
        x.inject_fault(0, 0, StuckPolarity::StuckAtOne);
        x.clear_faults();
        assert_eq!(x.fault_count(), 0);
    }

    #[test]
    fn json_round_trip_rebuilds_derived_state() {
        let mut x = Crossbar::new(70);
        x.inject_fault(3, 65, StuckPolarity::StuckAtOne);
        x.inject_fault(3, 2, StuckPolarity::StuckAtZero);
        x.inject_fault(69, 0, StuckPolarity::StuckAtOne);
        let text = fare_rt::json::to_string(&x).unwrap();
        let back: Crossbar = fare_rt::json::from_str(&text).unwrap();
        assert_eq!(back, x);
        assert_eq!(back.fault_count(), 3);
        assert_eq!(back.sa0_count(), 1);
        assert_eq!(back.sa1_count(), 2);
        assert_eq!(back.sa0_row_bits(3), x.sa0_row_bits(3));
        assert_eq!(back.sa1_row_bits(3), x.sa1_row_bits(3));
        assert_eq!(back.sa1_row_bits(69), x.sa1_row_bits(69));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_out_of_range_panics() {
        Crossbar::new(2).inject_fault(2, 0, StuckPolarity::StuckAtOne);
    }

    #[test]
    #[should_panic(expected = "exceeds crossbar")]
    fn oversized_block_panics() {
        let x = Crossbar::new(2);
        x.read_binary(&Matrix::zeros(3, 3), None);
    }
}
