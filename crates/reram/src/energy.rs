//! Energy and area accounting (Table III constants).
//!
//! The paper reports 0.34 W and 0.157 mm² per tile (NeuroSim v2.1
//! numbers) plus a 0.13 % BIST area overhead. This module turns those
//! constants plus the pipeline geometry into chip-level energy/area
//! estimates, so experiments can report the cost of over-provisioning
//! crossbars for FARe's mapping freedom.


use crate::timing::PipelineSpec;
use crate::ChipConfig;

/// Energy/area report for one accelerator provisioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Number of tiles provisioned.
    pub tiles: usize,
    /// Total chip area, mm² (including BIST overhead).
    pub area_mm2: f64,
    /// Chip power, watts.
    pub power_w: f64,
    /// Training execution time, seconds.
    pub exec_time_s: f64,
    /// Training energy, joules.
    pub energy_j: f64,
}

fare_rt::json_struct!(EnergyReport { tiles, area_mm2, power_w, exec_time_s, energy_j });

/// Computes the energy/area report for a training run needing
/// `crossbars` crossbars with the pipelined schedule `pipeline`.
///
/// # Panics
///
/// Panics if `crossbars == 0`.
///
/// # Example
///
/// ```
/// use fare_reram::energy::estimate;
/// use fare_reram::timing::PipelineSpec;
/// use fare_reram::ChipConfig;
///
/// let cfg = ChipConfig::date2024();
/// let report = estimate(&cfg, 96, &PipelineSpec::new(50, 5, 1e-3, 100));
/// assert_eq!(report.tiles, 1);
/// assert!((report.power_w - 0.34).abs() < 1e-12);
/// ```
pub fn estimate(config: &ChipConfig, crossbars: usize, pipeline: &PipelineSpec) -> EnergyReport {
    assert!(crossbars > 0, "need at least one crossbar");
    fare_obs::counters::RERAM_ENERGY_ESTIMATES.incr();
    let tiles = config.tiles_for(crossbars);
    let power_w = config.chip_power_w(tiles);
    let exec_time_s = pipeline.epochs as f64
        * (pipeline.num_batches + pipeline.num_stages - 1) as f64
        * pipeline.stage_delay_s;
    EnergyReport {
        tiles,
        area_mm2: config.chip_area_mm2(tiles),
        power_w,
        exec_time_s,
        energy_j: power_w * exec_time_s,
    }
}

/// Relative area cost of FARe's crossbar over-provisioning: the paper's
/// mapping needs `slack ×` the minimum crossbar count to give Algorithm 1
/// placement freedom. Returns `(baseline, provisioned, area_ratio)`.
///
/// # Panics
///
/// Panics if `slack < 1.0` or `min_crossbars == 0`.
pub fn overprovisioning_cost(
    config: &ChipConfig,
    min_crossbars: usize,
    slack: f64,
    pipeline: &PipelineSpec,
) -> (EnergyReport, EnergyReport, f64) {
    assert!(slack >= 1.0, "slack must be >= 1.0");
    let baseline = estimate(config, min_crossbars, pipeline);
    let provisioned = estimate(
        config,
        ((min_crossbars as f64 * slack).ceil() as usize).max(min_crossbars),
        pipeline,
    );
    let ratio = provisioned.area_mm2 / baseline.area_mm2;
    (baseline, provisioned, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> PipelineSpec {
        PipelineSpec::new(50, 5, 1e-3, 100)
    }

    #[test]
    fn single_tile_report() {
        let r = estimate(&ChipConfig::date2024(), 96, &pipeline());
        assert_eq!(r.tiles, 1);
        assert!((r.exec_time_s - 5.4).abs() < 1e-9);
        assert!((r.energy_j - 0.34 * 5.4).abs() < 1e-9);
        assert!(r.area_mm2 > 0.157 && r.area_mm2 < 0.158);
    }

    #[test]
    fn tiles_round_up() {
        let r = estimate(&ChipConfig::date2024(), 97, &pipeline());
        assert_eq!(r.tiles, 2);
        assert!((r.power_w - 0.68).abs() < 1e-12);
    }

    #[test]
    fn overprovisioning_ratio_bounded_by_tile_granularity() {
        let cfg = ChipConfig::date2024();
        let (base, prov, ratio) = overprovisioning_cost(&cfg, 96, 1.5, &pipeline());
        // 96 -> 144 crossbars = 1 -> 2 tiles.
        assert_eq!(base.tiles, 1);
        assert_eq!(prov.tiles, 2);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slack_one_is_free() {
        let cfg = ChipConfig::date2024();
        let (_, _, ratio) = overprovisioning_cost(&cfg, 96, 1.0, &pipeline());
        assert_eq!(ratio, 1.0);
    }

    #[test]
    fn energy_scales_with_epochs() {
        let cfg = ChipConfig::date2024();
        let a = estimate(&cfg, 96, &PipelineSpec::new(50, 5, 1e-3, 1)).energy_j;
        let b = estimate(&cfg, 96, &PipelineSpec::new(50, 5, 1e-3, 10)).energy_j;
        assert!((b / a - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one crossbar")]
    fn zero_crossbars_rejected() {
        estimate(&ChipConfig::date2024(), 0, &pipeline());
    }
}
