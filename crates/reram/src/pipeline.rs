//! Discrete-event simulation of the pipelined training schedule
//! (paper Fig. 2).
//!
//! The analytical [`crate::timing`] model assumes the classic
//! `N + S − 1` pipeline-depth formula plus per-scheme perturbations.
//! This module *derives* those numbers instead: batches flow through `S`
//! stages, one stage-slot per cycle, with optional per-batch stall
//! cycles (neuron reordering), an optional extra stage (clipping), and
//! per-epoch service cycles (BIST). The unit tests prove the simulated
//! cycle counts equal the analytical model exactly, which is what makes
//! Fig. 7's normalised ratios trustworthy.


/// A pipeline schedule to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Batches per epoch.
    pub batches: usize,
    /// Pipeline stages each batch passes through.
    pub stages: usize,
    /// Stall cycles inserted after each batch *issues* (NR recompute).
    pub stall_after_batch: usize,
    /// Service cycles appended at the end of each epoch (BIST scan).
    pub epoch_service: usize,
    /// Epochs.
    pub epochs: usize,
}

fare_rt::json_struct!(Schedule { batches, stages, stall_after_batch, epoch_service, epochs });

impl Schedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `batches`, `stages` or `epochs` is zero.
    pub fn new(batches: usize, stages: usize, epochs: usize) -> Self {
        assert!(batches > 0 && stages > 0 && epochs > 0, "counts must be positive");
        Self {
            batches,
            stages,
            stall_after_batch: 0,
            epoch_service: 0,
            epochs,
        }
    }

    /// Adds per-batch stall cycles (builder style).
    pub fn with_stalls(mut self, cycles: usize) -> Self {
        self.stall_after_batch = cycles;
        self
    }

    /// Adds per-epoch service cycles (builder style).
    pub fn with_epoch_service(mut self, cycles: usize) -> Self {
        self.epoch_service = cycles;
        self
    }
}

/// Result of simulating a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Total cycles from first issue to last drain.
    pub total_cycles: usize,
    /// Cycles in which at least one stage did useful work.
    pub busy_cycles: usize,
    /// Pipeline utilisation: busy stage-slots / (stages × total cycles).
    pub utilization: f64,
}

fare_rt::json_struct!(SimResult { total_cycles, busy_cycles, utilization });

/// Simulates the schedule cycle by cycle.
///
/// Each batch occupies stage `s` during exactly one cycle, one stage per
/// cycle in order; a new batch issues into stage 0 the cycle after the
/// previous one leaves it, except when a stall blocks the front end.
/// Epochs are serialised (an epoch's first batch issues after the
/// previous epoch fully drains and its service cycles elapse) — matching
/// the paper's per-epoch formula.
pub fn simulate(schedule: &Schedule) -> SimResult {
    fare_obs::counters::RERAM_PIPELINE_SIMS.incr();
    fare_obs::counters::RERAM_PIPELINE_BATCHES
        .add((schedule.epochs * schedule.batches) as u64);
    let s = schedule.stages;
    let mut total_cycles = 0usize;
    let mut busy_slots = 0usize;
    let mut busy_cycles = 0usize;

    for _ in 0..schedule.epochs {
        // Issue times of this epoch's batches relative to epoch start.
        let mut issue = Vec::with_capacity(schedule.batches);
        let mut t = 0usize;
        for b in 0..schedule.batches {
            issue.push(t);
            t += 1; // next batch can enter stage 0 one cycle later...
            if schedule.stall_after_batch > 0 && b + 1 < schedule.batches {
                t += schedule.stall_after_batch; // ...unless the front end stalls
            }
        }
        let drain = issue.last().expect("batches > 0") + s; // epoch length in cycles
        // Count busy stage-slots cycle by cycle.
        for cycle in 0..drain {
            let mut any = false;
            for &at in issue.iter() {
                if cycle >= at && cycle < at + s {
                    busy_slots += 1;
                    any = true;
                }
            }
            if any {
                busy_cycles += 1;
            }
        }
        total_cycles += drain + schedule.epoch_service;
    }

    SimResult {
        total_cycles,
        busy_cycles,
        utilization: busy_slots as f64 / (s * total_cycles.max(1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_pipeline_matches_depth_formula() {
        // N + S - 1 per epoch — the analytical model's core assumption.
        for (n, s, e) in [(1usize, 1usize, 1usize), (10, 5, 1), (50, 5, 3), (7, 2, 10)] {
            let sim = simulate(&Schedule::new(n, s, e));
            assert_eq!(
                sim.total_cycles,
                e * (n + s - 1),
                "N={n} S={s} E={e}"
            );
        }
    }

    #[test]
    fn stalls_add_linear_penalty() {
        // Each of the N-1 inter-batch gaps grows by the stall amount.
        let base = simulate(&Schedule::new(20, 4, 1)).total_cycles;
        let stalled = simulate(&Schedule::new(20, 4, 1).with_stalls(3)).total_cycles;
        assert_eq!(stalled, base + 3 * 19);
    }

    #[test]
    fn epoch_service_adds_per_epoch() {
        let base = simulate(&Schedule::new(10, 3, 5)).total_cycles;
        let with = simulate(&Schedule::new(10, 3, 5).with_epoch_service(2)).total_cycles;
        assert_eq!(with, base + 10);
    }

    #[test]
    fn simulated_nr_ratio_matches_timing_model() {
        // The discrete-event simulation reproduces the analytical
        // TimingModel's NR ratio when the stall constant matches.
        use crate::timing::{PipelineSpec, TimingModel};
        let (n, s, e) = (100usize, 5usize, 10usize);
        let model = TimingModel::new(PipelineSpec::new(n, s, 1e-3, e));
        let base = simulate(&Schedule::new(n, s, e));
        let nr = simulate(&Schedule::new(n, s, e).with_stalls(model.nr_stall_stages as usize));
        let sim_ratio = nr.total_cycles as f64 / base.total_cycles as f64;
        let model_ratio = model.normalized().neuron_reordering;
        // The analytical model charges N stalls, the simulator N-1 (the
        // last batch has nothing behind it); they agree to O(1/N).
        assert!(
            (sim_ratio - model_ratio).abs() < 0.05,
            "sim {sim_ratio} vs model {model_ratio}"
        );
    }

    #[test]
    fn utilization_increases_with_pipeline_fill() {
        let short = simulate(&Schedule::new(2, 8, 1));
        let long = simulate(&Schedule::new(200, 8, 1));
        assert!(long.utilization > short.utilization);
        assert!(long.utilization > 0.9, "deep pipeline should be near-full");
        assert!(short.utilization <= 1.0);
    }

    #[test]
    fn busy_cycles_never_exceed_total() {
        let sim = simulate(&Schedule::new(13, 4, 2).with_stalls(2).with_epoch_service(5));
        assert!(sim.busy_cycles <= sim.total_cycles);
        assert!(sim.utilization > 0.0 && sim.utilization <= 1.0);
    }

    #[test]
    #[should_panic(expected = "counts must be positive")]
    fn zero_batches_rejected() {
        Schedule::new(0, 1, 1);
    }
}
