//! Bertsekas' auction algorithm for the assignment problem.
//!
//! A third serious solver alongside Hungarian (exact, O(n³)) and
//! b-Suitor (½-approximation): rows "bid" for their most valuable column
//! with an increment that includes a slack `ε`; the result is optimal to
//! within `n·ε`, which for integer-valued costs (mismatch counts are
//! integers) means **exactly optimal** once `ε < 1/n`.
//!
//! The implementation runs a single phase from zero prices rather than
//! `ε`-scaling: for *rectangular* problems (`rows < cols`), carrying
//! prices across phases lets a column end unassigned with a stale
//! inflated price, which voids the asymmetric duality bound. From zero
//! prices, any column ever bid on stays assigned to completion, so
//! unassigned columns keep price 0 and the `n·ε` bound holds.
//!
//! Included because the row-permutation costs of Algorithm 1 are small
//! integers, exactly the regime the auction algorithm is famously fast
//! in, making it a natural candidate for the mapping's inner solver.

use crate::{Assignment, CostMatrix};

/// Solves the min-cost assignment with the auction algorithm.
///
/// For integer costs the result is exactly optimal; for fractional costs
/// it is optimal to within `rows × ε` (`ε = 1 / (rows + 1)`).
///
/// # Panics
///
/// Panics if `cost.rows() > cost.cols()` or the matrix is empty.
///
/// # Example
///
/// ```
/// use fare_matching::{auction, CostMatrix};
/// let cost = CostMatrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
/// let sol = auction(&cost);
/// assert_eq!(sol.total_cost, 5.0);
/// ```
pub fn auction(cost: &CostMatrix) -> Assignment {
    let n = cost.rows();
    let m = cost.cols();
    assert!(n > 0 && m > 0, "empty cost matrix");
    assert!(n <= m, "auction requires rows <= cols, got {n}x{m}");

    // Work in *value* space: value(r, c) = max_cost - cost(r, c) ≥ 0.
    let max_cost = cost.max_cost();
    let value = |r: usize, c: usize| max_cost - cost.get(r, c);

    let mut prices = vec![0.0f64; m];
    let mut owner: Vec<Option<usize>> = vec![None; m]; // column -> row
    let mut assigned: Vec<Option<usize>> = vec![None; n]; // row -> column

    // ε below 1/(n+1) so integer instances resolve exactly (see module
    // docs for why a single phase from zero prices is required).
    let eps = 1.0 / (n as f64 + 1.0);
    let mut unassigned: Vec<usize> = (0..n).collect();
    while let Some(r) = unassigned.pop() {
        // Find best and second-best column for row r at current prices.
        let mut best = (0usize, f64::NEG_INFINITY);
        let mut second = f64::NEG_INFINITY;
        for (c, &price) in prices.iter().enumerate() {
            let net = value(r, c) - price;
            if net > best.1 {
                second = best.1;
                best = (c, net);
            } else if net > second {
                second = net;
            }
        }
        let (c, best_net) = best;
        // Bid: raise the price by the margin over the runner-up, plus ε.
        let increment = if second.is_finite() {
            best_net - second + eps
        } else {
            eps
        };
        prices[c] += increment;
        if let Some(evicted) = owner[c].replace(r) {
            assigned[evicted] = None;
            unassigned.push(evicted);
        }
        assigned[r] = Some(c);
    }

    let total_cost = assigned
        .iter()
        .enumerate()
        .map(|(r, c)| cost.get(r, c.expect("auction assigns every row")))
        .sum();
    Assignment {
        assignment: assigned,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;
    use fare_rt::rand::{Rng, SeedableRng};

    #[test]
    fn one_by_one() {
        let sol = auction(&CostMatrix::from_rows(&[&[2.5]]));
        assert_eq!(sol.total_cost, 2.5);
    }

    #[test]
    fn classic_three_by_three() {
        let cost =
            CostMatrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
        let sol = auction(&cost);
        assert_eq!(sol.total_cost, 5.0);
        assert!(sol.is_valid());
    }

    #[test]
    fn matches_hungarian_on_integer_instances() {
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let n = rng.gen_range(1..=8);
            let m = rng.gen_range(n..=10);
            let cost = CostMatrix::from_fn(n, m, |_, _| rng.gen_range(0..25) as f64);
            let a = auction(&cost);
            let h = hungarian(&cost);
            assert!(a.is_valid());
            assert_eq!(a.matched_count(), n);
            assert_eq!(
                a.total_cost, h.total_cost,
                "auction {} vs hungarian {} on {n}x{m}",
                a.total_cost, h.total_cost
            );
        }
    }

    #[test]
    fn near_optimal_on_fractional_instances() {
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(18);
        for _ in 0..20 {
            let n = rng.gen_range(2..=7);
            let cost = CostMatrix::from_fn(n, n, |_, _| rng.gen_range(0.0..10.0));
            let a = auction(&cost);
            let h = hungarian(&cost);
            assert!(a.is_valid());
            // Within the n·ε theoretical bound (generous slack).
            assert!(
                a.total_cost <= h.total_cost + 1.0,
                "auction {} vs hungarian {}",
                a.total_cost,
                h.total_cost
            );
        }
    }

    #[test]
    fn uniform_costs() {
        let cost = CostMatrix::from_fn(5, 5, |_, _| 2.0);
        let sol = auction(&cost);
        assert!(sol.is_valid());
        assert_eq!(sol.total_cost, 10.0);
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn rejects_tall_matrices() {
        auction(&CostMatrix::from_rows(&[&[1.0], &[2.0]]));
    }
}
