//! Exact Kuhn–Munkres assignment with potentials (Jonker–Volgenant style
//! shortest augmenting paths), O(n²·m).

use crate::{Assignment, CostMatrix};

/// Solves the minimum-cost assignment problem exactly.
///
/// Works on rectangular matrices with `rows <= cols`; every row is
/// assigned a distinct column and the total cost is provably minimal.
///
/// # Panics
///
/// Panics if `cost.rows() > cost.cols()` or `cost` is empty.
///
/// # Example
///
/// ```
/// use fare_matching::{hungarian, CostMatrix};
/// let cost = CostMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
/// let sol = hungarian(&cost);
/// assert_eq!(sol.total_cost, 2.0);
/// assert_eq!(sol.to_permutation(), vec![0, 1]);
/// ```
pub fn hungarian(cost: &CostMatrix) -> Assignment {
    let n = cost.rows();
    let m = cost.cols();
    assert!(n > 0 && m > 0, "empty cost matrix");
    assert!(n <= m, "hungarian requires rows <= cols, got {n}x{m}");

    // 1-indexed arrays in the classic potentials formulation.
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; m + 1]; // column potentials
    let mut way = vec![0usize; m + 1];
    // p[c] = row currently assigned to column c (0 = none).
    let mut p = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = Some(j - 1);
        }
    }
    let total_cost = assignment
        .iter()
        .enumerate()
        .map(|(r, c)| cost.get(r, c.expect("hungarian must assign all rows")))
        .sum();
    Assignment {
        assignment,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &CostMatrix) -> f64 {
        // Exhaustive over column subsets via permutations of column indices.
        fn rec(cost: &CostMatrix, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == cost.rows() {
                *best = best.min(acc);
                return;
            }
            for c in 0..cost.cols() {
                if !used[c] {
                    used[c] = true;
                    rec(cost, row + 1, used, acc + cost.get(row, c), best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, 0, &mut vec![false; cost.cols()], 0.0, &mut best);
        best
    }

    #[test]
    fn one_by_one() {
        let sol = hungarian(&CostMatrix::from_rows(&[&[3.5]]));
        assert_eq!(sol.total_cost, 3.5);
        assert_eq!(sol.to_permutation(), vec![0]);
    }

    #[test]
    fn classic_three_by_three() {
        // Known optimum 5: (0,1)+(1,0)+(2,2) = 1+2+2.
        let cost =
            CostMatrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
        let sol = hungarian(&cost);
        assert_eq!(sol.total_cost, 5.0);
        assert!(sol.is_valid());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use fare_rt::rand::{Rng, SeedableRng};
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(n..=7);
            let cost = CostMatrix::from_fn(n, m, |_, _| rng.gen_range(0.0..20.0f64).round());
            let sol = hungarian(&cost);
            assert!(sol.is_valid());
            assert_eq!(sol.matched_count(), n);
            let bf = brute_force(&cost);
            assert!(
                (sol.total_cost - bf).abs() < 1e-9,
                "hungarian {} vs brute force {bf}",
                sol.total_cost
            );
        }
    }

    #[test]
    fn rectangular_picks_cheapest_columns() {
        let cost = CostMatrix::from_rows(&[&[10.0, 10.0, 1.0, 10.0]]);
        let sol = hungarian(&cost);
        assert_eq!(sol.assignment[0], Some(2));
        assert_eq!(sol.total_cost, 1.0);
    }

    #[test]
    fn handles_negative_costs() {
        let cost = CostMatrix::from_rows(&[&[-5.0, 0.0], &[0.0, -5.0]]);
        let sol = hungarian(&cost);
        assert_eq!(sol.total_cost, -10.0);
    }

    #[test]
    fn ties_still_produce_valid_assignment() {
        let cost = CostMatrix::from_fn(4, 4, |_, _| 1.0);
        let sol = hungarian(&cost);
        assert!(sol.is_valid());
        assert_eq!(sol.total_cost, 4.0);
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn rejects_tall_matrices() {
        hungarian(&CostMatrix::from_rows(&[&[1.0], &[2.0]]));
    }
}
