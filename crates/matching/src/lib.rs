//! Bipartite matching and assignment solvers.
//!
//! FARe's Algorithm 1 solves two nested matching problems:
//!
//! 1. **Row permutation** (`G₁`): match the `n` rows of an adjacency block
//!    to the `n` rows of a crossbar so the number of value/fault mismatches
//!    is minimised.
//! 2. **Block placement** (`G₂`): assign the `b` blocks of a batch to the
//!    `m ≥ b` available crossbars at minimum total cost.
//!
//! Both are linear assignment problems. This crate provides:
//!
//! - [`hungarian`] — exact O(n³) Kuhn–Munkres with potentials,
//! - [`bsuitor`] — the suitor-based ½-approximation for weighted
//!   b-matching from Khan et al. (the algorithm the paper cites as its
//!   implementation choice),
//! - [`auction`] — Bertsekas' ε-scaled auction algorithm (exact on the
//!   integer mismatch costs Algorithm 1 produces),
//! - [`greedy`] — a cheap baseline used in ablations,
//! - [`Matcher`] — a selector enum so callers can swap solvers.
//!
//! # Example
//!
//! ```
//! use fare_matching::{hungarian, CostMatrix};
//!
//! let cost = CostMatrix::from_rows(&[
//!     &[4.0, 1.0, 3.0],
//!     &[2.0, 0.0, 5.0],
//!     &[3.0, 2.0, 2.0],
//! ]);
//! let sol = hungarian(&cost);
//! assert_eq!(sol.total_cost, 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod auction;
pub mod bsuitor;
mod cost;
pub mod dense;
mod hungarian;

pub use auction::auction;
pub use bsuitor::{bsuitor_assignment, bsuitor_matching, Edge};
pub use cost::CostMatrix;
pub use dense::{bsuitor_assignment_ints, DenseBsuitor};
pub use hungarian::hungarian;


/// Solution of a (possibly rectangular) assignment problem.
///
/// `assignment[r]` is the column assigned to row `r`, or `None` when the
/// solver left the row unassigned (only possible for approximate solvers
/// on degenerate inputs; exact solvers always assign every row when
/// `rows <= cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Per-row assigned column.
    pub assignment: Vec<Option<usize>>,
    /// Sum of the costs of the chosen entries.
    pub total_cost: f64,
}

fare_rt::json_struct!(Assignment { assignment, total_cost });

impl Assignment {
    /// Number of rows that received a column.
    pub fn matched_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Returns the assignment as a permutation vector.
    ///
    /// # Panics
    ///
    /// Panics if any row is unassigned.
    pub fn to_permutation(&self) -> Vec<usize> {
        self.assignment
            .iter()
            .map(|a| a.expect("unassigned row in to_permutation"))
            .collect()
    }

    /// `true` if no two rows share a column.
    pub fn is_valid(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.assignment
            .iter()
            .flatten()
            .all(|&c| seen.insert(c))
    }
}

/// Selector for the assignment solver used inside Algorithm 1.
///
/// The paper uses b-Suitor (a ½-approximation) for speed; the exact
/// Hungarian solver is provided for quality ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Matcher {
    /// Exact O(n³) Kuhn–Munkres.
    Hungarian,
    /// Suitor-based ½-approximation (paper's choice).
    #[default]
    BSuitor,
    /// Bertsekas auction with ε-scaling (exact on integer costs).
    Auction,
    /// Row-by-row greedy (ablation baseline).
    Greedy,
}

fare_rt::json_enum!(Matcher { Hungarian, BSuitor, Auction, Greedy });

impl Matcher {
    /// Solves the min-cost assignment of `cost` with this solver.
    ///
    /// # Panics
    ///
    /// Panics if `cost` has more rows than columns.
    pub fn solve(&self, cost: &CostMatrix) -> Assignment {
        match self {
            Matcher::Hungarian => hungarian(cost),
            Matcher::BSuitor => bsuitor_assignment(cost),
            Matcher::Auction => auction(cost),
            Matcher::Greedy => greedy(cost),
        }
    }
}

impl std::fmt::Display for Matcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Matcher::Hungarian => write!(f, "hungarian"),
            Matcher::BSuitor => write!(f, "b-suitor"),
            Matcher::Auction => write!(f, "auction"),
            Matcher::Greedy => write!(f, "greedy"),
        }
    }
}

/// Greedy min-cost assignment: rows in order pick their cheapest free
/// column. Fast, no quality guarantee; used only as an ablation baseline.
///
/// # Panics
///
/// Panics if `cost.rows() > cost.cols()`.
pub fn greedy(cost: &CostMatrix) -> Assignment {
    assert!(
        cost.rows() <= cost.cols(),
        "greedy requires rows <= cols, got {}x{}",
        cost.rows(),
        cost.cols()
    );
    let mut used = vec![false; cost.cols()];
    let mut assignment = vec![None; cost.rows()];
    let mut total = 0.0;
    for (r, slot) in assignment.iter_mut().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (c, &taken) in used.iter().enumerate() {
            if taken {
                continue;
            }
            let v = cost.get(r, c);
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((c, v));
            }
        }
        if let Some((c, v)) = best {
            used[c] = true;
            *slot = Some(c);
            total += v;
        }
    }
    Assignment {
        assignment,
        total_cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> CostMatrix {
        CostMatrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]])
    }

    #[test]
    fn greedy_assigns_all_rows() {
        let sol = greedy(&square());
        assert_eq!(sol.matched_count(), 3);
        assert!(sol.is_valid());
    }

    #[test]
    fn greedy_cost_at_least_optimal() {
        let sol_g = greedy(&square());
        let sol_h = hungarian(&square());
        assert!(sol_g.total_cost >= sol_h.total_cost);
    }

    #[test]
    fn matcher_solves_with_all_variants() {
        let cost = square();
        for m in [
            Matcher::Hungarian,
            Matcher::BSuitor,
            Matcher::Auction,
            Matcher::Greedy,
        ] {
            let sol = m.solve(&cost);
            assert!(sol.is_valid(), "{m} produced invalid assignment");
            assert_eq!(sol.matched_count(), 3, "{m} left rows unmatched");
        }
    }

    #[test]
    fn matcher_display() {
        assert_eq!(Matcher::Hungarian.to_string(), "hungarian");
        assert_eq!(Matcher::BSuitor.to_string(), "b-suitor");
        assert_eq!(Matcher::Auction.to_string(), "auction");
        assert_eq!(Matcher::Greedy.to_string(), "greedy");
    }

    #[test]
    fn assignment_permutation_round_trip() {
        let sol = hungarian(&square());
        let perm = sol.to_permutation();
        assert_eq!(perm.len(), 3);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn rectangular_greedy() {
        let cost = CostMatrix::from_rows(&[&[5.0, 1.0, 9.0, 2.0], &[1.0, 8.0, 3.0, 4.0]]);
        let sol = greedy(&cost);
        assert_eq!(sol.matched_count(), 2);
        assert!(sol.is_valid());
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn greedy_rejects_tall_matrix() {
        let cost = CostMatrix::from_rows(&[&[1.0], &[2.0]]);
        greedy(&cost);
    }
}
