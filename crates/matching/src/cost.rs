
/// A dense rectangular cost matrix for assignment problems.
///
/// Row `r` / column `c` holds the cost of assigning row-object `r` to
/// column-object `c`. Costs must be finite; infinite or NaN costs panic at
/// construction so solver internals can assume well-formed input.
///
/// # Example
///
/// ```
/// use fare_matching::CostMatrix;
/// let c = CostMatrix::from_fn(2, 3, |r, c| (r + c) as f64);
/// assert_eq!(c.get(1, 2), 3.0);
/// assert_eq!(c.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

fare_rt::json_struct!(CostMatrix { rows, cols, data });

impl CostMatrix {
    /// Creates a cost matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or any cost is non-finite.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "cost data length mismatch");
        assert!(
            data.iter().all(|v| v.is_finite()),
            "cost matrix entries must be finite"
        );
        Self { rows, cols, data }
    }

    /// Creates a cost matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows, an empty row list, or non-finite costs.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Builds a cost matrix by evaluating `f(row, col)` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a non-finite cost.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Builds a cost matrix one row at a time: `f(r, row)` fills the
    /// zero-initialised `cols`-wide slice for row `r`. This is the bulk
    /// builder the mapping fast path uses — a row-wise kernel can fill a
    /// whole row from packed bitsets without paying a closure call per
    /// entry as [`CostMatrix::from_fn`] does.
    ///
    /// # Panics
    ///
    /// Panics if `f` leaves a non-finite cost in any row.
    pub fn from_row_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, &mut [f64])) -> Self {
        let mut data = vec![0.0; rows * cols];
        for (r, row) in data.chunks_exact_mut(cols).enumerate() {
            f(r, row);
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Cost of assigning row `r` to column `c`.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "cost index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Maximum cost entry (0 for an empty matrix).
    pub fn max_cost(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Evaluates the total cost of a full permutation `perm` where
    /// `perm[r]` is row `r`'s column.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != rows` or any column is out of bounds.
    pub fn permutation_cost(&self, perm: &[usize]) -> f64 {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        perm.iter()
            .enumerate()
            .map(|(r, &c)| self.get(r, c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout() {
        let c = CostMatrix::from_fn(2, 2, |r, c| (10 * r + c) as f64);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 10.0);
        assert_eq!(c.get(1, 1), 11.0);
    }

    #[test]
    fn permutation_cost_sums_entries() {
        let c = CostMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(c.permutation_cost(&[1, 0]), 5.0);
        assert_eq!(c.permutation_cost(&[0, 1]), 5.0);
    }

    #[test]
    fn max_cost() {
        let c = CostMatrix::from_rows(&[&[1.0, 7.0], &[3.0, 4.0]]);
        assert_eq!(c.max_cost(), 7.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        CostMatrix::from_vec(1, 1, vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        CostMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
