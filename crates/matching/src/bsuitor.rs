//! The b-Suitor algorithm for approximate weighted b-matching.
//!
//! Khan et al., *Efficient Approximation Algorithms for Weighted
//! b-Matching* (SIAM J. Sci. Comput., 2016) — the solver the FARe paper
//! uses for its bipartite matchings. Every vertex `v` may be matched to at
//! most `b(v)` neighbours; the algorithm lets vertices "propose" to their
//! heaviest eligible neighbours and guarantees at least half the optimal
//! weight.
//!
//! For FARe both matchings are one-to-one (`b ≡ 1`) *minimum-cost*
//! problems, so [`bsuitor_assignment`] converts costs to weights
//! (`w = max_cost − cost`) and greedily completes any rows the
//! ½-approximation leaves unmatched.

use std::collections::BinaryHeap;


use crate::{Assignment, CostMatrix};

/// An undirected weighted edge between vertices `u` and `v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint.
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Non-negative weight to be maximised.
    pub weight: f64,
}

fare_rt::json_struct!(Edge { u, v, weight });

impl Edge {
    /// Creates a new edge.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite, or `u == v`.
    pub fn new(u: usize, v: usize, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "invalid edge weight {weight}");
        assert_ne!(u, v, "self loops are not allowed in a matching");
        Self { u, v, weight }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Proposal {
    weight: f64,
    from: usize,
    // Tie-break on the proposing vertex id to keep the algorithm
    // deterministic.
}

impl Eq for Proposal {}

impl Ord for Proposal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .partial_cmp(&other.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.from.cmp(&self.from))
    }
}

impl PartialOrd for Proposal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Suitor state of one vertex: a min-heap of its current suitors, capped
/// at `b`.
#[derive(Debug, Clone, Default)]
struct SuitorSet {
    b: usize,
    // BinaryHeap is a max-heap; store reversed proposals so the *worst*
    // current suitor is at the top.
    heap: BinaryHeap<std::cmp::Reverse<Proposal>>,
}

impl SuitorSet {
    fn new(b: usize) -> Self {
        Self {
            b,
            heap: BinaryHeap::new(),
        }
    }

    /// Weight a new proposal has to beat to displace the weakest suitor.
    fn threshold(&self) -> Option<Proposal> {
        if self.heap.len() < self.b {
            None
        } else {
            self.heap.peek().map(|r| r.0)
        }
    }

    /// Accepts a proposal, returning the displaced suitor if the set was
    /// full.
    fn accept(&mut self, p: Proposal) -> Option<Proposal> {
        if self.heap.len() < self.b {
            self.heap.push(std::cmp::Reverse(p));
            None
        } else {
            let evicted = self.heap.pop().map(|r| r.0);
            self.heap.push(std::cmp::Reverse(p));
            evicted
        }
    }

    fn contains(&self, from: usize) -> bool {
        self.heap.iter().any(|r| r.0.from == from)
    }
}

/// Runs b-Suitor on an undirected weighted graph with `n` vertices.
///
/// `b[v]` bounds the number of matches vertex `v` may take. Returns the
/// matched edge set; its total weight is at least half the optimum.
///
/// # Panics
///
/// Panics if `b.len() != n` or any edge endpoint is `>= n`.
///
/// # Example
///
/// ```
/// use fare_matching::{bsuitor_matching, Edge};
/// let edges = vec![
///     Edge::new(0, 1, 10.0),
///     Edge::new(1, 2, 1.0),
///     Edge::new(2, 3, 10.0),
/// ];
/// let matched = bsuitor_matching(4, &edges, &[1, 1, 1, 1]);
/// let total: f64 = matched.iter().map(|e| e.weight).sum();
/// assert_eq!(total, 20.0);
/// ```
pub fn bsuitor_matching(n: usize, edges: &[Edge], b: &[usize]) -> Vec<Edge> {
    assert_eq!(b.len(), n, "b vector must have one entry per vertex");
    // Adjacency lists sorted by descending weight so each vertex proposes
    // to its best remaining neighbour first.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for e in edges {
        assert!(e.u < n && e.v < n, "edge endpoint out of range");
        adj[e.u].push((e.v, e.weight));
        adj[e.v].push((e.u, e.weight));
    }
    for list in &mut adj {
        list.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
    }

    let mut suitors: Vec<SuitorSet> = b.iter().map(|&bi| SuitorSet::new(bi)).collect();
    // next[v] = index into adj[v] of the next neighbour v will propose to.
    let mut next = vec![0usize; n];
    // How many proposals of v are currently accepted somewhere.
    let mut accepted = vec![0usize; n];

    let mut stack: Vec<usize> = (0..n).collect();
    while let Some(u) = stack.pop() {
        while accepted[u] < b[u] && next[u] < adj[u].len() {
            let (v, w) = adj[u][next[u]];
            next[u] += 1;
            if suitors[v].contains(u) {
                continue;
            }
            let beats = match suitors[v].threshold() {
                None => true,
                Some(t) => {
                    let cand = Proposal { weight: w, from: u };
                    cand > t
                }
            };
            if !beats {
                continue;
            }
            let evicted = suitors[v].accept(Proposal { weight: w, from: u });
            accepted[u] += 1;
            if let Some(out) = evicted {
                accepted[out.from] -= 1;
                // The displaced vertex resumes proposing.
                stack.push(out.from);
            }
        }
    }

    // Extract the matching: u is matched to v iff u is a suitor of v.
    // Each unordered pair appears once because proposals are directed; we
    // emit the pair from the suitor side and dedupe mutual proposals.
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (v, suitor_set) in suitors.iter().enumerate() {
        for r in suitor_set.heap.iter() {
            let u = r.0.from;
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                out.push(Edge {
                    u: key.0,
                    v: key.1,
                    weight: r.0.weight,
                });
            }
        }
    }
    out
}

/// Approximate min-cost assignment built on b-Suitor.
///
/// Converts the cost matrix into a bipartite weight-maximisation instance
/// (`w(r, c) = max_cost − cost(r, c)`), runs [`bsuitor_matching`] with
/// `b ≡ 1`, then greedily completes any rows the ½-approximation left
/// unmatched so the result is always a full (valid) assignment.
///
/// # Panics
///
/// Panics if `cost.rows() > cost.cols()`.
pub fn bsuitor_assignment(cost: &CostMatrix) -> Assignment {
    let n = cost.rows();
    let m = cost.cols();
    assert!(n <= m, "bsuitor_assignment requires rows <= cols, got {n}x{m}");
    let max_cost = cost.max_cost();
    // Row r is vertex r; column c is vertex n + c.
    let mut edges = Vec::with_capacity(n * m);
    for r in 0..n {
        for c in 0..m {
            let w = max_cost - cost.get(r, c);
            // A tiny uniform offset keeps zero-weight (worst-cost) edges
            // proposable so every row can be matched.
            edges.push(Edge::new(r, n + c, w + 1e-9));
        }
    }
    let b = vec![1usize; n + m];
    let matched = bsuitor_matching(n + m, &edges, &b);

    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut used = vec![false; m];
    for e in &matched {
        let (row, col) = if e.u < n { (e.u, e.v - n) } else { (e.v, e.u - n) };
        assignment[row] = Some(col);
        used[col] = true;
    }
    // Greedy completion for unmatched rows (rare).
    for (r, slot) in assignment.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (c, &taken) in used.iter().enumerate() {
            if taken {
                continue;
            }
            let v = cost.get(r, c);
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((c, v));
            }
        }
        let (c, _) = best.expect("columns exhausted; rows <= cols guarantees a free column");
        *slot = Some(c);
        used[c] = true;
    }
    let total_cost = assignment
        .iter()
        .enumerate()
        .map(|(r, c)| cost.get(r, c.expect("all rows assigned")))
        .sum();
    Assignment {
        assignment,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;

    #[test]
    fn simple_path_graph_matches_heavy_edges() {
        let edges = vec![
            Edge::new(0, 1, 10.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 3, 10.0),
        ];
        let m = bsuitor_matching(4, &edges, &[1, 1, 1, 1]);
        let total: f64 = m.iter().map(|e| e.weight).sum();
        assert_eq!(total, 20.0);
    }

    #[test]
    fn b_two_allows_two_matches_per_vertex() {
        let edges = vec![
            Edge::new(0, 1, 5.0),
            Edge::new(0, 2, 4.0),
            Edge::new(0, 3, 3.0),
        ];
        let m = bsuitor_matching(4, &edges, &[2, 1, 1, 1]);
        let total: f64 = m.iter().map(|e| e.weight).sum();
        // Vertex 0 can take its two best edges.
        assert_eq!(total, 9.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn matching_respects_degree_bounds() {
        use fare_rt::rand::{Rng, SeedableRng};
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(5);
        let n = 20;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push(Edge::new(u, v, rng.gen_range(0.0..10.0)));
                }
            }
        }
        let b: Vec<usize> = (0..n).map(|i| 1 + i % 3).collect();
        let m = bsuitor_matching(n, &edges, &b);
        let mut deg = vec![0usize; n];
        for e in &m {
            deg[e.u] += 1;
            deg[e.v] += 1;
        }
        for (v, &d) in deg.iter().enumerate() {
            assert!(d <= b[v], "vertex {v} over-matched: {d} > {}", b[v]);
        }
    }

    #[test]
    fn half_approximation_guarantee_on_random_bipartite() {
        use fare_rt::rand::{Rng, SeedableRng};
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..=6);
            let cost = CostMatrix::from_fn(n, n, |_, _| rng.gen_range(0.0..10.0f64).round());
            let approx = bsuitor_assignment(&cost);
            let exact = hungarian(&cost);
            assert!(approx.is_valid());
            assert_eq!(approx.matched_count(), n);
            // In weight space (max_cost - cost) the approximation is >= 1/2
            // of the optimum.
            let max_cost = cost.max_cost();
            let w_approx = n as f64 * max_cost - approx.total_cost;
            let w_exact = n as f64 * max_cost - exact.total_cost;
            assert!(
                w_approx >= 0.5 * w_exact - 1e-6,
                "approx weight {w_approx} < half of exact {w_exact}"
            );
        }
    }

    #[test]
    fn assignment_on_uniform_costs_is_complete() {
        let cost = CostMatrix::from_fn(5, 5, |_, _| 3.0);
        let sol = bsuitor_assignment(&cost);
        assert!(sol.is_valid());
        assert_eq!(sol.matched_count(), 5);
        assert_eq!(sol.total_cost, 15.0);
    }

    #[test]
    fn rectangular_assignment_is_complete() {
        let cost = CostMatrix::from_fn(3, 7, |r, c| ((r * 7 + c) % 5) as f64);
        let sol = bsuitor_assignment(&cost);
        assert!(sol.is_valid());
        assert_eq!(sol.matched_count(), 3);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn edge_rejects_self_loop() {
        Edge::new(3, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn edge_rejects_negative_weight() {
        Edge::new(0, 1, -1.0);
    }
}
