//! Dense integer specialisation of the b-Suitor assignment solver.
//!
//! Algorithm 1's G₁ instances are dense rectangular matrices of small
//! integer mismatch counts, solved tens of thousands of times per
//! mapping call. The generic [`crate::bsuitor_assignment`] pays for that
//! generality on every solve: it materialises `rows × cols` boxed
//! `Edge`s, duplicates them into adjacency lists, comparison-sorts `f64`
//! weights and churns a `BinaryHeap` per vertex. This module re-derives
//! the exact same algorithm for the dense integer case:
//!
//! - costs stay `u32`; the generic path's weight transform
//!   `w = max_cost − cost + 1e-9` is strictly monotone on integers
//!   (gaps ≥ 1 dwarf the 1e-9 offset and f64 rounding), so integer cost
//!   comparisons reproduce every weight comparison, including ties —
//!   equal costs produce bitwise-equal weights;
//! - per-vertex proposal order comes from a counting sort on
//!   `(cost asc, neighbour id asc)`, the image of the generic path's
//!   stable `(weight desc, id asc)` sort;
//! - the `b ≡ 1` suitor heap collapses to one `(cost, from)` slot.
//!
//! The result is **bit-identical** to `bsuitor_assignment` on the same
//! integer matrix (pinned by a property test in `tests/proptests.rs`),
//! with zero allocation per solve once the scratch buffers are warm.
//!
//! [`DenseBsuitor::solve_assigned`] goes one step further for callers
//! that can produce per-row/per-column value histograms as a byproduct
//! of building the cost matrix: it skips the counting passes entirely,
//! placing every proposal list straight from the supplied histograms,
//! and hands back the row → column assignment without allocating.
//!
//! A structural consequence worth naming (property-tested in
//! `tests/proptests.rs`): because every vertex ranks its edges by the
//! common total order `(cost asc, partner id asc)` — globally, `(cost,
//! row, col)` — the suitor fixed point is the unique stable matching,
//! i.e. the greedy matching over globally sorted edges. Callers with
//! sparse cost structure (the mapping layer's `G₁` solver) exploit this
//! to compute the identical assignment without proposal rounds at all.

use crate::Assignment;

const NONE: u32 = u32::MAX;

/// Reusable scratch state for [`DenseBsuitor::solve`]. Create once, feed
/// it every (block, crossbar) instance of a mapping pass.
#[derive(Debug, Default)]
pub struct DenseBsuitor {
    /// Proposal order per vertex: rows' column orders (n·m entries),
    /// then columns' row orders (m·n entries).
    order: Vec<u32>,
    /// Counting-sort histogram / prefix-sum buffer.
    hist: Vec<u32>,
    /// Current best proposal cost per vertex (valid when `suitor_from`
    /// is not `NONE`).
    suitor_cost: Vec<u32>,
    /// Proposing vertex per vertex, `NONE` when unclaimed.
    suitor_from: Vec<u32>,
    /// Next adjacency index each vertex will propose to.
    next: Vec<u32>,
    /// Whether a vertex's proposal is currently accepted somewhere.
    accepted: Vec<bool>,
    /// Work stack of vertices with proposing still to do.
    stack: Vec<u32>,
    /// Extracted row → column assignment (`NONE`-free after a solve).
    assign_row: Vec<u32>,
    /// Column-taken flags for the extraction / greedy completion.
    used: Vec<bool>,
}

impl DenseBsuitor {
    /// Fresh solver with empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimum-cost assignment of the dense `rows × cols` integer matrix
    /// `cost` (row-major), bit-identical to running
    /// [`crate::bsuitor_assignment`] on the same values as `f64`s.
    ///
    /// # Panics
    ///
    /// Panics if `rows > cols` or `cost.len() != rows * cols`.
    pub fn solve(&mut self, rows: usize, cols: usize, cost: &[u32]) -> Assignment {
        let (n, m) = (rows, cols);
        assert!(n <= m, "dense b-suitor requires rows <= cols, got {n}x{m}");
        assert_eq!(cost.len(), n * m, "cost data length mismatch");

        self.sort_neighbours(n, m, cost);
        self.run_proposals(n, m, cost);
        self.extract(n, m, cost);

        let assignment: Vec<Option<usize>> =
            self.assign_row.iter().map(|&c| Some(c as usize)).collect();
        // Integer costs sum exactly in f64, so this matches the generic
        // path's sum bitwise.
        let total_cost = assignment
            .iter()
            .enumerate()
            .map(|(r, c)| cost[r * m + c.expect("all rows assigned")] as f64)
            .sum();
        Assignment {
            assignment,
            total_cost,
        }
    }

    /// [`DenseBsuitor::solve`] for callers that already hold per-row and
    /// per-column value histograms of `cost` (e.g. maintained
    /// incrementally while building the matrix): the counting passes are
    /// skipped and every proposal list is placed directly. Returns the
    /// row → column assignment as a borrowed slice — no allocation.
    ///
    /// `row_hist[r * stride + v]` must be the number of entries of value
    /// `v` in row `r`, `col_hist[c * stride + v]` likewise per column,
    /// and every cost must be `< stride`. Both histograms are consumed
    /// (turned into placement cursors). Bit-identical to
    /// [`DenseBsuitor::solve`] on the same matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows > cols`, a buffer length mismatches, or (debug
    /// only) a cost breaches `stride`.
    pub fn solve_assigned(
        &mut self,
        rows: usize,
        cols: usize,
        cost: &[u32],
        row_hist: &mut [u32],
        col_hist: &mut [u32],
        stride: usize,
    ) -> &[u32] {
        let (n, m) = (rows, cols);
        assert!(n <= m, "dense b-suitor requires rows <= cols, got {n}x{m}");
        assert_eq!(cost.len(), n * m, "cost data length mismatch");
        assert_eq!(row_hist.len(), n * stride, "row histogram length mismatch");
        assert_eq!(col_hist.len(), m * stride, "column histogram length mismatch");

        self.order.clear();
        self.order.resize(2 * n * m, 0);
        let (row_ord, col_ord) = self.order.split_at_mut(n * m);

        // Exclusive prefix sums turn the histograms into placement
        // cursors: cursor[v] = first slot for value v.
        for hist in row_hist.chunks_exact_mut(stride) {
            let mut acc = 0u32;
            for h in hist.iter_mut() {
                let count = *h;
                *h = acc;
                acc += count;
            }
        }
        for hist in col_hist.chunks_exact_mut(stride) {
            let mut acc = 0u32;
            for h in hist.iter_mut() {
                let count = *h;
                *h = acc;
                acc += count;
            }
        }

        // One sequential sweep of the matrix places both sides. Columns
        // are visited ascending within each row and rows ascending
        // overall, so equal costs keep ascending-id order — exactly the
        // stable `(cost asc, id asc)` counting sort of `solve`.
        for r in 0..n {
            let row = &cost[r * m..(r + 1) * m];
            let out = &mut row_ord[r * m..(r + 1) * m];
            for (c, &cv) in row.iter().enumerate() {
                debug_assert!((cv as usize) < stride, "cost {cv} breaches stride {stride}");
                let slot = &mut row_hist[r * stride + cv as usize];
                out[*slot as usize] = c as u32;
                *slot += 1;
                let cslot = &mut col_hist[c * stride + cv as usize];
                col_ord[c * n + *cslot as usize] = r as u32;
                *cslot += 1;
            }
        }

        self.run_proposals(n, m, cost);
        self.extract(n, m, cost);
        &self.assign_row
    }

    /// The b ≡ 1 proposal rounds over `self.order`.
    fn run_proposals(&mut self, n: usize, m: usize, cost: &[u32]) {
        let verts = n + m;
        self.suitor_cost.clear();
        self.suitor_cost.resize(verts, 0);
        self.suitor_from.clear();
        self.suitor_from.resize(verts, NONE);
        self.next.clear();
        self.next.resize(verts, 0);
        self.accepted.clear();
        self.accepted.resize(verts, false);
        self.stack.clear();
        self.stack.extend(0..verts as u32);

        while let Some(u32u) = self.stack.pop() {
            let u = u32u as usize;
            while !self.accepted[u] {
                let nx = self.next[u] as usize;
                let (v, c_uv) = if u < n {
                    if nx >= m {
                        break;
                    }
                    let c = self.order[u * m + nx] as usize;
                    (n + c, cost[u * m + c])
                } else {
                    if nx >= n {
                        break;
                    }
                    let r = self.order[n * m + (u - n) * n + nx] as usize;
                    (r, cost[r * m + (u - n)])
                };
                self.next[u] += 1;
                if self.suitor_from[v] == u32u {
                    // Already a suitor of v; the generic path skips
                    // without proposing again.
                    continue;
                }
                let beats = self.suitor_from[v] == NONE
                    || c_uv < self.suitor_cost[v]
                    || (c_uv == self.suitor_cost[v] && u32u < self.suitor_from[v]);
                if !beats {
                    continue;
                }
                let evicted = self.suitor_from[v];
                self.suitor_cost[v] = c_uv;
                self.suitor_from[v] = u32u;
                self.accepted[u] = true;
                if evicted != NONE {
                    self.accepted[evicted as usize] = false;
                    self.stack.push(evicted);
                }
            }
        }
    }

    /// Fills `self.assign_row` from the suitor state.
    ///
    /// The generic path walks vertices ascending, emits each suitor
    /// edge once (deduplicating the unordered pair), and applies the
    /// emissions in order. In the bipartite b ≡ 1 instance the only
    /// possible duplicate is a mutual proposal: row r suitor of
    /// column c while column c is suitor of row r — first seen from
    /// the row side, so the column side skips exactly that case.
    fn extract(&mut self, n: usize, m: usize, cost: &[u32]) {
        let verts = n + m;
        self.assign_row.clear();
        self.assign_row.resize(n, NONE);
        self.used.clear();
        self.used.resize(m, false);
        for v in 0..verts {
            let from = self.suitor_from[v];
            if from == NONE {
                continue;
            }
            let (row, col) = if v < n {
                (v, from as usize - n)
            } else {
                let r = from as usize;
                if self.suitor_from[r] == v as u32 {
                    continue; // mutual pair, already emitted at `v = r`
                }
                (r, v - n)
            };
            self.assign_row[row] = col as u32;
            self.used[col] = true;
        }

        // Greedy completion for unmatched rows (rare), identical scan
        // order to the generic path: first free column of minimum cost.
        for r in 0..n {
            if self.assign_row[r] != NONE {
                continue;
            }
            let mut best: Option<(usize, u32)> = None;
            for (c, &taken) in self.used.iter().enumerate() {
                if taken {
                    continue;
                }
                let v = cost[r * m + c];
                if best.is_none_or(|(_, bv)| v < bv) {
                    best = Some((c, v));
                }
            }
            let (c, _) = best.expect("columns exhausted; rows <= cols guarantees a free column");
            self.assign_row[r] = c as u32;
            self.used[c] = true;
        }
    }

    /// Fills `self.order` with every vertex's proposal order:
    /// neighbours sorted by `(cost asc, id asc)` — the dense image of the
    /// generic path's `(weight desc, id asc)` adjacency sort.
    fn sort_neighbours(&mut self, n: usize, m: usize, cost: &[u32]) {
        self.order.clear();
        self.order.resize(2 * n * m, 0);
        let max_cost = cost.iter().copied().max().unwrap_or(0) as usize;
        let (row_ord, col_ord) = self.order.split_at_mut(n * m);
        if max_cost <= 4 * (n + m).max(64) {
            // Counting sort: histogram + exclusive prefix, then place
            // ids ascending so equal costs keep ascending-id order.
            let hist = &mut self.hist;
            hist.clear();
            hist.resize(max_cost + 1, 0);
            for r in 0..n {
                let row = &cost[r * m..(r + 1) * m];
                hist.fill(0);
                for &cv in row {
                    hist[cv as usize] += 1;
                }
                let mut acc = 0u32;
                for h in hist.iter_mut() {
                    let count = *h;
                    *h = acc;
                    acc += count;
                }
                let out = &mut row_ord[r * m..(r + 1) * m];
                for (c, &cv) in row.iter().enumerate() {
                    let slot = &mut hist[cv as usize];
                    out[*slot as usize] = c as u32;
                    *slot += 1;
                }
            }
            for c in 0..m {
                hist.fill(0);
                for r in 0..n {
                    hist[cost[r * m + c] as usize] += 1;
                }
                let mut acc = 0u32;
                for h in hist.iter_mut() {
                    let count = *h;
                    *h = acc;
                    acc += count;
                }
                let out = &mut col_ord[c * n..(c + 1) * n];
                for r in 0..n {
                    let slot = &mut hist[cost[r * m + c] as usize];
                    out[*slot as usize] = r as u32;
                    *slot += 1;
                }
            }
        } else {
            // Sparse large costs: pack (cost, id) into one u64 key and
            // let the unstable integer sort order them — keys are
            // distinct, so the result is the same (cost asc, id asc).
            let mut keys: Vec<u64> = Vec::with_capacity(n.max(m));
            for r in 0..n {
                keys.clear();
                keys.extend((0..m).map(|c| (cost[r * m + c] as u64) << 32 | c as u64));
                keys.sort_unstable();
                let out = &mut row_ord[r * m..(r + 1) * m];
                for (i, k) in keys.iter().enumerate() {
                    out[i] = *k as u32;
                }
            }
            for c in 0..m {
                keys.clear();
                keys.extend((0..n).map(|r| (cost[r * m + c] as u64) << 32 | r as u64));
                keys.sort_unstable();
                let out = &mut col_ord[c * n..(c + 1) * n];
                for (i, k) in keys.iter().enumerate() {
                    out[i] = *k as u32;
                }
            }
        }
    }
}

/// One-shot convenience wrapper around [`DenseBsuitor::solve`].
///
/// # Panics
///
/// Panics if `rows > cols` or `cost.len() != rows * cols`.
pub fn bsuitor_assignment_ints(rows: usize, cols: usize, cost: &[u32]) -> Assignment {
    DenseBsuitor::new().solve(rows, cols, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bsuitor_assignment, CostMatrix};
    use fare_rt::rand::{Rng, SeedableRng};

    fn generic_on_ints(rows: usize, cols: usize, cost: &[u32]) -> Assignment {
        let cm = CostMatrix::from_vec(
            rows,
            cols,
            cost.iter().map(|&v| v as f64).collect(),
        );
        bsuitor_assignment(&cm)
    }

    fn naive_hists(rows: usize, cols: usize, cost: &[u32], stride: usize) -> (Vec<u32>, Vec<u32>) {
        let mut row_hist = vec![0u32; rows * stride];
        let mut col_hist = vec![0u32; cols * stride];
        for r in 0..rows {
            for c in 0..cols {
                let v = cost[r * cols + c] as usize;
                row_hist[r * stride + v] += 1;
                col_hist[c * stride + v] += 1;
            }
        }
        (row_hist, col_hist)
    }

    #[test]
    fn matches_generic_on_random_integer_matrices() {
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(17);
        let mut solver = DenseBsuitor::new();
        for trial in 0..60 {
            let n = rng.gen_range(1..=12);
            let m = rng.gen_range(n..=14);
            let maxc = [1u32, 2, 5, 40][trial % 4];
            let cost: Vec<u32> = (0..n * m).map(|_| rng.gen_range(0..=maxc)).collect();
            let fast = solver.solve(n, m, &cost);
            let slow = generic_on_ints(n, m, &cost);
            assert_eq!(fast.assignment, slow.assignment, "trial {trial} ({n}x{m})");
            assert_eq!(
                fast.total_cost.to_bits(),
                slow.total_cost.to_bits(),
                "trial {trial} cost"
            );
        }
    }

    #[test]
    fn solve_assigned_matches_solve() {
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(41);
        let mut solver = DenseBsuitor::new();
        let mut hist_solver = DenseBsuitor::new();
        for trial in 0..80 {
            let n = rng.gen_range(1..=12);
            let m = rng.gen_range(n..=14);
            let maxc = [1u32, 3, 9, 31][trial % 4];
            let stride = maxc as usize + 1;
            let cost: Vec<u32> = (0..n * m).map(|_| rng.gen_range(0..=maxc)).collect();
            let full = solver.solve(n, m, &cost);
            let (mut rh, mut ch) = naive_hists(n, m, &cost, stride);
            let assigned = hist_solver.solve_assigned(n, m, &cost, &mut rh, &mut ch, stride);
            let want: Vec<u32> = full
                .assignment
                .iter()
                .map(|c| c.expect("complete") as u32)
                .collect();
            assert_eq!(assigned, &want[..], "trial {trial} ({n}x{m})");
        }
    }

    #[test]
    fn matches_generic_on_large_costs_fallback_sort() {
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let n = rng.gen_range(2..=8);
            let m = rng.gen_range(n..=10);
            let cost: Vec<u32> = (0..n * m).map(|_| rng.gen_range(0..1_000_000)).collect();
            let fast = bsuitor_assignment_ints(n, m, &cost);
            let slow = generic_on_ints(n, m, &cost);
            assert_eq!(fast.assignment, slow.assignment, "trial {trial}");
        }
    }

    #[test]
    fn uniform_costs_complete_assignment() {
        let sol = bsuitor_assignment_ints(5, 5, &[3; 25]);
        assert!(sol.is_valid());
        assert_eq!(sol.matched_count(), 5);
        assert_eq!(sol.total_cost, 15.0);
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean() {
        let mut solver = DenseBsuitor::new();
        let a = solver.solve(3, 7, &(0..21).map(|i| (i * 13 % 6) as u32).collect::<Vec<_>>());
        let big: Vec<u32> = (0..64).map(|i| (i * 29 % 9) as u32).collect();
        let b = solver.solve(8, 8, &big);
        let b2 = bsuitor_assignment_ints(8, 8, &big);
        assert!(a.is_valid());
        assert_eq!(b.assignment, b2.assignment);
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn rejects_tall_matrix() {
        bsuitor_assignment_ints(3, 2, &[0; 6]);
    }
}
