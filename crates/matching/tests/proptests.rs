//! Property-based tests for the matching crate.

use fare_matching::{bsuitor_assignment, greedy, hungarian, CostMatrix, Matcher};
use fare_rt::prop::prelude::*;

fn cost_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = CostMatrix> {
    (1..=max_rows, 1..=max_cols)
        .prop_filter("rows <= cols", |(r, c)| r <= c)
        .prop_flat_map(|(r, c)| {
            fare_rt::prop::collection::vec(0.0f64..100.0, r * c)
                .prop_map(move |data| CostMatrix::from_vec(r, c, data))
        })
}

proptest! {
    #[test]
    fn hungarian_produces_valid_full_assignment(cost in cost_matrix(7, 9)) {
        let sol = hungarian(&cost);
        prop_assert!(sol.is_valid());
        prop_assert_eq!(sol.matched_count(), cost.rows());
        // Total cost matches the sum of the chosen entries.
        let recomputed: f64 = sol
            .assignment
            .iter()
            .enumerate()
            .map(|(r, c)| cost.get(r, c.unwrap()))
            .sum();
        prop_assert!((recomputed - sol.total_cost).abs() < 1e-9);
    }

    #[test]
    fn hungarian_no_worse_than_any_heuristic(cost in cost_matrix(6, 8)) {
        let exact = hungarian(&cost).total_cost;
        prop_assert!(greedy(&cost).total_cost >= exact - 1e-9);
        prop_assert!(bsuitor_assignment(&cost).total_cost >= exact - 1e-9);
        prop_assert!(fare_matching::auction(&cost).total_cost >= exact - 1e-9);
    }

    #[test]
    fn auction_exact_on_integer_costs(
        dims in (1usize..6, 1usize..8).prop_filter("r<=c", |(r, c)| r <= c),
        seed in 0u64..500,
    ) {
        use fare_rt::rand::{Rng, SeedableRng};
        let (r, c) = dims;
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed);
        let cost = CostMatrix::from_fn(r, c, |_, _| rng.gen_range(0..20) as f64);
        let a = fare_matching::auction(&cost);
        let h = hungarian(&cost);
        prop_assert!(a.is_valid());
        prop_assert_eq!(a.total_cost, h.total_cost);
    }

    #[test]
    fn hungarian_invariant_under_row_potential_shift(cost in cost_matrix(5, 5)) {
        // Adding a constant to one row changes total cost by that constant
        // but not the optimal assignment structure's validity.
        let shifted = CostMatrix::from_fn(cost.rows(), cost.cols(), |r, c| {
            cost.get(r, c) + if r == 0 { 17.0 } else { 0.0 }
        });
        let a = hungarian(&cost);
        let b = hungarian(&shifted);
        prop_assert!((b.total_cost - a.total_cost - 17.0).abs() < 1e-6);
    }

    #[test]
    fn bsuitor_within_half_of_optimal_weight(cost in cost_matrix(6, 6)) {
        let n = cost.rows() as f64;
        let max_cost = cost.max_cost();
        let exact_w = n * max_cost - hungarian(&cost).total_cost;
        let approx_w = n * max_cost - bsuitor_assignment(&cost).total_cost;
        prop_assert!(approx_w >= 0.5 * exact_w - 1e-6);
    }

    #[test]
    fn dense_bsuitor_bit_identical_to_generic(
        dims in (1usize..10, 1usize..14).prop_filter("r<=c", |(r, c)| r <= c),
        seed in 0u64..500,
        max_cost in 0u32..50,
    ) {
        use fare_rt::rand::{Rng, SeedableRng};
        let (r, c) = dims;
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed);
        let ints: Vec<u32> = (0..r * c).map(|_| rng.gen_range(0..=max_cost)).collect();
        let cost = CostMatrix::from_vec(r, c, ints.iter().map(|&v| v as f64).collect());
        let fast = fare_matching::bsuitor_assignment_ints(r, c, &ints);
        let slow = bsuitor_assignment(&cost);
        prop_assert_eq!(&fast.assignment, &slow.assignment);
        prop_assert_eq!(fast.total_cost.to_bits(), slow.total_cost.to_bits());

        // The histogram-driven entry must agree with both on the same
        // matrix when fed naively-counted histograms.
        let stride = max_cost as usize + 1;
        let mut row_hist = vec![0u32; r * stride];
        let mut col_hist = vec![0u32; c * stride];
        for (i, &v) in ints.iter().enumerate() {
            row_hist[(i / c) * stride + v as usize] += 1;
            col_hist[(i % c) * stride + v as usize] += 1;
        }
        let mut solver = fare_matching::DenseBsuitor::new();
        let assigned = solver.solve_assigned(r, c, &ints, &mut row_hist, &mut col_hist, stride);
        let want: Vec<u32> = fast
            .assignment
            .iter()
            .map(|col| col.expect("complete") as u32)
            .collect();
        prop_assert_eq!(assigned, &want[..]);
    }

    // The structural theorem the mapping layer's level-greedy G₁ solver
    // rests on: every vertex ranks its edges by the common total order
    // (cost asc, row id asc, col id asc), so the b-Suitor fixed point is
    // the unique stable matching — the greedy matching over globally
    // sorted edges.
    #[test]
    fn bsuitor_equals_greedy_by_edge_order(
        dims in (1usize..10, 1usize..14).prop_filter("r<=c", |(r, c)| r <= c),
        seed in 0u64..500,
        max_cost in 0u32..12,
    ) {
        use fare_rt::rand::{Rng, SeedableRng};
        let (r, c) = dims;
        let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(seed ^ 0x6EED);
        let ints: Vec<u32> = (0..r * c).map(|_| rng.gen_range(0..=max_cost)).collect();

        let mut edges: Vec<(u32, u32, u32)> = (0..r * c)
            .map(|i| (ints[i], (i / c) as u32, (i % c) as u32))
            .collect();
        edges.sort_unstable();
        let mut greedy = vec![u32::MAX; r];
        let mut used = vec![false; c];
        let mut matched = 0;
        for (_, er, ec) in edges {
            if matched == r {
                break;
            }
            if greedy[er as usize] == u32::MAX && !used[ec as usize] {
                greedy[er as usize] = ec;
                used[ec as usize] = true;
                matched += 1;
            }
        }

        let suitor = fare_matching::bsuitor_assignment_ints(r, c, &ints);
        let suitor_cols: Vec<u32> = suitor
            .assignment
            .iter()
            .map(|col| col.expect("complete") as u32)
            .collect();
        prop_assert_eq!(greedy, suitor_cols);
    }

    #[test]
    fn all_matchers_agree_on_validity(cost in cost_matrix(5, 7)) {
        for m in [
            Matcher::Hungarian,
            Matcher::BSuitor,
            Matcher::Auction,
            Matcher::Greedy,
        ] {
            let sol = m.solve(&cost);
            prop_assert!(sol.is_valid());
            prop_assert_eq!(sol.matched_count(), cost.rows());
        }
    }
}
