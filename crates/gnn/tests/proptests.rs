//! Property-based tests for the GNN crate: gradient correctness as a
//! property over random graphs/weights, and training invariants.

use fare_gnn::{Adam, Gnn, GnnDims, IdealReader, Sgd};
use fare_graph::datasets::ModelKind;
use fare_graph::GraphView;
use fare_tensor::{init, ops, Matrix};
use fare_rt::prop::prelude::*;
use fare_rt::rand::rngs::StdRng;
use fare_rt::rand::{Rng, SeedableRng};

fn random_case(seed: u64, n: usize) -> (GraphView, Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.4) {
                adj[(i, j)] = 1.0;
                adj[(j, i)] = 1.0;
            }
        }
    }
    let x = init::normal(n, 4, 1.0, &mut rng);
    let labels = (0..n).map(|i| i % 3).collect();
    (GraphView::from_dense(adj), x, labels)
}

fn dims() -> GnnDims {
    GnnDims {
        input: 4,
        hidden: 5,
        output: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn weight_gradients_match_finite_difference_all_kinds(
        seed in 0u64..500,
        kind_idx in 0usize..3,
    ) {
        let kind = [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat][kind_idx];
        let (adj, x, labels) = random_case(seed, 5);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let mut model = Gnn::new(kind, dims(), &mut rng);

        let (logits, cache) = model.forward(&adj, &x, &IdealReader);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&logits, &labels);
        let grads = model.backward(&adj, &cache, &grad_logits);

        // Spot-check a few entries of every parameter against central
        // differences.
        let shapes = model.param_shapes();
        for ps in shapes {
            let (rows, cols) = (ps.rows, ps.cols);
            let checks = [(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)];
            for &(r, c) in &checks {
                let eps = 1e-3f32;
                let orig = model.param(ps.layer, ps.param)[(r, c)];
                model.param_mut(ps.layer, ps.param)[(r, c)] = orig + eps;
                let (lp, _) = {
                    let (o, _) = model.forward(&adj, &x, &IdealReader);
                    ops::cross_entropy_with_grad(&o, &labels)
                };
                model.param_mut(ps.layer, ps.param)[(r, c)] = orig - eps;
                let (lm, _) = {
                    let (o, _) = model.forward(&adj, &x, &IdealReader);
                    ops::cross_entropy_with_grad(&o, &labels)
                };
                model.param_mut(ps.layer, ps.param)[(r, c)] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let analytic = grads.get(ps.layer, ps.param)[(r, c)];
                prop_assert!(
                    (fd - analytic).abs() < 7e-3,
                    "{kind:?} param ({},{}) entry ({r},{c}): fd {fd} vs {analytic}",
                    ps.layer,
                    ps.param
                );
            }
        }
    }

    #[test]
    fn forward_is_deterministic(seed in 0u64..500) {
        let (adj, x, _) = random_case(seed, 6);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Gnn::new(ModelKind::Gcn, dims(), &mut rng);
        let (a, _) = model.forward(&adj, &x, &IdealReader);
        let (b, _) = model.forward(&adj, &x, &IdealReader);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn logits_are_finite_even_with_extreme_features(
        seed in 0u64..500,
        scale in 1.0f32..1e4,
    ) {
        let (adj, x, _) = random_case(seed, 6);
        let x = x.scaled(scale);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Gnn::new(ModelKind::Gat, dims(), &mut rng);
        let (logits, _) = model.forward(&adj, &x, &IdealReader);
        prop_assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn one_adam_step_reduces_loss(seed in 0u64..500) {
        let (adj, x, labels) = random_case(seed, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let mut model = Gnn::new(ModelKind::Gcn, dims(), &mut rng);
        let mut opt = Adam::new(0.005, &model);
        let (logits, cache) = model.forward(&adj, &x, &IdealReader);
        let (before, grad) = ops::cross_entropy_with_grad(&logits, &labels);
        let grads = model.backward(&adj, &cache, &grad);
        // Skip degenerate zero-gradient cases.
        prop_assume!(grads.total_norm() > 1e-6);
        model.apply_gradients(&grads, &mut opt);
        let (logits, _) = model.forward(&adj, &x, &IdealReader);
        let (after, _) = ops::cross_entropy_with_grad(&logits, &labels);
        // A small first Adam step along the gradient must not increase
        // the loss materially.
        prop_assert!(after < before + 1e-3, "{before} -> {after}");
    }

    #[test]
    fn clipping_is_idempotent(seed in 0u64..500, limit in 0.01f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Gnn::new(ModelKind::Sage, dims(), &mut rng);
        model.clip_weights(limit);
        let snapshot = model.clone();
        model.clip_weights(limit);
        prop_assert_eq!(model, snapshot);
    }

    #[test]
    fn sgd_and_adam_both_descend_quadratic(
        seed in 0u64..200,
        target in -3.0f32..3.0,
    ) {
        use fare_gnn::Optimizer as _;
        let _ = seed;
        let mut w_sgd = Matrix::filled(2, 2, 10.0);
        let mut w_adam = Matrix::filled(2, 2, 10.0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Gnn::new(ModelKind::Gcn, dims(), &mut rng);
        let mut sgd = Sgd::new(0.05, 0.0);
        let mut adam = Adam::new(0.2, &model);
        for _ in 0..200 {
            let g_s = w_sgd.map(|v| 2.0 * (v - target));
            sgd.step(0, &mut w_sgd, &g_s);
            let g_a = w_adam.map(|v| 2.0 * (v - target));
            adam.step(0, &mut w_adam, &g_a);
        }
        prop_assert!(w_sgd.iter().all(|v| (v - target).abs() < 0.2));
        prop_assert!(w_adam.iter().all(|v| (v - target).abs() < 0.2));
    }
}
