//! Link prediction on top of GNN embeddings.
//!
//! The paper motivates GNN training at the edge with node
//! classification, **link prediction** and graph clustering; its
//! Ogbl-citation2 workload is a link-prediction benchmark. This module
//! provides the standard dot-product decoder: the GNN's output rows are
//! node embeddings, an edge `(u, v)` is scored as `e_u · e_v`, scores
//! are trained with binary cross-entropy against positive (real) and
//! negative (sampled) pairs, and quality is measured by AUC.

use fare_tensor::Matrix;

/// Dot-product scores of node pairs under the embedding matrix.
///
/// # Panics
///
/// Panics if any node id is out of range.
///
/// # Example
///
/// ```
/// use fare_gnn::link::pair_scores;
/// use fare_tensor::Matrix;
/// let emb = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
/// let s = pair_scores(&emb, &[(0, 1), (0, 2)]);
/// assert_eq!(s, vec![1.0, 0.0]);
/// ```
pub fn pair_scores(embeddings: &Matrix, pairs: &[(usize, usize)]) -> Vec<f32> {
    pairs
        .iter()
        .map(|&(u, v)| {
            assert!(
                u < embeddings.rows() && v < embeddings.rows(),
                "pair ({u},{v}) out of range for {} embeddings",
                embeddings.rows()
            );
            embeddings
                .row(u)
                .iter()
                .zip(embeddings.row(v))
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect()
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Binary cross-entropy loss over positive and negative pairs, plus the
/// gradient w.r.t. the embedding matrix.
///
/// Positive pairs are pushed toward score +∞, negatives toward −∞; the
/// returned gradient plugs straight into [`crate::Gnn::backward`] as the
/// logits gradient (embeddings are the model output).
///
/// Returns `(loss, grad)`; both pair sets contribute with equal total
/// weight regardless of their sizes.
///
/// # Panics
///
/// Panics if both pair sets are empty or any node id is out of range.
pub fn bce_loss_and_grad(
    embeddings: &Matrix,
    positive: &[(usize, usize)],
    negative: &[(usize, usize)],
) -> (f64, Matrix) {
    assert!(
        !positive.is_empty() || !negative.is_empty(),
        "need at least one pair"
    );
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(embeddings.rows(), embeddings.cols());
    let mut accumulate = |pairs: &[(usize, usize)], target: f32| {
        if pairs.is_empty() {
            return;
        }
        let scale = 1.0 / pairs.len() as f32;
        let scores = pair_scores(embeddings, pairs);
        for (&(u, v), &s) in pairs.iter().zip(&scores) {
            let p = sigmoid(s);
            // BCE: -[t ln p + (1-t) ln (1-p)], numerically via logits.
            let l = if target > 0.5 {
                -(p.max(1e-12)).ln()
            } else {
                -((1.0 - p).max(1e-12)).ln()
            };
            loss += (scale * l) as f64;
            // dL/ds = p - t, then ds/de_u = e_v, ds/de_v = e_u.
            let ds = scale * (p - target);
            for c in 0..embeddings.cols() {
                grad[(u, c)] += ds * embeddings[(v, c)];
                grad[(v, c)] += ds * embeddings[(u, c)];
            }
        }
    };
    accumulate(positive, 1.0);
    accumulate(negative, 0.0);
    (loss, grad)
}

/// Area under the ROC curve given scores of positive and negative pairs.
///
/// Computed exactly as the fraction of (positive, negative) score pairs
/// ranked correctly (ties count ½). Returns 0.5 when either set is
/// empty.
///
/// # Example
///
/// ```
/// use fare_gnn::link::auc;
/// assert_eq!(auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
/// assert_eq!(auc(&[0.0], &[1.0]), 0.0);
/// assert_eq!(auc(&[1.0], &[1.0]), 0.5);
/// ```
pub fn auc(positive_scores: &[f32], negative_scores: &[f32]) -> f64 {
    if positive_scores.is_empty() || negative_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in positive_scores {
        for &n in negative_scores {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positive_scores.len() * negative_scores.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.9, 0.1],
            &[0.0, 1.0],
            &[-0.1, 0.9],
        ])
    }

    #[test]
    fn scores_reflect_similarity() {
        let emb = embeddings();
        let s = pair_scores(&emb, &[(0, 1), (0, 2), (2, 3)]);
        assert!(s[0] > s[1], "similar pair should outscore dissimilar");
        assert!(s[2] > s[1]);
    }

    #[test]
    fn loss_lower_for_correct_structure() {
        let emb = embeddings();
        // Correct: similar nodes linked.
        let (good, _) = bce_loss_and_grad(&emb, &[(0, 1), (2, 3)], &[(0, 2), (1, 3)]);
        // Inverted: dissimilar nodes linked.
        let (bad, _) = bce_loss_and_grad(&emb, &[(0, 2), (1, 3)], &[(0, 1), (2, 3)]);
        assert!(good < bad, "good {good} vs bad {bad}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let emb = Matrix::from_rows(&[&[0.3, -0.2], &[0.1, 0.4], &[-0.5, 0.2]]);
        let pos = [(0usize, 1usize)];
        let neg = [(0usize, 2usize), (1usize, 2usize)];
        let (_, grad) = bce_loss_and_grad(&emb, &pos, &neg);
        let eps = 1e-3f32;
        for r in 0..3 {
            for c in 0..2 {
                let mut plus = emb.clone();
                plus[(r, c)] += eps;
                let mut minus = emb.clone();
                minus[(r, c)] -= eps;
                let (lp, _) = bce_loss_and_grad(&plus, &pos, &neg);
                let (lm, _) = bce_loss_and_grad(&minus, &pos, &neg);
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - grad[(r, c)]).abs() < 1e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn gradient_descent_improves_auc() {
        let mut emb = Matrix::from_rows(&[
            &[0.1, 0.2],
            &[0.2, 0.1],
            &[-0.1, 0.1],
            &[0.1, -0.2],
        ]);
        let pos = [(0usize, 1usize), (2usize, 3usize)];
        let neg = [(0usize, 2usize), (1usize, 3usize)];
        let auc_of = |e: &Matrix| {
            auc(&pair_scores(e, &pos), &pair_scores(e, &neg))
        };
        let before = auc_of(&emb);
        for _ in 0..200 {
            let (_, grad) = bce_loss_and_grad(&emb, &pos, &neg);
            emb -= &grad.scaled(0.5);
        }
        let after = auc_of(&emb);
        assert!(after >= before);
        assert!(after > 0.9, "AUC after training: {after}");
    }

    #[test]
    fn auc_extremes_and_ties() {
        assert_eq!(auc(&[5.0], &[1.0]), 1.0);
        assert_eq!(auc(&[1.0], &[5.0]), 0.0);
        assert_eq!(auc(&[], &[1.0]), 0.5);
        assert_eq!(auc(&[1.0, 1.0], &[1.0]), 0.5);
    }

    #[test]
    fn auc_partial_ordering() {
        let a = auc(&[3.0, 2.0], &[1.0, 2.5]);
        // pairs: (3,1)+ (3,2.5)+ (2,1)+ (2,2.5)- -> 3/4
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scores_reject_bad_ids() {
        pair_scores(&embeddings(), &[(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn loss_rejects_empty() {
        bce_loss_and_grad(&embeddings(), &[], &[]);
    }
}
