use std::collections::HashMap;

use fare_tensor::Matrix;

use crate::Gnn;

/// First-order optimizer interface.
///
/// `key` is a stable global parameter index (assigned by
/// [`Gnn::apply_gradients`]) so the optimizer can keep per-parameter
/// state.
pub trait Optimizer {
    /// Updates `param` in place given its gradient.
    fn step(&mut self, key: usize, param: &mut Matrix, grad: &Matrix);
}

/// Adam optimizer (Kingma & Ba) with bias correction.
///
/// # Example
///
/// ```
/// use fare_gnn::{Adam, Gnn, GnnDims};
/// use fare_graph::datasets::ModelKind;
/// use fare_rt::rand::SeedableRng;
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(0);
/// let model = Gnn::new(ModelKind::Gcn, GnnDims { input: 2, hidden: 4, output: 2 }, &mut rng);
/// let opt = Adam::new(0.01, &model);
/// assert_eq!(opt.learning_rate(), 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Per-key (first moment, second moment, timestep).
    state: HashMap<usize, (Matrix, Matrix, u32)>,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's learning rate
    /// convention (`lr = 0.01` in Table II) and default betas
    /// (0.9, 0.999).
    ///
    /// The model argument fixes the intent that one optimizer serves one
    /// model; state is still allocated lazily per parameter.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32, _model: &Gnn) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            state: HashMap::new(),
        }
    }

    /// Enables decoupled weight decay (AdamW): each step additionally
    /// shrinks the parameter by `lr × decay × param`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is negative.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        assert!(decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = decay;
        self
    }

    /// The configured decoupled weight decay.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Adam {
    fn step(&mut self, key: usize, param: &mut Matrix, grad: &Matrix) {
        let (m, v, t) = self.state.entry(key).or_insert_with(|| {
            (
                Matrix::zeros(grad.rows(), grad.cols()),
                Matrix::zeros(grad.rows(), grad.cols()),
                0,
            )
        });
        assert_eq!(m.shape(), grad.shape(), "optimizer state shape drift");
        *t += 1;
        let t_f = *t as f32;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bias1 = 1.0 - b1.powf(t_f);
        let bias2 = 1.0 - b2.powf(t_f);
        for i in 0..grad.len() {
            let g = grad.as_slice()[i];
            let mi = &mut m.as_mut_slice()[i];
            *mi = b1 * *mi + (1.0 - b1) * g;
            let vi = &mut v.as_mut_slice()[i];
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            let p = &mut param.as_mut_slice()[i];
            // Decoupled decay (AdamW): applied to the parameter directly,
            // not mixed into the adaptive moments.
            *p -= lr * (m_hat / (v_hat.sqrt() + eps) + self.weight_decay * *p);
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, key: usize, param: &mut Matrix, grad: &Matrix) {
        if self.momentum == 0.0 {
            for i in 0..grad.len() {
                param.as_mut_slice()[i] -= self.lr * grad.as_slice()[i];
            }
            return;
        }
        let vel = self
            .velocity
            .entry(key)
            .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
        for i in 0..grad.len() {
            let v = &mut vel.as_mut_slice()[i];
            *v = self.momentum * *v + grad.as_slice()[i];
            param.as_mut_slice()[i] -= self.lr * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::GnnDims;
    use fare_graph::datasets::ModelKind;

    fn dummy_model() -> Gnn {
        let mut rng = StdRng::seed_from_u64(0);
        Gnn::new(
            ModelKind::Gcn,
            GnnDims {
                input: 2,
                hidden: 2,
                output: 2,
            },
            &mut rng,
        )
    }

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise f(w) = ||w - 3||² elementwise; gradient 2(w-3).
        let mut opt = Adam::new(0.1, &dummy_model());
        let mut w = Matrix::zeros(2, 2);
        for _ in 0..300 {
            let grad = w.map(|v| 2.0 * (v - 3.0));
            opt.step(0, &mut w, &grad);
        }
        assert!(w.iter().all(|&v| (v - 3.0).abs() < 0.05), "{w}");
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut opt = Sgd::new(0.05, 0.0);
        let mut w = Matrix::filled(1, 2, 10.0);
        for _ in 0..200 {
            let grad = w.map(|v| 2.0 * v);
            opt.step(0, &mut w, &grad);
        }
        assert!(w.iter().all(|&v| v.abs() < 0.1));
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut opt = Sgd::new(0.01, momentum);
            let mut w = Matrix::filled(1, 1, 10.0);
            for _ in 0..50 {
                let grad = w.map(|v| 2.0 * v);
                opt.step(0, &mut w, &grad);
            }
            w[(0, 0)].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_state_is_per_key() {
        let mut opt = Adam::new(0.1, &dummy_model());
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(2, 2);
        let ga = Matrix::filled(1, 1, 1.0);
        let gb = Matrix::filled(2, 2, 1.0);
        opt.step(0, &mut a, &ga);
        opt.step(1, &mut b, &gb); // different shape under a different key: fine
        assert!(a[(0, 0)] < 0.0);
        assert!(b[(0, 0)] < 0.0);
    }

    #[test]
    fn first_adam_step_magnitude_is_lr() {
        // With bias correction, the first step is ≈ lr regardless of
        // gradient scale.
        let mut opt = Adam::new(0.01, &dummy_model());
        let mut w = Matrix::zeros(1, 1);
        let grad = Matrix::filled(1, 1, 123.0);
        opt.step(0, &mut w, &grad);
        assert!((w[(0, 0)] + 0.01).abs() < 1e-4, "{}", w[(0, 0)]);
    }

    #[test]
    fn weight_decay_shrinks_stationary_params() {
        // With zero gradient, decay alone pulls weights toward zero.
        let mut opt = Adam::new(0.1, &dummy_model()).with_weight_decay(0.1);
        let mut w = Matrix::filled(1, 1, 1.0);
        let zero_grad = Matrix::zeros(1, 1);
        for _ in 0..50 {
            opt.step(0, &mut w, &zero_grad);
        }
        assert!(w[(0, 0)] < 0.7, "decay had no effect: {}", w[(0, 0)]);
        assert!(w[(0, 0)] > 0.0, "decay overshot: {}", w[(0, 0)]);
    }

    #[test]
    fn zero_decay_matches_plain_adam() {
        let mut a = Adam::new(0.05, &dummy_model());
        let mut b = Adam::new(0.05, &dummy_model()).with_weight_decay(0.0);
        let mut wa = Matrix::filled(1, 2, 3.0);
        let mut wb = wa.clone();
        for _ in 0..20 {
            let g = wa.map(|v| v - 1.0);
            opt_step(&mut a, &mut wa, &g);
            let g = wb.map(|v| v - 1.0);
            opt_step(&mut b, &mut wb, &g);
        }
        assert_eq!(wa, wb);
    }

    fn opt_step(opt: &mut Adam, w: &mut Matrix, g: &Matrix) {
        opt.step(0, w, g);
    }

    #[test]
    #[should_panic(expected = "weight decay must be non-negative")]
    fn rejects_negative_decay() {
        let _ = Adam::new(0.1, &dummy_model()).with_weight_decay(-0.1);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn adam_rejects_zero_lr() {
        Adam::new(0.0, &dummy_model());
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0,1)")]
    fn sgd_rejects_bad_momentum() {
        Sgd::new(0.1, 1.0);
    }
}
