use fare_graph::GraphView;
use fare_tensor::{init, ops, Matrix};
use fare_rt::rand::Rng;

use crate::WeightReader;

/// Negative-side slope of the attention LeakyReLU (GAT paper value).
const ATTENTION_SLOPE: f32 = 0.2;

/// One single-head graph-attention layer.
///
/// For each edge `(i, j)` (plus self loops) the attention logit is
/// `LeakyReLU(a_srcᵀ·z_i + a_dstᵀ·z_j)` with `z = H·W`; logits are
/// softmax-normalised over each node's neighbourhood and used to mix the
/// transformed features. Hidden layers apply ELU; the output layer emits
/// raw logits.
#[derive(Debug, Clone, PartialEq)]
pub struct GatLayer {
    weight: Matrix,
    attn_src: Matrix,
    attn_dst: Matrix,
}

fare_rt::json_struct!(GatLayer { weight, attn_src, attn_dst });

/// Forward-pass cache for [`GatLayer::backward`].
#[derive(Debug, Clone)]
pub struct GatCache {
    input: Matrix,
    /// Z = H·W.
    transformed: Matrix,
    /// s_i + t_j logit matrix (pre-LeakyReLU), dense.
    logit_sum: Matrix,
    /// Neighbourhood mask (adjacency + self loops), 0/1.
    mask: Matrix,
    /// Softmaxed attention S.
    attention: Matrix,
    /// Pre-activation P = S·Z.
    pre_activation: Matrix,
    weight_read: Matrix,
    attn_src_read: Matrix,
    attn_dst_read: Matrix,
    output_layer: bool,
}

impl GatLayer {
    /// Creates a layer with Xavier-initialised weights and attention
    /// vectors.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: init::xavier_uniform(in_dim, out_dim, rng),
            attn_src: init::xavier_uniform(out_dim, 1, rng),
            attn_dst: init::xavier_uniform(out_dim, 1, rng),
        }
    }

    /// Shapes of this layer's parameters: `[W, a_src, a_dst]`.
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        vec![
            self.weight.shape(),
            self.attn_src.shape(),
            self.attn_dst.shape(),
        ]
    }

    /// Borrows parameter `i` (0 = W, 1 = a_src, 2 = a_dst).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn param(&self, i: usize) -> &Matrix {
        match i {
            0 => &self.weight,
            1 => &self.attn_src,
            2 => &self.attn_dst,
            _ => panic!("GatLayer has 3 parameters, index {i} invalid"),
        }
    }

    /// Mutably borrows parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn param_mut(&mut self, i: usize) -> &mut Matrix {
        match i {
            0 => &mut self.weight,
            1 => &mut self.attn_src,
            2 => &mut self.attn_dst,
            _ => panic!("GatLayer has 3 parameters, index {i} invalid"),
        }
    }

    /// Forward pass over the batch graph view. Attention needs the full
    /// neighbourhood mask, so this is the one layer that still reads the
    /// dense adjacency ([`GraphView::dense`]).
    pub fn forward(
        &self,
        view: &GraphView,
        input: &Matrix,
        reader: &impl WeightReader,
        layer_index: usize,
        output_layer: bool,
    ) -> (Matrix, GatCache) {
        let _span = fare_obs::trace::span("gnn.attention");
        let n = view.num_nodes();
        let adj = view.dense();
        let weight_read = reader.read(layer_index, 0, &self.weight);
        let attn_src_read = reader.read(layer_index, 1, &self.attn_src);
        let attn_dst_read = reader.read(layer_index, 2, &self.attn_dst);

        let transformed = input.matmul(&weight_read); // Z
        let s = transformed.matmul(&attn_src_read); // n×1
        let t = transformed.matmul(&attn_dst_read); // n×1

        let mask = Matrix::from_fn(n, n, |i, j| {
            if i == j || adj[(i, j)] > 0.5 {
                1.0
            } else {
                0.0
            }
        });
        let logit_sum = Matrix::from_fn(n, n, |i, j| s[(i, 0)] + t[(j, 0)]);
        let logits = Matrix::from_fn(n, n, |i, j| {
            if mask[(i, j)] > 0.5 {
                let v = logit_sum[(i, j)];
                if v > 0.0 {
                    v
                } else {
                    ATTENTION_SLOPE * v
                }
            } else {
                f32::NEG_INFINITY
            }
        });
        let attention = ops::softmax_rows(&logits);
        let pre_activation = attention.matmul(&transformed);
        let out = if output_layer {
            pre_activation.clone()
        } else {
            ops::elu(&pre_activation)
        };
        (
            out,
            GatCache {
                input: input.clone(),
                transformed,
                logit_sum,
                mask,
                attention,
                pre_activation,
                weight_read,
                attn_src_read,
                attn_dst_read,
                output_layer,
            },
        )
    }

    /// Backward pass: returns `([grad_W, grad_a_src, grad_a_dst],
    /// grad_input)`.
    pub fn backward(&self, cache: &GatCache, grad_output: &Matrix) -> (Vec<Matrix>, Matrix) {
        let _span = fare_obs::trace::span("gnn.attention");
        let n = cache.attention.rows();
        let grad_p = if cache.output_layer {
            grad_output.clone()
        } else {
            grad_output.hadamard(&ops::elu_grad(&cache.pre_activation))
        };

        // P = S·Z.
        let grad_s_mat = grad_p.matmul_t(&cache.transformed); // dS, n×n
        let mut grad_z = cache.attention.t_matmul(&grad_p); // Sᵀ·dP

        // Softmax backward per row: dE_ij = S_ij (dS_ij − Σ_k dS_ik S_ik).
        let mut grad_e = Matrix::zeros(n, n);
        for i in 0..n {
            let mut dot = 0.0f32;
            for k in 0..n {
                dot += grad_s_mat[(i, k)] * cache.attention[(i, k)];
            }
            for j in 0..n {
                grad_e[(i, j)] = cache.attention[(i, j)] * (grad_s_mat[(i, j)] - dot);
            }
        }
        // LeakyReLU backward on the masked logits.
        let grad_pre = Matrix::from_fn(n, n, |i, j| {
            if cache.mask[(i, j)] > 0.5 {
                let slope = if cache.logit_sum[(i, j)] > 0.0 {
                    1.0
                } else {
                    ATTENTION_SLOPE
                };
                grad_e[(i, j)] * slope
            } else {
                0.0
            }
        });

        // ds_i = Σ_j dPre_ij ; dt_j = Σ_i dPre_ij.
        let mut grad_s_vec = Matrix::zeros(n, 1);
        let mut grad_t_vec = Matrix::zeros(n, 1);
        for i in 0..n {
            for j in 0..n {
                grad_s_vec[(i, 0)] += grad_pre[(i, j)];
                grad_t_vec[(j, 0)] += grad_pre[(i, j)];
            }
        }

        // s = Z·a_src, t = Z·a_dst.
        grad_z += &grad_s_vec.matmul_t(&cache.attn_src_read);
        grad_z += &grad_t_vec.matmul_t(&cache.attn_dst_read);
        let grad_attn_src = cache.transformed.t_matmul(&grad_s_vec);
        let grad_attn_dst = cache.transformed.t_matmul(&grad_t_vec);

        // Z = H·W.
        let grad_w = cache.input.t_matmul(&grad_z);
        let grad_input = grad_z.matmul_t(&cache.weight_read);
        (vec![grad_w, grad_attn_src, grad_attn_dst], grad_input)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops keep the FD checks readable
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::IdealReader;

    fn setup() -> (GatLayer, GraphView, Matrix) {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = GatLayer::new(3, 2, &mut rng);
        let adj = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let x = init::normal(3, 3, 1.0, &mut rng);
        (layer, GraphView::from_dense(adj), x)
    }

    #[test]
    fn forward_shapes_and_three_params() {
        let (layer, adj, x) = setup();
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, false);
        assert_eq!(out.shape(), (3, 2));
        assert_eq!(layer.param_shapes().len(), 3);
    }

    #[test]
    fn attention_rows_are_distributions_over_neighbourhood() {
        let (layer, adj, x) = setup();
        let (_, cache) = layer.forward(&adj, &x, &IdealReader, 0, false);
        for i in 0..3 {
            let sum: f32 = cache.attention.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for j in 0..3 {
                if cache.mask[(i, j)] < 0.5 {
                    assert_eq!(cache.attention[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn isolated_node_attends_to_itself() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = GatLayer::new(2, 2, &mut rng);
        let adj = GraphView::from_dense(Matrix::zeros(2, 2));
        let x = Matrix::from_rows(&[&[1.0, 0.5], &[0.2, -0.3]]);
        let (_, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        assert!((cache.attention[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((cache.attention[(1, 1)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_gradients_match_finite_difference() {
        let (mut layer, adj, x) = setup();
        let labels = [0usize, 1, 1];
        let loss_of = |l: &GatLayer| {
            let (out, _) = l.forward(&adj, &x, &IdealReader, 0, true);
            ops::cross_entropy_with_grad(&out, &labels).0
        };
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (grads, _) = layer.backward(&cache, &grad_logits);

        let eps = 1e-3f32;
        for p in 0..3 {
            let (rows, cols) = layer.param(p).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = layer.param(p)[(r, c)];
                    layer.param_mut(p)[(r, c)] = orig + eps;
                    let lp = loss_of(&layer);
                    layer.param_mut(p)[(r, c)] = orig - eps;
                    let lm = loss_of(&layer);
                    layer.param_mut(p)[(r, c)] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    assert!(
                        (fd - grads[p][(r, c)]).abs() < 5e-3,
                        "param {p} fd {fd} vs analytic {} at ({r},{c})",
                        grads[p][(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (layer, adj, x) = setup();
        let labels = [0usize, 1, 1];
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (_, grad_input) = layer.backward(&cache, &grad_logits);

        let eps = 1e-3f32;
        let mut x2 = x.clone();
        for r in 0..3 {
            for c in 0..3 {
                let orig = x2[(r, c)];
                x2[(r, c)] = orig + eps;
                let (op, _) = layer.forward(&adj, &x2, &IdealReader, 0, true);
                let lp = ops::cross_entropy_with_grad(&op, &labels).0;
                x2[(r, c)] = orig - eps;
                let (om, _) = layer.forward(&adj, &x2, &IdealReader, 0, true);
                let lm = ops::cross_entropy_with_grad(&om, &labels).0;
                x2[(r, c)] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad_input[(r, c)]).abs() < 5e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad_input[(r, c)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "3 parameters")]
    fn param_index_out_of_range() {
        let (layer, _, _) = setup();
        layer.param(3);
    }
}
