use fare_graph::GraphView;
use fare_tensor::{init, ops, Matrix};
use fare_rt::rand::Rng;

use crate::WeightReader;

/// One GraphSAGE layer with mean aggregation:
/// `act(H·W_self + D⁻¹A·H·W_neigh)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SageLayer {
    w_self: Matrix,
    w_neigh: Matrix,
}

fare_rt::json_struct!(SageLayer { w_self, w_neigh });

/// Forward-pass cache for [`SageLayer::backward`].
///
/// The propagation matrix Ā (and its transpose, which the backward
/// pass multiplies by) is not cached here — both live in the
/// [`GraphView`], built once per graph.
#[derive(Debug, Clone)]
pub struct SageCache {
    /// Layer input H.
    input: Matrix,
    /// Ā · H.
    aggregated: Matrix,
    /// Pre-activation.
    pre_activation: Matrix,
    w_self_read: Matrix,
    w_neigh_read: Matrix,
    output_layer: bool,
}

impl SageLayer {
    /// Creates a layer with Xavier-initialised weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w_self: init::xavier_uniform(in_dim, out_dim, rng),
            w_neigh: init::xavier_uniform(in_dim, out_dim, rng),
        }
    }

    /// Shapes of this layer's parameters: `[w_self, w_neigh]`.
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        vec![self.w_self.shape(), self.w_neigh.shape()]
    }

    /// Borrows parameter `i` (0 = self weights, 1 = neighbour weights).
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn param(&self, i: usize) -> &Matrix {
        match i {
            0 => &self.w_self,
            1 => &self.w_neigh,
            _ => panic!("SageLayer has 2 parameters, index {i} invalid"),
        }
    }

    /// Mutably borrows parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn param_mut(&mut self, i: usize) -> &mut Matrix {
        match i {
            0 => &mut self.w_self,
            1 => &mut self.w_neigh,
            _ => panic!("SageLayer has 2 parameters, index {i} invalid"),
        }
    }

    /// Forward pass over the batch graph view.
    pub fn forward(
        &self,
        view: &GraphView,
        input: &Matrix,
        reader: &impl WeightReader,
        layer_index: usize,
        output_layer: bool,
    ) -> (Matrix, SageCache) {
        let aggregated = {
            let _s = fare_obs::trace::span("gnn.aggregate");
            view.mean_norm().spmm(input)
        };
        let w_self_read = reader.read(layer_index, 0, &self.w_self);
        let w_neigh_read = reader.read(layer_index, 1, &self.w_neigh);
        let pre_activation = {
            let _s = fare_obs::trace::span("gnn.matmul");
            &input.matmul(&w_self_read) + &aggregated.matmul(&w_neigh_read)
        };
        let out = if output_layer {
            pre_activation.clone()
        } else {
            ops::relu(&pre_activation)
        };
        (
            out,
            SageCache {
                input: input.clone(),
                aggregated,
                pre_activation,
                w_self_read,
                w_neigh_read,
                output_layer,
            },
        )
    }

    /// Backward pass: returns `([grad_w_self, grad_w_neigh], grad_input)`.
    /// `view` must be the one the forward pass ran with.
    pub fn backward(
        &self,
        view: &GraphView,
        cache: &SageCache,
        grad_output: &Matrix,
    ) -> (Vec<Matrix>, Matrix) {
        let grad_z = if cache.output_layer {
            grad_output.clone()
        } else {
            grad_output.hadamard(&ops::relu_grad(&cache.pre_activation))
        };
        let (grad_w_self, grad_w_neigh) = {
            let _s = fare_obs::trace::span("gnn.matmul");
            (cache.input.t_matmul(&grad_z), cache.aggregated.t_matmul(&grad_z))
        };
        // dX = dZ Wsᵀ + Āᵀ (dZ Wnᵀ). Ā is not symmetric.
        let grad_input = {
            let _s = fare_obs::trace::span("gnn.aggregate");
            &grad_z.matmul_t(&cache.w_self_read)
                + &view.mean_norm_t().spmm(&grad_z.matmul_t(&cache.w_neigh_read))
        };
        (vec![grad_w_self, grad_w_neigh], grad_input)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops keep the FD checks readable
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::IdealReader;

    fn setup() -> (SageLayer, GraphView, Matrix) {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = SageLayer::new(3, 2, &mut rng);
        let adj = Matrix::from_rows(&[&[0.0, 1.0, 1.0], &[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0]]);
        let x = init::normal(3, 3, 1.0, &mut rng);
        (layer, GraphView::from_dense(adj), x)
    }

    #[test]
    fn forward_shapes_and_two_params() {
        let (layer, adj, x) = setup();
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, false);
        assert_eq!(out.shape(), (3, 2));
        assert_eq!(layer.param_shapes().len(), 2);
    }

    #[test]
    fn isolated_node_uses_self_path_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = SageLayer::new(2, 2, &mut rng);
        let adj = GraphView::from_dense(Matrix::zeros(2, 2));
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let expected = x.matmul(layer.param(0));
        assert_eq!(out, expected);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let (mut layer, adj, x) = setup();
        let labels = [1usize, 0, 1];
        let loss_of = |l: &SageLayer| {
            let (out, _) = l.forward(&adj, &x, &IdealReader, 0, true);
            ops::cross_entropy_with_grad(&out, &labels).0
        };
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (grads, _) = layer.backward(&adj, &cache, &grad_logits);

        let eps = 1e-3f32;
        for p in 0..2 {
            for r in 0..3 {
                for c in 0..2 {
                    let orig = layer.param(p)[(r, c)];
                    layer.param_mut(p)[(r, c)] = orig + eps;
                    let lp = loss_of(&layer);
                    layer.param_mut(p)[(r, c)] = orig - eps;
                    let lm = loss_of(&layer);
                    layer.param_mut(p)[(r, c)] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    assert!(
                        (fd - grads[p][(r, c)]).abs() < 2e-3,
                        "param {p} fd {fd} vs analytic {} at ({r},{c})",
                        grads[p][(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (layer, adj, x) = setup();
        let labels = [1usize, 0, 1];
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (_, grad_input) = layer.backward(&adj, &cache, &grad_logits);

        let eps = 1e-3f32;
        let mut x2 = x.clone();
        for r in 0..3 {
            for c in 0..3 {
                let orig = x2[(r, c)];
                x2[(r, c)] = orig + eps;
                let (op, _) = layer.forward(&adj, &x2, &IdealReader, 0, true);
                let lp = ops::cross_entropy_with_grad(&op, &labels).0;
                x2[(r, c)] = orig - eps;
                let (om, _) = layer.forward(&adj, &x2, &IdealReader, 0, true);
                let lm = ops::cross_entropy_with_grad(&om, &labels).0;
                x2[(r, c)] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad_input[(r, c)]).abs() < 2e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad_input[(r, c)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "2 parameters")]
    fn param_index_out_of_range() {
        let (layer, _, _) = setup();
        layer.param(2);
    }
}
