use fare_graph::GraphView;
use fare_tensor::{init, ops, Matrix};
use fare_rt::rand::Rng;

use crate::WeightReader;

/// One graph-convolution layer: `act(Â · H · W)`.
///
/// `Â` is the symmetric Kipf–Welling normalisation of the (possibly
/// fault-corrupted) binary adjacency. Hidden layers use ReLU; the output
/// layer returns raw logits.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    weight: Matrix,
}

fare_rt::json_struct!(GcnLayer { weight });

/// Forward-pass cache for [`GcnLayer::backward`].
///
/// The propagation matrix Â is *not* cached here — it lives in the
/// [`GraphView`] the caller passes to both passes, built once per
/// graph instead of once per forward.
#[derive(Debug, Clone)]
pub struct GcnCache {
    /// Â · H (aggregated input).
    aggregated: Matrix,
    /// Pre-activation Z = Â·H·W.
    pre_activation: Matrix,
    /// The weights as the hardware read them.
    weight_read: Matrix,
    output_layer: bool,
}

impl GcnLayer {
    /// Creates a layer with Xavier-initialised weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: init::xavier_uniform(in_dim, out_dim, rng),
        }
    }

    /// Shapes of this layer's parameters (single weight matrix).
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        vec![self.weight.shape()]
    }

    /// Borrows the master weights.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutably borrows the master weights.
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Forward pass. `view` carries the batch graph with its cached
    /// normalised adjacency; `reader` maps master weights to
    /// hardware-read weights.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn forward(
        &self,
        view: &GraphView,
        input: &Matrix,
        reader: &impl WeightReader,
        layer_index: usize,
        output_layer: bool,
    ) -> (Matrix, GcnCache) {
        let aggregated = {
            let _s = fare_obs::trace::span("gnn.aggregate");
            view.gcn_norm().spmm(input)
        };
        let weight_read = reader.read(layer_index, 0, &self.weight);
        let pre_activation = {
            let _s = fare_obs::trace::span("gnn.matmul");
            aggregated.matmul(&weight_read)
        };
        let out = if output_layer {
            pre_activation.clone()
        } else {
            ops::relu(&pre_activation)
        };
        (
            out,
            GcnCache {
                aggregated,
                pre_activation,
                weight_read,
                output_layer,
            },
        )
    }

    /// Backward pass: returns `(param_grads, grad_input)`. `view` must
    /// be the one the forward pass ran with.
    pub fn backward(
        &self,
        view: &GraphView,
        cache: &GcnCache,
        grad_output: &Matrix,
    ) -> (Vec<Matrix>, Matrix) {
        let grad_z = if cache.output_layer {
            grad_output.clone()
        } else {
            grad_output.hadamard(&ops::relu_grad(&cache.pre_activation))
        };
        let grad_w = {
            let _s = fare_obs::trace::span("gnn.matmul");
            cache.aggregated.t_matmul(&grad_z)
        };
        // Â is symmetric, so Âᵀ = Â.
        let grad_input = {
            let _s = fare_obs::trace::span("gnn.aggregate");
            view.gcn_norm().spmm(&grad_z.matmul_t(&cache.weight_read))
        };
        (vec![grad_w], grad_input)
    }
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::IdealReader;

    fn setup() -> (GcnLayer, GraphView, Matrix) {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GcnLayer::new(3, 2, &mut rng);
        let adj = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let x = init::normal(3, 3, 1.0, &mut rng);
        (layer, GraphView::from_dense(adj), x)
    }

    #[test]
    fn forward_shapes() {
        let (layer, adj, x) = setup();
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, false);
        assert_eq!(out.shape(), (3, 2));
    }

    #[test]
    fn hidden_layer_output_nonnegative() {
        let (layer, adj, x) = setup();
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, false);
        assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn output_layer_passes_logits() {
        let (layer, adj, x) = setup();
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        assert_eq!(out, cache.pre_activation);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let (mut layer, adj, x) = setup();
        let labels = [0usize, 1, 0];
        let loss_of = |l: &GcnLayer| {
            let (out, _) = l.forward(&adj, &x, &IdealReader, 0, true);
            ops::cross_entropy_with_grad(&out, &labels).0
        };
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (grads, _) = layer.backward(&adj, &cache, &grad_logits);

        let eps = 1e-3f32;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.weight()[(r, c)];
                layer.weight_mut()[(r, c)] = orig + eps;
                let lp = loss_of(&layer);
                layer.weight_mut()[(r, c)] = orig - eps;
                let lm = loss_of(&layer);
                layer.weight_mut()[(r, c)] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grads[0][(r, c)]).abs() < 2e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grads[0][(r, c)]
                );
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (layer, adj, x) = setup();
        let labels = [0usize, 1, 0];
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (_, grad_input) = layer.backward(&adj, &cache, &grad_logits);

        let eps = 1e-3f32;
        let mut x2 = x.clone();
        for r in 0..3 {
            for c in 0..3 {
                let orig = x2[(r, c)];
                x2[(r, c)] = orig + eps;
                let (op, _) = layer.forward(&adj, &x2, &IdealReader, 0, true);
                let lp = ops::cross_entropy_with_grad(&op, &labels).0;
                x2[(r, c)] = orig - eps;
                let (om, _) = layer.forward(&adj, &x2, &IdealReader, 0, true);
                let lm = ops::cross_entropy_with_grad(&om, &labels).0;
                x2[(r, c)] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad_input[(r, c)]).abs() < 2e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad_input[(r, c)]
                );
            }
        }
    }

    #[test]
    fn relu_masks_hidden_gradients() {
        let (layer, adj, x) = setup();
        let (_, cache) = layer.forward(&adj, &x, &IdealReader, 0, false);
        let ones = Matrix::filled(3, 2, 1.0);
        let (grads, _) = layer.backward(&adj, &cache, &ones);
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].shape(), layer.weight().shape());
    }
}
