//! Multi-head graph attention, composed from verified single-head
//! [`GatLayer`]s.
//!
//! Each head attends independently over the same neighbourhood with its
//! own `W`/`a_src`/`a_dst`; head outputs are concatenated (the standard
//! GAT hidden-layer combination). Gradients route back through each
//! head's own backward pass, so the finite-difference-checked
//! single-head math is reused unchanged.

use fare_graph::GraphView;
use fare_tensor::Matrix;
use fare_rt::rand::Rng;

use super::{GatCache, GatLayer};
use crate::WeightReader;

/// A K-head graph-attention layer (concatenating combination).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadGat {
    heads: Vec<GatLayer>,
    out_per_head: usize,
}

fare_rt::json_struct!(MultiHeadGat { heads, out_per_head });

/// Forward-pass cache for [`MultiHeadGat::backward`].
#[derive(Debug, Clone)]
pub struct MultiHeadGatCache {
    per_head: Vec<GatCache>,
}

impl MultiHeadGat {
    /// Creates a layer with `heads` attention heads whose concatenated
    /// output is `out_dim` wide.
    ///
    /// # Panics
    ///
    /// Panics if `heads == 0` or `out_dim` is not divisible by `heads`.
    pub fn new(in_dim: usize, out_dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(heads > 0, "need at least one head");
        assert_eq!(
            out_dim % heads,
            0,
            "out_dim {out_dim} not divisible by {heads} heads"
        );
        let out_per_head = out_dim / heads;
        Self {
            heads: (0..heads)
                .map(|_| GatLayer::new(in_dim, out_per_head, rng))
                .collect(),
            out_per_head,
        }
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Shapes of all parameters: `[W, a_src, a_dst]` per head, head-major.
    pub fn param_shapes(&self) -> Vec<(usize, usize)> {
        self.heads.iter().flat_map(GatLayer::param_shapes).collect()
    }

    /// Borrows parameter `i` (head `i / 3`, then W / a_src / a_dst).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3 × heads`.
    pub fn param(&self, i: usize) -> &Matrix {
        self.heads[i / 3].param(i % 3)
    }

    /// Mutably borrows parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3 × heads`.
    pub fn param_mut(&mut self, i: usize) -> &mut Matrix {
        self.heads[i / 3].param_mut(i % 3)
    }

    /// Forward pass: per-head attention, outputs concatenated columnwise.
    ///
    /// `param_base` is the index of this layer's first parameter in the
    /// enclosing model's numbering, so the [`WeightReader`] sees stable
    /// `(layer, param)` keys per head parameter.
    pub fn forward(
        &self,
        view: &GraphView,
        input: &Matrix,
        reader: &impl WeightReader,
        layer_index: usize,
        param_base: usize,
        output_layer: bool,
    ) -> (Matrix, MultiHeadGatCache) {
        let n = input.rows();
        let mut out = Matrix::zeros(n, self.out_per_head * self.heads.len());
        let mut per_head = Vec::with_capacity(self.heads.len());
        for (h, head) in self.heads.iter().enumerate() {
            // Shift the reader's param index so each head's three
            // parameters are distinct.
            let shifted = ShiftedReader {
                inner: reader,
                offset: param_base + 3 * h,
            };
            let (head_out, cache) = head.forward(view, input, &shifted, layer_index, output_layer);
            for r in 0..n {
                let dst = out.row_mut(r);
                dst[h * self.out_per_head..(h + 1) * self.out_per_head]
                    .copy_from_slice(head_out.row(r));
            }
            per_head.push(cache);
        }
        (out, MultiHeadGatCache { per_head })
    }

    /// Backward pass: splits the output gradient per head and reuses the
    /// single-head backward. Returns per-parameter gradients (head-major)
    /// and the input gradient (summed over heads).
    pub fn backward(
        &self,
        cache: &MultiHeadGatCache,
        grad_output: &Matrix,
    ) -> (Vec<Matrix>, Matrix) {
        assert_eq!(cache.per_head.len(), self.heads.len(), "stale cache");
        let n = grad_output.rows();
        let mut grads = Vec::with_capacity(3 * self.heads.len());
        let mut grad_input: Option<Matrix> = None;
        for (h, (head, head_cache)) in self.heads.iter().zip(&cache.per_head).enumerate() {
            let slice = Matrix::from_fn(n, self.out_per_head, |r, c| {
                grad_output[(r, h * self.out_per_head + c)]
            });
            let (head_grads, head_grad_in) = head.backward(head_cache, &slice);
            grads.extend(head_grads);
            grad_input = Some(match grad_input.take() {
                None => head_grad_in,
                Some(acc) => &acc + &head_grad_in,
            });
        }
        (grads, grad_input.expect("at least one head"))
    }
}

/// Adapter that offsets the `param` index a wrapped reader sees.
struct ShiftedReader<'a, R: WeightReader> {
    inner: &'a R,
    offset: usize,
}

impl<R: WeightReader> WeightReader for ShiftedReader<'_, R> {
    fn read(&self, layer: usize, param: usize, value: &Matrix) -> Matrix {
        self.inner.read(layer, self.offset + param, value)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops keep the FD checks readable
mod tests {
    use fare_tensor::{init, ops};
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::IdealReader;

    fn setup(heads: usize) -> (MultiHeadGat, GraphView, Matrix) {
        let mut rng = StdRng::seed_from_u64(21);
        let layer = MultiHeadGat::new(3, 4, heads, &mut rng);
        let adj = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let x = init::normal(3, 3, 1.0, &mut rng);
        (layer, GraphView::from_dense(adj), x)
    }

    #[test]
    fn shapes_and_param_count() {
        let (layer, adj, x) = setup(2);
        assert_eq!(layer.num_heads(), 2);
        assert_eq!(layer.param_shapes().len(), 6);
        assert_eq!(layer.param_shapes()[0], (3, 2)); // W of head 0
        assert_eq!(layer.param_shapes()[1], (2, 1)); // a_src of head 0
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, 0, false);
        assert_eq!(out.shape(), (3, 4));
    }

    #[test]
    fn single_head_matches_gat_layer() {
        // heads = 1 must be numerically identical to a plain GatLayer
        // built from the same RNG stream.
        let mut rng1 = StdRng::seed_from_u64(5);
        let multi = MultiHeadGat::new(3, 4, 1, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(5);
        let single = GatLayer::new(3, 4, &mut rng2);
        let adj = GraphView::from_dense(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.5], &[-0.4, 0.1, 0.2]]);
        let (a, _) = multi.forward(&adj, &x, &IdealReader, 0, 0, true);
        let (b, _) = single.forward(&adj, &x, &IdealReader, 0, true);
        assert_eq!(a, b);
    }

    #[test]
    fn heads_are_independent() {
        // Zeroing one head's weight only zeroes its output slice.
        let (mut layer, adj, x) = setup(2);
        layer.param_mut(0).map_inplace(|_| 0.0); // head 0's W
        layer.param_mut(1).map_inplace(|_| 0.0); // head 0's a_src
        layer.param_mut(2).map_inplace(|_| 0.0); // head 0's a_dst
        let (out, _) = layer.forward(&adj, &x, &IdealReader, 0, 0, true);
        for r in 0..3 {
            assert_eq!(out[(r, 0)], 0.0);
            assert_eq!(out[(r, 1)], 0.0);
        }
        assert!(out.iter().any(|&v| v != 0.0), "head 1 should be live");
    }

    #[test]
    fn gradients_match_finite_difference() {
        let (mut layer, adj, x) = setup(2);
        let labels = [0usize, 1, 2];
        let loss_of = |l: &MultiHeadGat| {
            let (out, _) = l.forward(&adj, &x, &IdealReader, 0, 0, true);
            ops::cross_entropy_with_grad(&out, &labels).0
        };
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (grads, _) = layer.backward(&cache, &grad_logits);
        assert_eq!(grads.len(), 6);

        let eps = 1e-3f32;
        for p in 0..6 {
            let (rows, cols) = layer.param_shapes()[p];
            for r in 0..rows {
                for c in 0..cols {
                    let orig = layer.param(p)[(r, c)];
                    layer.param_mut(p)[(r, c)] = orig + eps;
                    let lp = loss_of(&layer);
                    layer.param_mut(p)[(r, c)] = orig - eps;
                    let lm = loss_of(&layer);
                    layer.param_mut(p)[(r, c)] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    assert!(
                        (fd - grads[p][(r, c)]).abs() < 5e-3,
                        "param {p} fd {fd} vs analytic {} at ({r},{c})",
                        grads[p][(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (layer, adj, x) = setup(2);
        let labels = [0usize, 1, 2];
        let (out, cache) = layer.forward(&adj, &x, &IdealReader, 0, 0, true);
        let (_, grad_logits) = ops::cross_entropy_with_grad(&out, &labels);
        let (_, grad_input) = layer.backward(&cache, &grad_logits);

        let eps = 1e-3f32;
        let mut x2 = x.clone();
        for r in 0..3 {
            for c in 0..3 {
                let orig = x2[(r, c)];
                x2[(r, c)] = orig + eps;
                let (op, _) = layer.forward(&adj, &x2, &IdealReader, 0, 0, true);
                let lp = ops::cross_entropy_with_grad(&op, &labels).0;
                x2[(r, c)] = orig - eps;
                let (om, _) = layer.forward(&adj, &x2, &IdealReader, 0, 0, true);
                let lm = ops::cross_entropy_with_grad(&om, &labels).0;
                x2[(r, c)] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad_input[(r, c)]).abs() < 5e-3,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    grad_input[(r, c)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_out_dim() {
        MultiHeadGat::new(3, 5, 2, &mut StdRng::seed_from_u64(0));
    }
}
