//! GNN layer implementations with explicit forward/backward passes.
//!
//! Each layer type follows the same contract:
//!
//! - `forward(adj, input, reader, layer_index, output_layer)` consumes the
//!   **binary** batch adjacency (already fault-corrupted upstream, if at
//!   all), normalises it as the architecture prescribes, pulls its
//!   parameters through the [`crate::WeightReader`], and returns the
//!   activations plus a cache.
//! - `backward(cache, grad_output)` returns the parameter gradients and
//!   the gradient w.r.t. the layer input.
//!
//! Hidden layers apply their nonlinearity (ReLU, or ELU for GAT); the
//! output layer emits raw logits (`output_layer = true`).

mod gat;
mod gcn;
mod multihead;
mod sage;

pub use gat::{GatCache, GatLayer};
pub use gcn::{GcnCache, GcnLayer};
pub use multihead::{MultiHeadGat, MultiHeadGatCache};
pub use sage::{SageCache, SageLayer};
