use fare_tensor::Matrix;

/// Hook through which a model reads its own parameters during a forward
/// pass.
///
/// On ideal hardware this is the identity. On a simulated ReRAM
/// accelerator (`fare-core`'s faulty reader) it round-trips each
/// parameter through its crossbar fabric — quantising to 16-bit fixed
/// point and forcing every stuck cell — so the *computation* sees exactly
/// what the hardware would.
///
/// `layer` and `param` identify the parameter (see
/// [`crate::Gnn::param_shapes`]); implementations may use them to look up
/// the matching fabric.
pub trait WeightReader {
    /// Returns the parameter value as the hardware reads it.
    fn read(&self, layer: usize, param: usize, value: &Matrix) -> Matrix;
}

/// Identity reader: ideal, fault-free hardware with full-precision
/// weights.
///
/// # Example
///
/// ```
/// use fare_gnn::{IdealReader, WeightReader};
/// use fare_tensor::Matrix;
/// let w = Matrix::identity(3);
/// assert_eq!(IdealReader.read(0, 0, &w), w);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealReader;

impl WeightReader for IdealReader {
    fn read(&self, _layer: usize, _param: usize, value: &Matrix) -> Matrix {
        value.clone()
    }
}

impl<R: WeightReader + ?Sized> WeightReader for &R {
    fn read(&self, layer: usize, param: usize, value: &Matrix) -> Matrix {
        (**self).read(layer, param, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_reader_is_identity() {
        let w = Matrix::from_rows(&[&[1.5, -2.5]]);
        assert_eq!(IdealReader.read(3, 1, &w), w);
    }

    #[test]
    fn reader_usable_as_trait_object() {
        let reader: &dyn WeightReader = &IdealReader;
        let w = Matrix::zeros(2, 2);
        assert_eq!(reader.read(0, 0, &w), w);
    }
}
