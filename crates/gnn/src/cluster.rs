//! Graph clustering on GNN embeddings.
//!
//! The third edge application the paper's introduction motivates. An
//! encoder trained with the link-prediction objective places nodes of
//! the same community close together; [`kmeans`] then recovers the
//! communities and [`purity`] / [`nmi`] score them against ground truth.

use fare_tensor::Matrix;
use fare_rt::rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Per-point cluster assignment in `0..k`.
    pub assignment: Vec<usize>,
    /// Cluster centroids, `k × dim`.
    pub centroids: Matrix,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

/// Lloyd's k-means with k-means++ seeding.
///
/// Deterministic for a given `rng` state; runs until assignments are
/// stable or `max_iters` is reached.
///
/// # Panics
///
/// Panics if `k == 0` or `k > points.rows()`.
///
/// # Example
///
/// ```
/// use fare_gnn::cluster::kmeans;
/// use fare_tensor::Matrix;
/// use fare_rt::rand::SeedableRng;
/// let pts = Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.0], &[5.0, 5.0], &[5.1, 5.0]]);
/// let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(1);
/// let km = kmeans(&pts, 2, 50, &mut rng);
/// assert_eq!(km.assignment[0], km.assignment[1]);
/// assert_eq!(km.assignment[2], km.assignment[3]);
/// assert_ne!(km.assignment[0], km.assignment[2]);
/// ```
pub fn kmeans(points: &Matrix, k: usize, max_iters: usize, rng: &mut impl Rng) -> KMeans {
    let n = points.rows();
    let dim = points.cols();
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k = {k} exceeds {n} points");

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut min_d: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_d.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in min_d.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(points.row(next));
        for (i, d) in min_d.iter_mut().enumerate() {
            *d = d.min(sq_dist(points.row(i), centroids.row(c)));
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(points.row(i), centroids.row(a))
                        .partial_cmp(&sq_dist(points.row(i), centroids.row(b)))
                        .expect("distances are finite")
                })
                .expect("k > 0");
            if best != *slot {
                *slot = best;
                changed = true;
            }
        }
        // Recompute centroids; empty clusters keep their previous centre.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignment[i]] += 1;
            for d in 0..dim {
                sums[(assignment[i], d)] += points[(i, d)];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[(c, d)] = sums[(c, d)] / counts[c] as f32;
                }
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    let inertia = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(assignment[i])))
        .sum();
    KMeans {
        assignment,
        centroids,
        inertia,
        iterations,
    }
}

/// Clustering purity: each cluster votes for its majority ground-truth
/// class; purity is the fraction of correctly covered points.
///
/// 1.0 means clusters align perfectly with classes; `1/k` is chance.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn purity(assignment: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignment.len(), labels.len(), "length mismatch");
    assert!(!assignment.is_empty(), "empty clustering");
    let k = assignment.iter().max().unwrap() + 1;
    let classes = labels.iter().max().unwrap() + 1;
    let mut counts = vec![vec![0usize; classes]; k];
    for (&a, &l) in assignment.iter().zip(labels) {
        counts[a][l] += 1;
    }
    let covered: usize = counts
        .iter()
        .map(|row| row.iter().max().copied().unwrap_or(0))
        .sum();
    covered as f64 / assignment.len() as f64
}

/// Normalised mutual information between a clustering and ground-truth
/// labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn nmi(assignment: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignment.len(), labels.len(), "length mismatch");
    assert!(!assignment.is_empty(), "empty clustering");
    let n = assignment.len() as f64;
    let k = assignment.iter().max().unwrap() + 1;
    let classes = labels.iter().max().unwrap() + 1;
    let mut joint = vec![vec![0.0f64; classes]; k];
    let mut pa = vec![0.0f64; k];
    let mut pl = vec![0.0f64; classes];
    for (&a, &l) in assignment.iter().zip(labels) {
        joint[a][l] += 1.0;
        pa[a] += 1.0;
        pl[l] += 1.0;
    }
    let mut mi = 0.0;
    for a in 0..k {
        for l in 0..classes {
            if joint[a][l] > 0.0 {
                mi += (joint[a][l] / n) * ((n * joint[a][l]) / (pa[a] * pl[l])).ln();
            }
        }
    }
    let entropy = |p: &[f64]| -> f64 {
        p.iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| -(x / n) * (x / n).ln())
            .sum()
    };
    let ha = entropy(&pa);
    let hl = entropy(&pl);
    if ha <= 0.0 || hl <= 0.0 {
        // One side is a single cluster/class: NMI degenerates.
        return if mi > 0.0 { 1.0 } else { 0.0 };
    }
    (mi / (ha * hl).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;

    fn blobs(per: usize, centers: &[(f32, f32)], spread: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = per * centers.len();
        let mut pts = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per {
                let r = ci * per + i;
                pts[(r, 0)] = cx + rng.gen_range(-spread..spread);
                pts[(r, 1)] = cy + rng.gen_range(-spread..spread);
                labels.push(ci);
            }
        }
        (pts, labels)
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let (pts, labels) = blobs(20, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 0.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let km = kmeans(&pts, 3, 100, &mut rng);
        assert_eq!(purity(&km.assignment, &labels), 1.0);
        assert!(nmi(&km.assignment, &labels) > 0.99);
    }

    #[test]
    fn kmeans_inertia_decreases_with_k() {
        let (pts, _) = blobs(15, &[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)], 1.0, 3);
        let mut i1 = f64::INFINITY;
        for k in [1usize, 2, 4] {
            let mut rng = StdRng::seed_from_u64(4);
            let km = kmeans(&pts, k, 100, &mut rng);
            assert!(km.inertia <= i1 + 1e-9, "inertia grew at k={k}");
            i1 = km.inertia;
        }
    }

    #[test]
    fn kmeans_k_equals_n_is_exact() {
        let (pts, _) = blobs(2, &[(0.0, 0.0), (5.0, 5.0)], 0.1, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let km = kmeans(&pts, 4, 50, &mut rng);
        assert!(km.inertia < 1e-6);
    }

    #[test]
    fn purity_chance_and_perfect() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 1, 0, 1], &[0, 0, 1, 1]), 0.5);
        // Merging everything into one cluster gives majority-class purity.
        assert_eq!(purity(&[0, 0, 0, 0], &[0, 0, 1, 1]), 0.5);
    }

    #[test]
    fn nmi_extremes() {
        assert!(nmi(&[0, 0, 1, 1], &[0, 0, 1, 1]) > 0.99);
        // Independent assignment: zero information.
        let a = [0usize, 1, 0, 1];
        let l = [0usize, 0, 1, 1];
        assert!(nmi(&a, &l) < 0.01);
    }

    #[test]
    fn nmi_invariant_to_cluster_relabeling() {
        let labels = [0usize, 0, 1, 1, 2, 2];
        let a = [2usize, 2, 0, 0, 1, 1];
        assert!(nmi(&a, &labels) > 0.99);
    }

    #[test]
    #[should_panic(expected = "k = 5 exceeds")]
    fn kmeans_rejects_k_above_n() {
        let pts = Matrix::zeros(3, 2);
        kmeans(&pts, 5, 10, &mut StdRng::seed_from_u64(0));
    }
}
