//! Classification metrics for GNN evaluation.

use fare_tensor::Matrix;

/// Accuracy over the rows of `logits` selected by `mask`.
///
/// Rows where `mask` is `false` are ignored — this is how train/test
/// splits are evaluated on a shared logit matrix. Returns 0 when the mask
/// selects nothing.
///
/// # Panics
///
/// Panics if lengths disagree with `logits.rows()`.
///
/// # Example
///
/// ```
/// use fare_gnn::metrics::masked_accuracy;
/// use fare_tensor::Matrix;
/// let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let acc = masked_accuracy(&logits, &[0, 0], &[true, true]);
/// assert_eq!(acc, 0.5);
/// ```
pub fn masked_accuracy(logits: &Matrix, labels: &[usize], mask: &[bool]) -> f64 {
    assert_eq!(labels.len(), logits.rows(), "labels length mismatch");
    assert_eq!(mask.len(), logits.rows(), "mask length mismatch");
    fare_obs::counters::GNN_ACCURACY_EVALS.incr();
    let preds = logits.argmax_rows();
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..labels.len() {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Confusion matrix: `out[(true_class, predicted_class)]` counts.
///
/// # Panics
///
/// Panics if any label or prediction is `>= num_classes`, or lengths
/// disagree.
pub fn confusion_matrix(preds: &[usize], labels: &[usize], num_classes: usize) -> Matrix {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    let mut m = Matrix::zeros(num_classes, num_classes);
    for (&p, &l) in preds.iter().zip(labels) {
        assert!(p < num_classes && l < num_classes, "class id out of range");
        m[(l, p)] += 1.0;
    }
    m
}

/// Micro-averaged F1 score (for multi-class single-label this equals
/// accuracy, which is why the paper reports them interchangeably; kept
/// separate for clarity and future multi-label use).
///
/// # Panics
///
/// Panics on length mismatch or out-of-range classes.
pub fn micro_f1(preds: &[usize], labels: &[usize], num_classes: usize) -> f64 {
    let cm = confusion_matrix(preds, labels, num_classes);
    let mut tp = 0.0f64;
    let mut fp = 0.0f64;
    let mut fn_ = 0.0f64;
    for c in 0..num_classes {
        tp += cm[(c, c)] as f64;
        for o in 0..num_classes {
            if o != c {
                fp += cm[(o, c)] as f64;
                fn_ += cm[(c, o)] as f64;
            }
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

/// Macro-averaged F1 score: unweighted mean of per-class F1.
///
/// # Panics
///
/// Panics on length mismatch or out-of-range classes.
pub fn macro_f1(preds: &[usize], labels: &[usize], num_classes: usize) -> f64 {
    let cm = confusion_matrix(preds, labels, num_classes);
    let mut sum = 0.0f64;
    for c in 0..num_classes {
        let tp = cm[(c, c)] as f64;
        let fp: f64 = (0..num_classes)
            .filter(|&o| o != c)
            .map(|o| cm[(o, c)] as f64)
            .sum();
        let fn_: f64 = (0..num_classes)
            .filter(|&o| o != c)
            .map(|o| cm[(c, o)] as f64)
            .sum();
        let denom = 2.0 * tp + fp + fn_;
        if denom > 0.0 {
            sum += 2.0 * tp / denom;
        }
    }
    sum / num_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_accuracy_respects_mask() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        // Only rows 0 and 2 count; both correct.
        let acc = masked_accuracy(&logits, &[0, 1, 1], &[true, false, true]);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn masked_accuracy_empty_mask_is_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0]]);
        assert_eq!(masked_accuracy(&logits, &[0], &[false]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(cm[(0, 0)], 2.0); // true 0 predicted 0
        assert_eq!(cm[(0, 1)], 1.0); // true 0 predicted 1
        assert_eq!(cm[(1, 1)], 1.0);
        assert_eq!(cm[(1, 0)], 0.0);
    }

    #[test]
    fn micro_f1_equals_accuracy_single_label() {
        let preds = [0usize, 1, 2, 1, 0, 2, 2];
        let labels = [0usize, 1, 1, 1, 2, 2, 2];
        let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / 7.0;
        assert!((micro_f1(&preds, &labels, 3) - acc).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_perfect_prediction() {
        let labels = [0usize, 1, 2, 0, 1, 2];
        assert!((macro_f1(&labels, &labels, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalises_missing_class() {
        // Class 2 never predicted.
        let preds = [0usize, 1, 0, 0, 1, 0];
        let labels = [0usize, 1, 2, 0, 1, 2];
        assert!(macro_f1(&preds, &labels, 3) < micro_f1(&preds, &labels, 3) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "class id out of range")]
    fn confusion_rejects_bad_class() {
        confusion_matrix(&[3], &[0], 2);
    }
}
