//! Graph neural networks with hand-derived backpropagation.
//!
//! Three model families, matching the paper's Table II workloads:
//!
//! - [`layers::GcnLayer`] — graph convolution, `act(Â·H·W)` with the
//!   symmetric Kipf–Welling normalisation `Â = D^{-1/2}(A+I)D^{-1/2}`,
//! - [`layers::SageLayer`] — GraphSAGE mean aggregation,
//!   `act(H·W_self + D^{-1}A·H·W_neigh)`,
//! - [`layers::GatLayer`] — single-head additive graph attention.
//!
//! Every forward pass pulls its parameters through a [`WeightReader`],
//! the hook that lets the same model train on ideal hardware
//! ([`IdealReader`]) or on a faulty ReRAM fabric (implemented in
//! `fare-core`). Adjacency corruption happens *before* the model sees the
//! batch — models receive a `fare_graph::GraphView` wrapping the
//! (possibly fault-corrupted) binary adjacency; the view caches the
//! normalised propagation matrices once per graph and the layers
//! aggregate with sparse kernels.
//!
//! # Example
//!
//! ```
//! use fare_gnn::{Adam, Gnn, GnnDims, IdealReader};
//! use fare_graph::datasets::ModelKind;
//! use fare_graph::GraphView;
//! use fare_tensor::{ops, Matrix};
//! use fare_rt::rand::SeedableRng;
//!
//! let mut rng = fare_rt::rand::rngs::StdRng::seed_from_u64(0);
//! let dims = GnnDims { input: 4, hidden: 8, output: 2 };
//! let mut model = Gnn::new(ModelKind::Gcn, dims, &mut rng);
//! let adj = GraphView::from_dense(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
//! let x = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]]);
//! let mut opt = Adam::new(0.01, &model);
//!
//! let (logits, cache) = model.forward(&adj, &x, &IdealReader);
//! let (_, grad) = ops::cross_entropy_with_grad(&logits, &[0, 1]);
//! let grads = model.backward(&adj, &cache, &grad);
//! model.apply_gradients(&grads, &mut opt);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod layers;
pub mod link;
pub mod metrics;
mod model;
mod optim;
mod reader;

pub use model::{Gnn, GnnDims, Gradients, ParamShape};
pub use optim::{Adam, Optimizer, Sgd};
pub use reader::{IdealReader, WeightReader};
