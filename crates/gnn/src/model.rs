use fare_graph::datasets::ModelKind;
use fare_graph::GraphView;
use fare_tensor::Matrix;
use fare_rt::rand::Rng;

use crate::layers::{GatCache, GatLayer, GcnCache, GcnLayer, SageCache, SageLayer};
use crate::optim::Optimizer;
use crate::WeightReader;

/// Layer dimensions of a two-layer GNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnDims {
    /// Input feature dimension.
    pub input: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Output (class) dimension.
    pub output: usize,
}

fare_rt::json_struct!(GnnDims { input, hidden, output });

/// Identity and shape of one model parameter, used to pre-allocate
/// crossbar fabrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamShape {
    /// Layer index.
    pub layer: usize,
    /// Parameter index within the layer.
    pub param: usize,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

fare_rt::json_struct!(ParamShape { layer, param, rows, cols });

#[derive(Debug, Clone, PartialEq)]
enum Layer {
    Gcn(GcnLayer),
    Sage(SageLayer),
    Gat(GatLayer),
}

fare_rt::json_enum_newtype!(Layer { Gcn, Sage, Gat });

impl Layer {
    fn param_shapes(&self) -> Vec<(usize, usize)> {
        match self {
            Layer::Gcn(l) => l.param_shapes(),
            Layer::Sage(l) => l.param_shapes(),
            Layer::Gat(l) => l.param_shapes(),
        }
    }

    fn param(&self, i: usize) -> &Matrix {
        match self {
            Layer::Gcn(l) => {
                assert_eq!(i, 0, "GcnLayer has 1 parameter");
                l.weight()
            }
            Layer::Sage(l) => l.param(i),
            Layer::Gat(l) => l.param(i),
        }
    }

    fn param_mut(&mut self, i: usize) -> &mut Matrix {
        match self {
            Layer::Gcn(l) => {
                assert_eq!(i, 0, "GcnLayer has 1 parameter");
                l.weight_mut()
            }
            Layer::Sage(l) => l.param_mut(i),
            Layer::Gat(l) => l.param_mut(i),
        }
    }
}

#[derive(Debug, Clone)]
enum LayerCache {
    Gcn(GcnCache),
    Sage(SageCache),
    Gat(GatCache),
}

/// Cached intermediates of one forward pass, consumed by
/// [`Gnn::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    caches: Vec<LayerCache>,
}

/// Per-layer, per-parameter gradients from [`Gnn::backward`].
#[derive(Debug, Clone)]
pub struct Gradients {
    per_layer: Vec<Vec<Matrix>>,
}

impl Gradients {
    /// Gradient of parameter `param` in `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, layer: usize, param: usize) -> &Matrix {
        &self.per_layer[layer][param]
    }

    /// Sum of Frobenius norms over all parameter gradients.
    pub fn total_norm(&self) -> f32 {
        self.per_layer
            .iter()
            .flatten()
            .map(Matrix::frobenius_norm)
            .sum()
    }

    /// Global gradient-norm clipping: if the joint Frobenius norm over
    /// all gradients exceeds `max_norm`, every gradient is scaled down
    /// proportionally. Stabilises training when a fault-corrupted
    /// forward pass produces an outlier loss surface.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn clip_norm(&mut self, max_norm: f32) {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let total_sq: f32 = self
            .per_layer
            .iter()
            .flatten()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum();
        let total = total_sq.sqrt();
        if total > max_norm {
            let scale = max_norm / total;
            for g in self.per_layer.iter_mut().flatten() {
                g.map_inplace(|v| v * scale);
            }
        }
    }
}

/// A GNN of a given [`ModelKind`] (two layers by default, deeper via
/// [`Gnn::with_depth`]).
///
/// The model is deliberately backend-agnostic: the forward pass receives
/// a [`GraphView`] over the **binary** batch adjacency (corrupt it
/// upstream to simulate aggregation-phase faults, then wrap it in a
/// view) and reads every parameter through a [`WeightReader`]
/// (substitute a faulty reader to simulate combination-phase faults).
/// The view caches the normalised propagation matrices, so build it once
/// per (batch, corruption) pair — not once per forward.
#[derive(Debug, Clone, PartialEq)]
pub struct Gnn {
    kind: ModelKind,
    dims: GnnDims,
    layers: Vec<Layer>,
}

fare_rt::json_struct!(Gnn { kind, dims, layers });

impl Gnn {
    /// Builds a two-layer model of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(kind: ModelKind, dims: GnnDims, rng: &mut impl Rng) -> Self {
        Self::with_depth(kind, dims, 2, rng)
    }

    /// Builds a model with `depth` layers: `input → hidden`, then
    /// `depth − 2` hidden → hidden layers, then `hidden → output`.
    ///
    /// The paper pipelines all layers of the GNN across the accelerator;
    /// deeper models simply add aggregation/combination pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `depth < 2`.
    pub fn with_depth(kind: ModelKind, dims: GnnDims, depth: usize, rng: &mut impl Rng) -> Self {
        assert!(
            dims.input > 0 && dims.hidden > 0 && dims.output > 0,
            "dimensions must be positive: {dims:?}"
        );
        assert!(depth >= 2, "depth must be at least 2, got {depth}");
        let make = |i: usize, o: usize, mut rng: &mut dyn fare_rt::rand::RngCore| -> Layer {
            match kind {
                ModelKind::Gcn => Layer::Gcn(GcnLayer::new(i, o, &mut rng)),
                ModelKind::Sage => Layer::Sage(SageLayer::new(i, o, &mut rng)),
                ModelKind::Gat => Layer::Gat(GatLayer::new(i, o, &mut rng)),
            }
        };
        let mut layers = Vec::with_capacity(depth);
        layers.push(make(dims.input, dims.hidden, rng));
        for _ in 0..depth - 2 {
            layers.push(make(dims.hidden, dims.hidden, rng));
        }
        layers.push(make(dims.hidden, dims.output, rng));
        Self { kind, dims, layers }
    }

    /// The model family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The layer dimensions.
    pub fn dims(&self) -> GnnDims {
        self.dims
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Shapes and identities of every parameter, in deterministic order.
    ///
    /// `fare-core` uses this to allocate one crossbar fabric per
    /// parameter.
    pub fn param_shapes(&self) -> Vec<ParamShape> {
        let mut out = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            for (pi, (rows, cols)) in layer.param_shapes().into_iter().enumerate() {
                out.push(ParamShape {
                    layer: li,
                    param: pi,
                    rows,
                    cols,
                });
            }
        }
        out
    }

    /// Borrows parameter `(layer, param)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn param(&self, layer: usize, param: usize) -> &Matrix {
        self.layers[layer].param(param)
    }

    /// Mutably borrows parameter `(layer, param)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn param_mut(&mut self, layer: usize, param: usize) -> &mut Matrix {
        self.layers[layer].param_mut(param)
    }

    /// Forward pass: batch graph view + features → logits.
    ///
    /// # Panics
    ///
    /// Panics if the view's node count differs from `features`' rows, or
    /// feature width differs from `dims.input`.
    pub fn forward(
        &self,
        view: &GraphView,
        features: &Matrix,
        reader: &impl WeightReader,
    ) -> (Matrix, ForwardCache) {
        assert_eq!(view.num_nodes(), features.rows(), "graph/features node mismatch");
        assert_eq!(
            features.cols(),
            self.dims.input,
            "feature dim {} != model input dim {}",
            features.cols(),
            self.dims.input
        );
        fare_obs::counters::GNN_FORWARD_CALLS.incr();
        let _span = fare_obs::trace::span("gnn.forward");
        let mut h = features.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let output_layer = li == last;
            let (next, cache) = match layer {
                Layer::Gcn(l) => {
                    let (o, c) = l.forward(view, &h, reader, li, output_layer);
                    (o, LayerCache::Gcn(c))
                }
                Layer::Sage(l) => {
                    let (o, c) = l.forward(view, &h, reader, li, output_layer);
                    (o, LayerCache::Sage(c))
                }
                Layer::Gat(l) => {
                    let (o, c) = l.forward(view, &h, reader, li, output_layer);
                    (o, LayerCache::Gat(c))
                }
            };
            h = next;
            caches.push(cache);
        }
        (h, ForwardCache { caches })
    }

    /// Backward pass from the loss gradient w.r.t. the logits. `view`
    /// must be the one the forward pass ran with.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not match this model's layer count.
    pub fn backward(&self, view: &GraphView, cache: &ForwardCache, grad_logits: &Matrix) -> Gradients {
        assert_eq!(cache.caches.len(), self.layers.len(), "stale forward cache");
        fare_obs::counters::GNN_BACKWARD_CALLS.incr();
        let _span = fare_obs::trace::span("gnn.backward");
        let mut per_layer = vec![Vec::new(); self.layers.len()];
        let mut grad = grad_logits.clone();
        for li in (0..self.layers.len()).rev() {
            let (grads, grad_in) = match (&self.layers[li], &cache.caches[li]) {
                (Layer::Gcn(l), LayerCache::Gcn(c)) => l.backward(view, c, &grad),
                (Layer::Sage(l), LayerCache::Sage(c)) => l.backward(view, c, &grad),
                (Layer::Gat(l), LayerCache::Gat(c)) => l.backward(c, &grad),
                _ => unreachable!("cache/layer kind mismatch"),
            };
            per_layer[li] = grads;
            grad = grad_in;
        }
        Gradients { per_layer }
    }

    /// Applies gradients with the given optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match this model's parameters.
    pub fn apply_gradients(&mut self, grads: &Gradients, opt: &mut impl Optimizer) {
        let mut key = 0usize;
        for (li, layer_grads) in grads.per_layer.iter().enumerate() {
            for (pi, g) in layer_grads.iter().enumerate() {
                let p = self.layers[li].param_mut(pi);
                assert_eq!(p.shape(), g.shape(), "gradient shape mismatch at ({li},{pi})");
                opt.step(key, p, g);
                key += 1;
            }
        }
    }

    /// Clamps every parameter into `[-limit, limit]` — the paper's weight
    /// clipping (Section IV-B), applied after each update.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is negative.
    pub fn clip_weights(&mut self, limit: f32) {
        for li in 0..self.layers.len() {
            let count = self.layers[li].param_shapes().len();
            for pi in 0..count {
                self.layers[li].param_mut(pi).clip_inplace(limit);
            }
        }
    }

    /// Largest parameter magnitude across the model.
    pub fn max_weight_magnitude(&self) -> f32 {
        let mut max = 0.0f32;
        for (li, layer) in self.layers.iter().enumerate() {
            for pi in 0..layer.param_shapes().len() {
                max = max.max(self.param(li, pi).max().abs());
                max = max.max(self.param(li, pi).min().abs());
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use fare_tensor::{init, ops};
    use fare_rt::rand::rngs::StdRng;
    use fare_rt::rand::SeedableRng;

    use super::*;
    use crate::{Adam, IdealReader};

    fn dims() -> GnnDims {
        GnnDims {
            input: 4,
            hidden: 6,
            output: 3,
        }
    }

    fn ring_adj(n: usize) -> GraphView {
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            let j = (i + 1) % n;
            adj[(i, j)] = 1.0;
            adj[(j, i)] = 1.0;
        }
        GraphView::from_dense(adj)
    }

    #[test]
    fn all_kinds_forward_correct_shape() {
        let adj = ring_adj(5);
        let mut rng = StdRng::seed_from_u64(1);
        let x = init::normal(5, 4, 1.0, &mut rng);
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
            let model = Gnn::new(kind, dims(), &mut rng);
            let (logits, _) = model.forward(&adj, &x, &IdealReader);
            assert_eq!(logits.shape(), (5, 3), "{kind}");
        }
    }

    #[test]
    fn param_shapes_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Gnn::new(ModelKind::Gcn, dims(), &mut rng).param_shapes().len(), 2);
        assert_eq!(Gnn::new(ModelKind::Sage, dims(), &mut rng).param_shapes().len(), 4);
        assert_eq!(Gnn::new(ModelKind::Gat, dims(), &mut rng).param_shapes().len(), 6);
    }

    #[test]
    fn param_shapes_match_actual_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Gnn::new(ModelKind::Gat, dims(), &mut rng);
        for ps in model.param_shapes() {
            assert_eq!(model.param(ps.layer, ps.param).shape(), (ps.rows, ps.cols));
        }
    }

    #[test]
    fn training_reduces_loss_all_kinds() {
        // Block-structured labels (i / 4) so ring neighbours usually share
        // a class, plus label-correlated features: a task every
        // architecture can learn.
        let adj = ring_adj(12);
        let mut rng = StdRng::seed_from_u64(4);
        let labels: Vec<usize> = (0..12).map(|i| i / 4).collect();
        let noise = init::normal(12, 4, 0.3, &mut rng);
        let x = Matrix::from_fn(12, 4, |r, c| {
            noise[(r, c)] + if c == labels[r] { 1.0 } else { 0.0 }
        });
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
            let mut model = Gnn::new(kind, dims(), &mut rng);
            let mut opt = Adam::new(0.05, &model);
            let (logits, _) = model.forward(&adj, &x, &IdealReader);
            let (initial_loss, _) = ops::cross_entropy_with_grad(&logits, &labels);
            for _ in 0..30 {
                let (logits, cache) = model.forward(&adj, &x, &IdealReader);
                let (_, grad) = ops::cross_entropy_with_grad(&logits, &labels);
                let grads = model.backward(&adj, &cache, &grad);
                model.apply_gradients(&grads, &mut opt);
            }
            let (logits, _) = model.forward(&adj, &x, &IdealReader);
            let (final_loss, _) = ops::cross_entropy_with_grad(&logits, &labels);
            assert!(
                final_loss < initial_loss * 0.8,
                "{kind}: {initial_loss} -> {final_loss}"
            );
        }
    }

    #[test]
    fn clip_weights_bounds_every_param() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Gnn::new(ModelKind::Sage, dims(), &mut rng);
        *model.param_mut(0, 0) = Matrix::filled(4, 6, 100.0);
        model.clip_weights(0.5);
        assert!(model.max_weight_magnitude() <= 0.5);
    }

    #[test]
    fn gradients_total_norm_positive_after_forward() {
        let adj = ring_adj(6);
        let mut rng = StdRng::seed_from_u64(6);
        let x = init::normal(6, 4, 1.0, &mut rng);
        let model = Gnn::new(ModelKind::Gcn, dims(), &mut rng);
        let (logits, cache) = model.forward(&adj, &x, &IdealReader);
        let (_, grad) = ops::cross_entropy_with_grad(&logits, &[0, 1, 2, 0, 1, 2]);
        let grads = model.backward(&adj, &cache, &grad);
        assert!(grads.total_norm() > 0.0);
        assert_eq!(grads.get(0, 0).shape(), (4, 6));
    }

    #[test]
    fn gradient_norm_clipping_bounds_and_preserves_direction() {
        let adj = ring_adj(6);
        let mut rng = StdRng::seed_from_u64(12);
        let x = init::normal(6, 4, 5.0, &mut rng);
        let model = Gnn::new(ModelKind::Gcn, dims(), &mut rng);
        let (logits, cache) = model.forward(&adj, &x, &IdealReader);
        let (_, grad) = ops::cross_entropy_with_grad(&logits, &[0, 1, 2, 0, 1, 2]);
        let mut grads = model.backward(&adj, &cache, &grad);
        let before = grads.get(0, 0).clone();
        grads.clip_norm(1e-3);
        // Joint norm now bounded.
        let total_sq: f32 = (0..2)
            .map(|l| {
                let g = grads.get(l, 0);
                g.frobenius_norm().powi(2)
            })
            .sum();
        assert!(total_sq.sqrt() <= 1e-3 + 1e-6);
        // Direction preserved (uniform scaling).
        let after = grads.get(0, 0);
        let ratio = before.as_slice()[0] / after.as_slice()[0];
        for (b, a) in before.iter().zip(after.iter()) {
            if a.abs() > 1e-12 {
                assert!((b / a - ratio).abs() < ratio.abs() * 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature dim")]
    fn forward_rejects_wrong_feature_dim() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = Gnn::new(ModelKind::Gcn, dims(), &mut rng);
        let adj = ring_adj(3);
        let x = Matrix::zeros(3, 5);
        model.forward(&adj, &x, &IdealReader);
    }

    #[test]
    fn with_depth_builds_requested_layers() {
        let mut rng = StdRng::seed_from_u64(9);
        for depth in [2usize, 3, 4] {
            let model = Gnn::with_depth(ModelKind::Gcn, dims(), depth, &mut rng);
            assert_eq!(model.num_layers(), depth);
            assert_eq!(model.param_shapes().len(), depth);
            // Forward still produces class logits.
            let adj = ring_adj(5);
            let x = init::normal(5, 4, 1.0, &mut rng);
            let (logits, _) = model.forward(&adj, &x, &IdealReader);
            assert_eq!(logits.shape(), (5, 3));
        }
    }

    #[test]
    fn deep_model_trains() {
        let adj = ring_adj(12);
        let mut rng = StdRng::seed_from_u64(10);
        let labels: Vec<usize> = (0..12).map(|i| i / 4).collect();
        let noise = init::normal(12, 4, 0.3, &mut rng);
        let x = Matrix::from_fn(12, 4, |r, c| {
            noise[(r, c)] + if c == labels[r] { 1.0 } else { 0.0 }
        });
        let mut model = Gnn::with_depth(ModelKind::Sage, dims(), 3, &mut rng);
        let mut opt = Adam::new(0.05, &model);
        let (logits, _) = model.forward(&adj, &x, &IdealReader);
        let (initial, _) = ops::cross_entropy_with_grad(&logits, &labels);
        for _ in 0..40 {
            let (logits, cache) = model.forward(&adj, &x, &IdealReader);
            let (_, grad) = ops::cross_entropy_with_grad(&logits, &labels);
            let grads = model.backward(&adj, &cache, &grad);
            model.apply_gradients(&grads, &mut opt);
        }
        let (logits, _) = model.forward(&adj, &x, &IdealReader);
        let (final_loss, _) = ops::cross_entropy_with_grad(&logits, &labels);
        assert!(final_loss < initial * 0.8, "{initial} -> {final_loss}");
    }

    #[test]
    #[should_panic(expected = "depth must be at least 2")]
    fn with_depth_rejects_shallow() {
        let mut rng = StdRng::seed_from_u64(11);
        Gnn::with_depth(ModelKind::Gcn, dims(), 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn new_rejects_zero_dims() {
        let mut rng = StdRng::seed_from_u64(8);
        Gnn::new(
            ModelKind::Gcn,
            GnnDims {
                input: 0,
                hidden: 1,
                output: 1,
            },
            &mut rng,
        );
    }
}
