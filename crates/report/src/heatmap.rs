//! Crossbar heatmap renderers: a [`HeatmapGrid`] metric as an ASCII
//! shade grid (terminal) or an SVG cell grid (reports).

use crate::svg::{heat_color, SvgDoc};
use fare_obs::HeatmapGrid;

/// ASCII shade ramp, cold → hot.
const RAMP: &[u8] = b" .:-=+*#%@";

fn normalise(values: &[f64]) -> (Vec<f64>, f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    let norm = values
        .iter()
        .map(|&v| if span > 0.0 { (v - lo) / span } else { 0.0 })
        .collect();
    (norm, lo, hi)
}

/// Render `grid`'s `metric` as an ASCII shade grid with a scale legend.
/// Errors on an unknown metric name or an empty grid.
pub fn ascii(grid: &HeatmapGrid, metric: &str) -> Result<String, String> {
    let values = grid
        .metric(metric)
        .ok_or_else(|| bad_metric(metric))?;
    if values.is_empty() {
        return Err("empty heatmap grid".to_string());
    }
    let (norm, lo, hi) = normalise(&values);
    let cols = grid.cols as usize;
    let mut out = format!(
        "{} · {} ({} crossbars, {}x{})\n",
        grid.name, metric, values.len(), grid.rows, grid.cols
    );
    for (i, t) in norm.iter().enumerate() {
        if i > 0 && i % cols == 0 {
            out.push('\n');
        }
        let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
        out.push(RAMP[idx] as char);
        out.push(RAMP[idx] as char); // double width ≈ square cells
    }
    out.push('\n');
    out.push_str(&format!(
        "scale: '{}' = {:.3}  '{}' = {:.3}\n",
        RAMP[0] as char,
        lo,
        RAMP[RAMP.len() - 1] as char,
        hi
    ));
    Ok(out)
}

/// Render `grid`'s `metric` as an SVG cell grid with a colour bar.
pub fn svg(grid: &HeatmapGrid, metric: &str) -> Result<String, String> {
    let values = grid
        .metric(metric)
        .ok_or_else(|| bad_metric(metric))?;
    if values.is_empty() {
        return Err("empty heatmap grid".to_string());
    }
    let (norm, lo, hi) = normalise(&values);
    let cols = grid.cols as usize;
    let rows = grid.rows as usize;
    let cell = 16.0;
    let ml = 10.0;
    let mt = 30.0;
    let w = ml + cols as f64 * cell + 120.0;
    let h = mt + rows as f64 * cell + 20.0;
    let mut doc = SvgDoc::new(w, h);
    doc.text(
        ml,
        18.0,
        12.0,
        "start",
        &format!("{} · {} per crossbar", grid.name, metric),
    );
    for (i, t) in norm.iter().enumerate() {
        let r = i / cols;
        let c = i % cols;
        doc.rect(
            ml + c as f64 * cell,
            mt + r as f64 * cell,
            cell - 1.0,
            cell - 1.0,
            &heat_color(*t),
        );
    }
    // Colour bar.
    let bx = ml + cols as f64 * cell + 20.0;
    for i in 0..10 {
        let t = 1.0 - (i as f64 + 0.5) / 10.0;
        doc.rect(bx, mt + i as f64 * 10.0, 14.0, 10.0, &heat_color(t));
    }
    doc.text(bx + 20.0, mt + 8.0, 9.0, "start", &format!("{hi:.3}"));
    doc.text(bx + 20.0, mt + 100.0, 9.0, "start", &format!("{lo:.3}"));
    Ok(doc.finish())
}

fn bad_metric(metric: &str) -> String {
    format!(
        "unknown metric {:?}; valid: {}",
        metric,
        HeatmapGrid::metric_names().join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> HeatmapGrid {
        let mut g = HeatmapGrid::zeros("adjacency_crossbars", 6);
        g.sa0 = vec![0, 1, 2, 3, 4, 5];
        g.sa1 = vec![5, 4, 3, 2, 1, 0];
        g.energy_nj = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        g
    }

    #[test]
    fn ascii_renders_shape_and_scale() {
        let g = grid();
        let text = ascii(&g, "sa0").unwrap();
        // 2 rows × 3 cols (grid_shape(6) = (2,3)), doubled width.
        let rows: Vec<&str> = text.lines().skip(1).take(2).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.chars().count() == 6));
        assert!(text.contains("scale:"));
        // Cold first cell, hot last cell.
        assert!(rows[0].starts_with("  "));
        assert!(rows[1].ends_with("@@"));
    }

    #[test]
    fn uniform_grids_render_cold() {
        let g = HeatmapGrid::zeros("x", 4);
        let text = ascii(&g, "faults").unwrap();
        assert!(text.lines().skip(1).take(2).all(|r| r.trim().is_empty()));
    }

    #[test]
    fn svg_renders_one_rect_per_cell() {
        let g = grid();
        let one = svg(&g, "energy").unwrap();
        assert_eq!(one, svg(&g, "energy").unwrap());
        // 6 cells + 10 colour-bar segments + white background.
        assert_eq!(one.matches("<rect").count(), 17);
    }

    #[test]
    fn unknown_metric_and_empty_grid_error() {
        assert!(ascii(&grid(), "volts").unwrap_err().contains("valid:"));
        let empty = HeatmapGrid::zeros("x", 0);
        assert!(ascii(&empty, "sa0").is_err());
        assert!(svg(&empty, "sa0").is_err());
    }
}
