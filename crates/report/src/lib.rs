//! # fare-report — manifest analyzers for the FARe workspace
//!
//! The read side of the observability stack: where `fare-obs` *writes*
//! [`RunManifest`](fare_obs::RunManifest)s, this crate turns them back
//! into something an operator can act on:
//!
//! - [`summarize`] — one manifest → markdown tables (counters, timers,
//!   epoch curve, heatmap totals, bench numbers),
//! - [`diff`] — two manifests → per-counter/per-timer/per-epoch delta
//!   report with a configurable relative tolerance; drives the
//!   `fare-report diff` CI gate against `tests/golden/golden_trace.json`
//!   and the committed `BENCH_*.json` files,
//! - [`heatmap`] — [`HeatmapGrid`](fare_obs::HeatmapGrid) → ASCII or
//!   SVG crossbar grids,
//! - [`figures`] — epoch curves from one or more manifests → fig5-style
//!   SVG line charts, via the in-repo [`svg`] writer (keeping the build
//!   hermetic — no plotting dependency).
//!
//! Everything here is a pure function of its inputs and renders
//! byte-deterministically; file IO lives in the `fare-report` binary
//! (`src/bin/fare-report.rs` in the facade crate).

pub mod diff;
pub mod figures;
pub mod heatmap;
pub mod summarize;
pub mod svg;

use fare_obs::RunManifest;

/// Parse a manifest from its pretty-JSON text (the format written by
/// [`RunManifest::to_json_pretty`](fare_obs::RunManifest::to_json_pretty)).
pub fn parse_manifest(text: &str) -> Result<RunManifest, String> {
    fare_rt::json::from_str(text).map_err(|e| format!("not a RunManifest: {e:?}"))
}

/// FNV-1a 64-bit digest of a byte stream — stable fingerprint used by
/// the trace-golden test to pin the full JSONL trace without committing
/// every event.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parse_manifest_rejects_garbage() {
        assert!(parse_manifest("{}").is_err());
        assert!(parse_manifest("not json").is_err());
    }
}
